"""The persistent write-ahead journal (JSONL on disk).

Every transaction the :class:`~repro.robustness.transactions.TransactionManager`
runs is journaled as a sequence of records, one JSON object per line:

* ``checkpoint`` — a full schema snapshot (:func:`schema_to_dict`); recovery
  starts from the most recent one;
* ``begin`` / ``commit`` / ``abort`` — transaction boundaries;
* ``op`` — one basic operator (Insert/Exclude/Associate/Reclassify) with
  JSON-serialized arguments, appended *after* the operator succeeded in
  memory but strictly *before* the transaction's commit record — a logical
  redo journal: replaying the committed records reproduces the schema;
* ``fact`` — one fact row loaded inside a transaction;
* ``catalog`` — one relational table schema (columns, keys, secondary
  indexes), emitted before the first DML record touching a table the
  journal does not yet describe;
* ``dml`` — one relational write (``row.insert`` / ``row.update`` /
  ``row.delete``) with the row id, the post-image and — for updates and
  deletes — the pre-image, so the warehouse tier recovers together with
  the schema (:func:`repro.robustness.recovery.recover_warehouse`).

Torn tails are expected: a crash mid-append leaves a final line that is not
valid JSON.  :meth:`WriteAheadJournal.records` silently drops a torn *final*
line (the record was never durable) but raises :class:`WALError` on garbage
anywhere else — that is corruption, not a crash.  Opening a journal repairs
the torn tail on disk (truncating the fragment) so the next append starts on
a fresh line instead of concatenating onto it.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Iterator

from repro.core.chronology import NOW
from repro.core.mapping import MappingRelationship
from repro.core.schema import TemporalMultidimensionalSchema
from repro.core.serialization import (
    measure_map_from_json,
    measure_map_to_json,
    schema_to_dict,
)
from repro.observability import runtime as _obs

from .errors import WALError

__all__ = [
    "WAL_FORMAT",
    "RECORD_KINDS",
    "DML_ACTIONS",
    "WriteAheadJournal",
    "operator_payload",
    "mapping_relationship_to_json",
    "mapping_relationship_from_json",
]

WAL_FORMAT = 1

RECORD_KINDS = (
    "checkpoint",
    "begin",
    "op",
    "fact",
    "catalog",
    "dml",
    "commit",
    "abort",
)

DML_ACTIONS = ("row.insert", "row.update", "row.delete")


def mapping_relationship_to_json(rel: MappingRelationship) -> dict[str, Any]:
    """Serialize one mapping relationship (for ``Associate`` records)."""
    return {
        "source": rel.source,
        "target": rel.target,
        "forward": {m: measure_map_to_json(mm) for m, mm in rel.forward.items()},
        "reverse": {m: measure_map_to_json(mm) for m, mm in rel.reverse.items()},
    }


def mapping_relationship_from_json(payload: dict[str, Any]) -> MappingRelationship:
    """Rebuild a mapping relationship from :func:`mapping_relationship_to_json`."""
    return MappingRelationship(
        source=payload["source"],
        target=payload["target"],
        forward={
            m: measure_map_from_json(spec) for m, spec in payload["forward"].items()
        },
        reverse={
            m: measure_map_from_json(spec) for m, spec in payload["reverse"].items()
        },
    )


def operator_payload(operator: str, arguments: dict[str, Any]) -> dict[str, Any]:
    """JSON-encode one basic operator call (``NOW`` becomes ``null``)."""
    encoded: dict[str, Any] = {}
    for key, value in arguments.items():
        if value is NOW:
            encoded[key] = None
        elif isinstance(value, MappingRelationship):
            encoded[key] = mapping_relationship_to_json(value)
        elif isinstance(value, tuple):
            encoded[key] = list(value)
        else:
            encoded[key] = value
    return {"op": operator, "args": encoded}


class WriteAheadJournal:
    """An append-only JSONL journal with monotonically increasing LSNs.

    ``durable=True`` fsyncs after every append (the crash-safe setting);
    the default flushes only, which is what the benchmarks measure as the
    baseline journaling tax.  Opening an existing journal scans it once to
    continue the LSN and transaction-id sequences.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        durable: bool = False,
        fault_injector: Any = None,
        metrics: Any = None,
    ) -> None:
        self.path = Path(path)
        self.durable = durable
        self.fault_injector = fault_injector
        self._metrics = metrics
        self._next_lsn = 1
        self._next_txid = 1
        self.last_checkpoint_lsn: int | None = None
        if self.path.exists():
            # Repair the tail *before* reopening in append mode: a torn
            # final line (crash mid-append) must be truncated away, or the
            # next append would concatenate onto the fragment and turn a
            # recoverable crash into mid-file corruption.
            self._repair_tail()
            for record in self.records():
                self._next_lsn = record["lsn"] + 1
                txid = record.get("txid")
                if isinstance(txid, int) and txid >= self._next_txid:
                    self._next_txid = txid + 1
                if record["kind"] == "checkpoint":
                    self.last_checkpoint_lsn = record["lsn"]
        # After the repair, st_size is the durable size — never the raw
        # pre-truncation size that would double-count the torn fragment.
        self._bytes = self.path.stat().st_size if self.path.exists() else 0
        self._file = open(self.path, "a", encoding="utf-8")

    def _repair_tail(self) -> None:
        """Make the on-disk journal end in a complete, newline-terminated line.

        A torn final line — invalid JSON after a crash mid-append — is
        truncated away (it is exactly what :meth:`records` drops, so the
        file and the record view stay consistent).  A final line that *is*
        valid JSON but lost its newline (crash between the payload and the
        terminator reaching the disk) is durable, so it is terminated
        instead of dropped.
        """
        raw = self.path.read_bytes()
        if not raw:
            return
        body, sep, tail = raw.rpartition(b"\n")
        if tail == b"":
            return  # newline-terminated: nothing to repair
        try:
            json.loads(tail.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            with open(self.path, "r+b") as handle:
                handle.truncate(len(body) + len(sep))
                handle.flush()
                if self.durable:
                    os.fsync(handle.fileno())
        else:
            with open(self.path, "ab") as handle:
                handle.write(b"\n")
                handle.flush()
                if self.durable:
                    os.fsync(handle.fileno())

    def _metrics_now(self) -> Any:
        return self._metrics if self._metrics is not None else _obs.current_metrics()

    @property
    def size_bytes(self) -> int:
        """Bytes appended to (minus truncated from) the journal file."""
        return self._bytes

    @property
    def last_lsn(self) -> int:
        """The LSN of the most recently appended record (0 when empty) —
        the version clock of :mod:`repro.concurrency`."""
        return self._next_lsn - 1

    # -- low-level append -------------------------------------------------------

    def append(self, kind: str, **fields: Any) -> int:
        """Append one record; returns its LSN."""
        if kind not in RECORD_KINDS:
            raise WALError(f"unknown WAL record kind {kind!r}")
        if self._file.closed:
            raise WALError(f"{self.path}: journal is closed")
        if self.fault_injector is not None:
            self.fault_injector.fire("wal.append")
        record = {"lsn": self._next_lsn, "format": WAL_FORMAT, "kind": kind}
        record.update(fields)
        try:
            line = json.dumps(record, separators=(",", ":"))
        except TypeError as exc:
            raise WALError(f"WAL record is not JSON-serializable: {exc}") from exc
        metrics = self._metrics_now()
        self._file.write(line + "\n")
        self._file.flush()
        if self.durable:
            if metrics.enabled:
                fsync_start = time.perf_counter()
                os.fsync(self._file.fileno())
                metrics.histogram("wal.fsync_seconds").observe(
                    time.perf_counter() - fsync_start
                )
            else:
                os.fsync(self._file.fileno())
        self._next_lsn += 1
        self._bytes += len(line) + 1
        if metrics.enabled:
            metrics.counter("wal.appends", {"kind": kind}).inc()
            metrics.counter("wal.bytes_written").inc(len(line) + 1)
            metrics.gauge("wal.size_bytes").set(self._bytes)
            if self.durable:
                metrics.counter("wal.fsyncs").inc()
        return record["lsn"]

    def close(self) -> None:
        """Close the underlying file handle."""
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "WriteAheadJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- record helpers ---------------------------------------------------------

    def next_txid(self) -> int:
        """Allocate the next transaction id."""
        txid = self._next_txid
        self._next_txid += 1
        return txid

    def checkpoint(
        self,
        schema: TemporalMultidimensionalSchema,
        *,
        database: Any = None,
    ) -> int:
        """Write a full schema snapshot; recovery replays from here.

        ``database`` is an optional relational catalog (any object with a
        ``dump()`` method, i.e. :class:`~repro.storage.database.Database`
        or its snapshot); its dump is embedded in the record so warehouse
        recovery — and journal compaction via :meth:`truncate_before` —
        has a row-level baseline to replay from.
        """
        fields: dict[str, Any] = {"schema": schema_to_dict(schema)}
        if database is not None:
            fields["database"] = database.dump()
        lsn = self.append("checkpoint", **fields)
        self.last_checkpoint_lsn = lsn
        metrics = self._metrics_now()
        if metrics.enabled:
            metrics.counter("wal.checkpoints").inc()
        return lsn

    def truncate_before(self, lsn: int) -> int:
        """Compact the journal: drop every record with an LSN below ``lsn``.

        ``lsn`` should be a checkpoint's LSN — everything before it is
        dead weight for recovery, which replays from the most recent
        checkpoint.  The surviving suffix is rewritten atomically
        (write-temp-then-rename); LSNs are preserved, so the sequence
        stays monotonic and :meth:`records` keeps validating.  Returns
        the number of records dropped.
        """
        records = self.records()
        keep = [record for record in records if record["lsn"] >= lsn]
        dropped = len(records) - len(keep)
        if dropped == 0:
            return 0
        self._file.close()
        tmp = self.path.with_name(self.path.name + ".compact")
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                for record in keep:
                    handle.write(json.dumps(record, separators=(",", ":")) + "\n")
                handle.flush()
                if self.durable:
                    os.fsync(handle.fileno())
            if self.fault_injector is not None:
                self.fault_injector.fire("wal.truncate")
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise
        finally:
            # Whatever happened above — temp-file write error, a fault
            # tripping mid-compaction, or the replace going through — the
            # journal must come back usable: reopen the (old or new) file
            # for append and track its true size.
            self._file = open(self.path, "a", encoding="utf-8")
            self._bytes = self.path.stat().st_size
        metrics = self._metrics_now()
        if metrics.enabled:
            metrics.counter("wal.truncations").inc()
            metrics.counter("wal.truncated_records").inc(dropped)
            metrics.gauge("wal.size_bytes").set(self._bytes)
        return dropped

    def begin(self, txid: int) -> int:
        """Journal a transaction start."""
        return self.append("begin", txid=txid)

    def operator(self, txid: int, payload: dict[str, Any]) -> int:
        """Journal one applied basic operator (see :func:`operator_payload`)."""
        return self.append("op", txid=txid, **payload)

    def fact(
        self,
        txid: int,
        coordinates: dict[str, str],
        t: int,
        values: dict[str, float | None],
    ) -> int:
        """Journal one fact row loaded inside a transaction."""
        return self.append("fact", txid=txid, coordinates=coordinates, t=t, values=values)

    def catalog(
        self, txid: int, *, table: dict[str, Any], indexes: list[dict[str, Any]]
    ) -> int:
        """Journal one relational table schema (plus its secondary-index
        specs) so warehouse recovery can rebuild tables created after the
        last checkpoint.  ``table`` is a
        :func:`~repro.storage.schema.table_schema_to_dict` payload."""
        lsn = self.append("catalog", txid=txid, table=table, indexes=indexes)
        metrics = self._metrics_now()
        if metrics.enabled:
            metrics.counter("wal.catalog_records").inc()
        return lsn

    def dml(
        self,
        txid: int,
        action: str,
        table: str,
        rid: int,
        *,
        row: dict[str, Any] | None = None,
        pre: dict[str, Any] | None = None,
    ) -> int:
        """Journal one relational write.

        ``row`` is the post-image (inserts and updates), ``pre`` the
        pre-image (updates and deletes) — recovery replays post-images and
        compaction keeps the pre-images auditable.
        """
        if action not in DML_ACTIONS:
            raise WALError(f"unknown DML action {action!r}")
        if self.fault_injector is not None:
            self.fault_injector.fire("wal.dml")
        fields: dict[str, Any] = {"action": action, "table": table, "rid": rid}
        if row is not None:
            fields["row"] = row
        if pre is not None:
            fields["pre"] = pre
        lsn = self.append("dml", txid=txid, **fields)
        metrics = self._metrics_now()
        if metrics.enabled:
            metrics.counter("wal.dml_records", {"action": action}).inc()
        return lsn

    def commit(self, txid: int) -> int:
        """Journal a commit — the durability point of the transaction."""
        return self.append("commit", txid=txid)

    def abort(self, txid: int) -> int:
        """Journal an explicit rollback (advisory: recovery also discards
        transactions that simply lack a commit record)."""
        return self.append("abort", txid=txid)

    # -- reading ----------------------------------------------------------------

    def records(self) -> list[dict[str, Any]]:
        """Every durable record, in LSN order.

        A torn final line (crash mid-append) is dropped; a malformed line
        elsewhere, an unknown kind, a bad format version or a non-monotonic
        LSN raises :class:`WALError`.
        """
        if not self.path.exists():
            return []
        out: list[dict[str, Any]] = []
        lines = self.path.read_text(encoding="utf-8").split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        last_lsn = 0
        for i, line in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break  # torn tail: the record never became durable
                raise WALError(
                    f"{self.path}:{i + 1}: corrupt WAL record (not valid JSON)"
                ) from None
            if record.get("format") != WAL_FORMAT:
                raise WALError(
                    f"{self.path}:{i + 1}: unsupported WAL format "
                    f"{record.get('format')!r}"
                )
            if record.get("kind") not in RECORD_KINDS:
                raise WALError(
                    f"{self.path}:{i + 1}: unknown record kind {record.get('kind')!r}"
                )
            if record.get("lsn", 0) <= last_lsn:
                raise WALError(
                    f"{self.path}:{i + 1}: non-monotonic LSN {record.get('lsn')!r}"
                )
            last_lsn = record["lsn"]
            out.append(record)
        return out

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.records())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WriteAheadJournal({str(self.path)!r}, next_lsn={self._next_lsn})"
