"""Tests for the MVQL language: lexer, parser, compilation, execution."""

import pytest

from repro.core.query import ResultTable
from repro.mvql import MVQLCompileError, MVQLSession, MVQLSyntaxError, parse
from repro.mvql.ast import (
    LevelTerm,
    RankModesStatement,
    SelectStatement,
    ShowLevelsStatement,
    ShowModesStatement,
    ShowVersionsStatement,
    TimeTerm,
)
from repro.mvql.lexer import Token, tokenize


@pytest.fixture(scope="module")
def session(mvft):
    return MVQLSession(mvft)


class TestLexer:
    def test_keywords_case_insensitive(self):
        kinds = [t.kind for t in tokenize("select BY In mode")]
        assert kinds == ["KEYWORD"] * 4 + ["EOF"]
        assert tokenize("select")[0].value == "SELECT"

    def test_identifiers_preserve_case(self):
        token = tokenize("Division")[0]
        assert token.kind == "IDENT" and token.value == "Division"

    def test_identifiers_allow_ampersand_and_dash(self):
        assert tokenize("R&D")[0].value == "R&D"
        assert tokenize("C-North")[0].value == "C-North"

    def test_numbers_and_ranges(self):
        kinds = [t.kind for t in tokenize("2001..2002")]
        assert kinds == ["NUMBER", "DOTDOT", "NUMBER", "EOF"]

    def test_punctuation(self):
        kinds = [t.kind for t in tokenize("a.b, *")]
        assert kinds == ["IDENT", "DOT", "IDENT", "COMMA", "STAR", "EOF"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- the measures\n amount")
        assert [t.kind for t in tokens] == ["KEYWORD", "IDENT", "EOF"]

    def test_bad_character_rejected(self):
        with pytest.raises(MVQLSyntaxError):
            tokenize("SELECT #")

    def test_positions_recorded(self):
        assert tokenize("  BY")[0] == Token("KEYWORD", "BY", 2)


class TestParser:
    def test_minimal_select(self):
        stmt = parse("SELECT amount BY year")
        assert stmt == SelectStatement(
            measures=("amount",), group_by=(TimeTerm("year"),)
        )

    def test_star_measures(self):
        stmt = parse("SELECT * BY year")
        assert stmt.measures == ()

    def test_multiple_measures_and_terms(self):
        stmt = parse("SELECT turnover, profit BY year, org.Division")
        assert stmt.measures == ("turnover", "profit")
        assert stmt.group_by == (
            TimeTerm("year"),
            LevelTerm("org", "Division"),
        )

    def test_mode_clause(self):
        assert parse("SELECT amount BY year IN MODE V2").mode == "V2"

    def test_during_single_year(self):
        assert parse("SELECT amount BY year DURING 2001").during == (2001, 2001)

    def test_during_range(self):
        assert parse("SELECT amount BY year DURING 2001..2003").during == (2001, 2003)

    def test_clause_order_flexible(self):
        stmt = parse("SELECT amount BY year DURING 2001 IN MODE V1")
        assert stmt.mode == "V1" and stmt.during == (2001, 2001)

    def test_backwards_range_rejected(self):
        with pytest.raises(MVQLSyntaxError):
            parse("SELECT amount BY year DURING 2003..2001")

    def test_duplicate_clauses_rejected(self):
        with pytest.raises(MVQLSyntaxError):
            parse("SELECT amount BY year IN MODE V1 IN MODE V2")
        with pytest.raises(MVQLSyntaxError):
            parse("SELECT amount BY year DURING 2001 DURING 2002")

    def test_unknown_group_term_rejected(self):
        with pytest.raises(MVQLSyntaxError):
            parse("SELECT amount BY banana")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(MVQLSyntaxError):
            parse("SELECT amount BY year banana")

    def test_rank_modes(self):
        stmt = parse("RANK MODES FOR SELECT amount BY year")
        assert isinstance(stmt, RankModesStatement)
        assert stmt.select.measures == ("amount",)

    def test_rank_modes_with_mode_clause_rejected(self):
        with pytest.raises(MVQLSyntaxError):
            parse("RANK MODES FOR SELECT amount BY year IN MODE V1")

    def test_show_statements(self):
        assert isinstance(parse("SHOW MODES"), ShowModesStatement)
        assert isinstance(parse("SHOW VERSIONS"), ShowVersionsStatement)
        assert parse("SHOW LEVELS org") == ShowLevelsStatement("org")

    def test_show_garbage_rejected(self):
        with pytest.raises(MVQLSyntaxError):
            parse("SHOW TABLES")

    def test_empty_statement_rejected(self):
        with pytest.raises(MVQLSyntaxError):
            parse("")


class TestCompilation:
    def test_unknown_measure(self, session):
        with pytest.raises(MVQLCompileError):
            session.execute("SELECT zzz BY year")

    def test_unknown_mode(self, session):
        with pytest.raises(MVQLCompileError):
            session.execute("SELECT amount BY year IN MODE V99")

    def test_unknown_dimension(self, session):
        with pytest.raises(MVQLCompileError):
            session.execute("SELECT amount BY geo.Country")

    def test_unknown_level(self, session):
        with pytest.raises(MVQLCompileError):
            session.execute("SELECT amount BY org.Continent")

    def test_show_levels_unknown_dimension(self, session):
        with pytest.raises(MVQLCompileError):
            session.execute("SHOW LEVELS geo")


class TestExecution:
    def test_select_reproduces_table_4(self, session):
        result = session.execute(
            "SELECT amount BY year, org.Division DURING 2001..2002"
        )
        assert isinstance(result, ResultTable)
        assert result.as_dict() == {
            ("2001", "Sales"): {"amount": 150.0},
            ("2001", "R&D"): {"amount": 100.0},
            ("2002", "Sales"): {"amount": 100.0},
            ("2002", "R&D"): {"amount": 150.0},
        }

    def test_select_in_mode_reproduces_table_9(self, session):
        result = session.execute(
            "SELECT amount BY year, org.Department IN MODE V2 DURING 2002..2003"
        )
        assert result.as_dict()[("2003", "Dpt.Jones")]["amount"] == 200.0
        assert result.confidences()[("2003", "Dpt.Jones")]["amount"] == "em"

    def test_star_selects_every_measure(self, session):
        result = session.execute("SELECT * BY year")
        assert result.measures == ["amount"]

    def test_rank_modes(self, session):
        ranking = session.execute(
            "RANK MODES FOR SELECT amount BY year, org.Department DURING 2002..2003"
        )
        assert ranking[0][0] == "tcm"
        assert ranking[0][1] == 1.0

    def test_show_modes(self, session):
        lines = session.execute("SHOW MODES")
        assert any(line.startswith("tcm") for line in lines)
        assert any(line.startswith("V3") for line in lines)

    def test_show_versions(self, session):
        lines = session.execute("SHOW VERSIONS")
        assert len(lines) == 3

    def test_show_levels(self, session):
        assert session.execute("SHOW LEVELS org") == ["Division", "Department"]

    def test_execute_to_text(self, session):
        text = session.execute_to_text(
            "SELECT amount BY year, org.Division DURING 2001..2002"
        )
        assert "Division" in text and "(sd)" in text
        ranked = session.execute_to_text(
            "RANK MODES FOR SELECT amount BY year, org.Department DURING 2002..2003"
        )
        assert "Q = 1.000" in ranked
        shown = session.execute_to_text("SHOW LEVELS org")
        assert shown == "Division\nDepartment"

    def test_quarter_and_month_granularities(self, session):
        result = session.execute("SELECT amount BY quarter DURING 2001")
        assert list(result.as_dict()) == [("2001Q2",)]
        result = session.execute("SELECT amount BY month DURING 2001")
        assert list(result.as_dict()) == [("06/2001",)]


class TestWhereClause:
    def test_parse_equality(self):
        from repro.mvql.ast import FilterTerm

        stmt = parse("SELECT amount BY year WHERE org.Division = 'Sales'")
        assert stmt.filters == (FilterTerm("org", "Division", ("Sales",)),)

    def test_parse_in_list(self):
        from repro.mvql.ast import FilterTerm

        stmt = parse(
            "SELECT amount BY year WHERE org.Department IN ('Dpt.Bill', 'Dpt.Paul')"
        )
        assert stmt.filters == (
            FilterTerm("org", "Department", ("Dpt.Bill", "Dpt.Paul")),
        )

    def test_parse_and_chain(self):
        stmt = parse(
            "SELECT amount BY year "
            "WHERE org.Division = 'Sales' AND org.Department = 'Dpt.Jones'"
        )
        assert len(stmt.filters) == 2

    def test_unquoted_single_word_value(self):
        stmt = parse("SELECT amount BY year WHERE org.Division = Sales")
        assert stmt.filters[0].values == ("Sales",)

    def test_double_quotes_work(self):
        stmt = parse('SELECT amount BY year WHERE org.Division = "R&D"')
        assert stmt.filters[0].values == ("R&D",)

    def test_unterminated_string_rejected(self):
        with pytest.raises(MVQLSyntaxError):
            parse("SELECT amount BY year WHERE org.Division = 'Sales")

    def test_missing_comparison_rejected(self):
        with pytest.raises(MVQLSyntaxError):
            parse("SELECT amount BY year WHERE org.Division")

    def test_duplicate_where_rejected(self):
        with pytest.raises(MVQLSyntaxError):
            parse(
                "SELECT amount BY year WHERE org.Division = Sales "
                "WHERE org.Division = Sales"
            )

    def test_execution_slices_division(self, session):
        result = session.execute(
            "SELECT amount BY year, org.Department WHERE org.Division = 'Sales'"
        )
        d = result.as_dict()
        assert ("2001", "Dpt.Smith") in d
        assert ("2002", "Dpt.Smith") not in d

    def test_execution_respects_mode(self, session):
        result = session.execute(
            "SELECT amount BY year "
            "WHERE org.Department IN ('Dpt.Bill', 'Dpt.Paul') IN MODE V3"
        )
        d = result.as_dict()
        assert d[("2001",)]["amount"] == pytest.approx(100.0)
        assert d[("2003",)]["amount"] == pytest.approx(200.0)

    def test_unknown_filter_level_rejected(self, session):
        with pytest.raises(MVQLCompileError):
            session.execute("SELECT amount BY year WHERE org.Continent = 'X'")

    def test_unknown_filter_dimension_rejected(self, session):
        with pytest.raises(MVQLCompileError):
            session.execute("SELECT amount BY year WHERE geo.Country = 'X'")


class TestAttributeTerms:
    def test_parse_attribute_term(self):
        from repro.mvql.ast import AttributeTerm

        stmt = parse("SELECT amount BY year, org@size")
        assert stmt.group_by[1] == AttributeTerm("org", "size")

    def test_attribute_term_compiles_to_attribute_group(self, session):
        from repro.core import AttributeGroup

        query = session.compile_select(parse("SELECT amount BY org@size"))
        assert query.group_by == (AttributeGroup("org", "size"),)

    def test_unknown_dimension_rejected(self, session):
        with pytest.raises(MVQLCompileError):
            session.execute("SELECT amount BY geo@size")

    def test_execution_groups_by_attribute(self):
        """An attributed schema: departments tagged with a region code."""
        from repro.core import (
            Interval,
            Measure,
            MemberVersion,
            SUM,
            TemporalDimension,
            TemporalMultidimensionalSchema,
            TemporalRelationship,
        )

        d = TemporalDimension("org")
        d.add_member(MemberVersion("div", "Division", Interval(0), level="Division"))
        for mvid, region in (("a", "north"), ("b", "south"), ("c", "north")):
            d.add_member(
                MemberVersion(
                    mvid, mvid.upper(), Interval(0),
                    attributes={"region": region}, level="Department",
                )
            )
            d.add_relationship(TemporalRelationship(mvid, "div", Interval(0)))
        schema = TemporalMultidimensionalSchema([d], [Measure("amount", SUM)])
        schema.add_fact({"org": "a"}, 5, amount=1.0)
        schema.add_fact({"org": "b"}, 5, amount=2.0)
        schema.add_fact({"org": "c"}, 5, amount=4.0)
        sess = MVQLSession(schema.multiversion_facts())
        result = sess.execute("SELECT amount BY org@region")
        assert result.as_dict() == {
            ("north",): {"amount": 5.0},
            ("south",): {"amount": 2.0},
        }
