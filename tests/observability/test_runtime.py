"""Tests for the process-wide instrumentation switch."""

from repro.observability import (
    NULL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    runtime,
)


class TestRuntimeSwitch:
    def test_disabled_by_default(self):
        assert runtime.enabled() is False
        assert runtime.current_tracer() is NULL_TRACER
        assert runtime.current_metrics() is NULL_METRICS

    def test_enable_installs_fresh_instruments(self):
        try:
            tracer, metrics = runtime.enable()
            assert runtime.enabled()
            assert runtime.current_tracer() is tracer
            assert runtime.current_metrics() is metrics
            assert isinstance(tracer, Tracer)
            assert isinstance(metrics, MetricsRegistry)
        finally:
            runtime.disable()
        assert runtime.enabled() is False

    def test_enable_accepts_explicit_instruments(self):
        mine = Tracer()
        try:
            tracer, _ = runtime.enable(tracer=mine)
            assert tracer is mine
        finally:
            runtime.disable()

    def test_instrumented_context_restores_previous_state(self):
        assert runtime.enabled() is False
        with runtime.instrumented() as (tracer, metrics):
            assert runtime.current_tracer() is tracer
            with tracer.span("inside"):
                pass
            metrics.counter("c").inc()
        assert runtime.enabled() is False
        assert runtime.current_tracer() is NULL_TRACER
        assert tracer.find("inside")

    def test_instrumented_contexts_nest(self):
        with runtime.instrumented() as (outer, _):
            with runtime.instrumented() as (inner, _):
                assert runtime.current_tracer() is inner
            assert runtime.current_tracer() is outer
        assert runtime.current_tracer() is NULL_TRACER
