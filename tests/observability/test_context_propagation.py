"""Regression tests for context-local observability state.

The tracer's active-span stack and the slow-query log's statement label
used to be *thread*-local.  That is correct for thread-per-statement
execution but silently wrong on an asyncio server: every statement
interleaves on one event-loop thread, so task B's spans would nest under
task A's open span and task B's slow queries would be labelled with task
A's MVQL text.  Both now live in :mod:`contextvars`, which asyncio
copies per task — these tests pin the task-isolation behaviour (and the
unchanged thread behaviour) down.
"""

import asyncio
import threading

from repro.observability import SlowQueryLog, Tracer


def _run(coro):
    return asyncio.run(coro)


class TestTracerTaskIsolation:
    def test_interleaved_tasks_get_their_own_parents(self):
        """Two tasks ping-ponging on one thread must not adopt each
        other's spans as parents."""
        tracer = Tracer()

        async def statement(name: str, barrier_in: asyncio.Event, barrier_out: asyncio.Event):
            with tracer.span(f"{name}.outer"):
                # Yield to the other task while our span is open — with a
                # thread-local stack the other task would now see
                # ``{name}.outer`` as its parent.
                barrier_out.set()
                await barrier_in.wait()
                with tracer.span(f"{name}.inner"):
                    await asyncio.sleep(0)

        async def main():
            a_ready, b_ready = asyncio.Event(), asyncio.Event()
            await asyncio.gather(
                statement("a", b_ready, a_ready),
                statement("b", a_ready, b_ready),
            )

        _run(main())
        for name in ("a", "b"):
            outer = tracer.find(f"{name}.outer")[0]
            inner = tracer.find(f"{name}.inner")[0]
            assert outer.parent_id is None
            assert inner.parent_id == outer.span_id

    def test_many_concurrent_tasks_nest_independently(self):
        tracer = Tracer()

        async def statement(i: int):
            with tracer.span("stmt", attributes={"i": i}):
                await asyncio.sleep(0)
                with tracer.span("phase", attributes={"i": i}):
                    await asyncio.sleep(0)

        async def main():
            await asyncio.gather(*(statement(i) for i in range(16)))

        _run(main())
        roots = {s.attributes["i"]: s for s in tracer.find("stmt")}
        assert len(roots) == 16
        for child in tracer.find("phase"):
            assert child.parent_id == roots[child.attributes["i"]].span_id

    def test_fresh_thread_starts_with_empty_stack(self):
        """Thread behaviour is unchanged: a worker thread does not
        inherit the spawning context's open span."""
        tracer = Tracer()
        seen: list[int | None] = []

        def worker():
            with tracer.span("worker") as span:
                seen.append(span.parent_id)

        with tracer.span("main"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen == [None]

    def test_explicit_parent_still_crosses_threads(self):
        tracer = Tracer()
        with tracer.span("fanout") as parent:
            results: list[int | None] = []

            def worker():
                with tracer.span("shard", parent=parent) as span:
                    results.append(span.parent_id)

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert results == [parent.span_id]


class TestSlowQueryLogTaskIsolation:
    def test_interleaved_statements_keep_their_own_labels(self):
        """Each task's engine-level record must carry *that* task's MVQL
        text even while both statement contexts are open."""
        log = SlowQueryLog(threshold=0.0)
        labels: dict[str, str | None] = {}

        async def statement(text: str, barrier_in: asyncio.Event, barrier_out: asyncio.Event):
            with log.statement(text):
                barrier_out.set()
                await barrier_in.wait()
                labels[text] = log.current_statement
                log.record(mode="tcm", seconds=1.0)

        async def main():
            a_ready, b_ready = asyncio.Event(), asyncio.Event()
            await asyncio.gather(
                statement("SELECT amount BY year", b_ready, a_ready),
                statement("SHOW MODES", a_ready, b_ready),
            )

        _run(main())
        assert labels == {
            "SELECT amount BY year": "SELECT amount BY year",
            "SHOW MODES": "SHOW MODES",
        }
        recorded = {r.statement for r in log.records()}
        assert recorded == {"SELECT amount BY year", "SHOW MODES"}

    def test_fresh_thread_sees_no_statement(self):
        log = SlowQueryLog(threshold=0.0)
        seen: list[str | None] = []

        def worker():
            seen.append(log.current_statement)

        with log.statement("SELECT amount BY year"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen == [None]

    def test_nested_statement_restores_outer_label(self):
        log = SlowQueryLog(threshold=0.0)
        with log.statement("outer"):
            with log.statement("inner"):
                assert log.current_statement == "inner"
            assert log.current_statement == "outer"
        assert log.current_statement is None
