"""Tests for the flight recorder and its checksummed debug bundle."""

import json

import pytest

from repro.core import (
    Interval,
    LevelGroup,
    Query,
    QueryEngine,
    TimeGroup,
    YEAR,
    ym,
)
from repro.observability import (
    EventBus,
    FlightRecorder,
    MetricsRegistry,
    SlowQueryLog,
    Tracer,
    UsageMeter,
    read_manifest,
    read_otlp_json,
    run_doctor,
)
from repro.workloads.case_study import ORG

Q1 = Query(
    group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")),
    time_range=Interval(ym(2001, 1), ym(2002, 12)),
)


class TestFlightRecorderRing:
    def test_collect_pulls_only_new_spans(self):
        tracer = Tracer()
        recorder = FlightRecorder(tracer=tracer)
        with tracer.span("a"):
            pass
        assert recorder.collect() == 1
        assert recorder.collect() == 0
        with tracer.span("b"):
            pass
        assert recorder.collect() == 1
        assert [s.name for s in recorder.spans] == ["a", "b"]

    def test_ring_is_bounded(self):
        tracer = Tracer()
        recorder = FlightRecorder(tracer=tracer, capacity=3)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        recorder.collect()
        assert [s.name for s in recorder.spans] == ["s7", "s8", "s9"]

    def test_tracer_clear_does_not_double_count(self):
        tracer = Tracer()
        recorder = FlightRecorder(tracer=tracer)
        with tracer.span("before"):
            pass
        recorder.collect()
        tracer.clear()
        with tracer.span("after"):
            pass
        assert recorder.collect() == 1
        assert [s.name for s in recorder.spans] == ["before", "after"]

    def test_audit_events_arrive_off_the_bus(self):
        bus = EventBus()
        recorder = FlightRecorder(bus=bus)
        bus.publish("audit", {"action": "auth", "tenant": "acme"})
        bus.publish("commit", {"ignored": True})  # wrong topic
        recorder.collect()
        (event,) = recorder.audit_events
        assert event["action"] == "auth"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestDebugBundle:
    def _armed(self, mvft, tmp_path):
        tracer = Tracer()
        metrics = MetricsRegistry()
        slow_log = SlowQueryLog(threshold=0.0)
        meter = UsageMeter(metrics)
        bus = EventBus()
        recorder = FlightRecorder(
            tracer=tracer,
            metrics=metrics,
            slow_log=slow_log,
            usage=meter,
            bus=bus,
        )
        engine = QueryEngine(
            mvft, tracer=tracer, metrics=metrics, slow_log=slow_log
        )
        with meter.measure("acme", "s1", statement="q1"):
            engine.execute(Q1)
        bus.publish("audit", {"action": "statement", "tenant": "acme"})
        return recorder, tracer

    def test_dump_round_trips(self, mvft, tmp_path):
        recorder, tracer = self._armed(mvft, tmp_path)
        target = tmp_path / "bundle"
        manifest = recorder.dump(target)
        # The manifest on disk matches the returned one and verifies.
        assert read_manifest(target) == manifest
        assert set(manifest["files"]) == {
            "spans.otlp.json",
            "slow_queries.jsonl",
            "audit.jsonl",
            "usage.jsonl",
            "metrics.json",
        }
        # Spans re-import via the OTLP reader and keep their names.
        spans = read_otlp_json(target / "spans.otlp.json")
        assert len(spans) == manifest["files"]["spans.otlp.json"]["entries"]
        assert {s["name"] for s in spans} >= {"query.execute"}
        # The JSONL files parse line by line.
        slow = [
            json.loads(line)
            for line in (target / "slow_queries.jsonl")
            .read_text()
            .splitlines()
        ]
        assert slow and slow[0]["seconds"] >= 0
        usage = [
            json.loads(line)
            for line in (target / "usage.jsonl").read_text().splitlines()
        ]
        assert usage[0]["tenant"] == "acme"
        audit = [
            json.loads(line)
            for line in (target / "audit.jsonl").read_text().splitlines()
        ]
        assert audit[0]["action"] == "statement"
        snapshot = json.loads((target / "metrics.json").read_text())
        assert any(
            key.startswith("query.rows_scanned") for key in snapshot["counters"]
        )

    def test_tampering_is_detected(self, mvft, tmp_path):
        recorder, _ = self._armed(mvft, tmp_path)
        target = tmp_path / "bundle"
        recorder.dump(target)
        (target / "usage.jsonl").write_text('{"forged": true}\n')
        with pytest.raises(ValueError, match="corrupt"):
            read_manifest(target)
        (target / "usage.jsonl").unlink()
        with pytest.raises(ValueError, match="missing"):
            read_manifest(target)

    def test_dump_without_sources_writes_empty_bundle(self, tmp_path):
        manifest = FlightRecorder().dump(tmp_path / "empty")
        assert manifest["files"]["spans.otlp.json"]["entries"] == 0
        assert read_manifest(tmp_path / "empty") == manifest


class TestDoctorFlightDump:
    def test_fail_triggers_a_bundle_dump(self, case_study, mvft, tmp_path):
        tracer = Tracer()
        metrics = MetricsRegistry()
        engine = QueryEngine(mvft, tracer=tracer, metrics=metrics)
        engine.execute(Q1)
        recorder = FlightRecorder(tracer=tracer, metrics=metrics)
        # A failing alert rule forces status=fail.
        from repro.observability import AlertRule

        rules = [
            AlertRule(
                name="always",
                metric="query.rows_scanned",
                op=">",
                threshold=0.0,
                severity="fail",
            )
        ]
        target = tmp_path / "postmortem"
        report = run_doctor(
            case_study.schema,
            metrics=metrics,
            rules=rules,
            flight=recorder,
            flight_dir=target,
        )
        assert report.status == "fail"
        manifest = read_manifest(target)
        assert manifest["files"]["spans.otlp.json"]["entries"] > 0
        assert any("flight recorder" in note for note in report.notes)

    def test_pass_does_not_dump(self, case_study, tmp_path):
        recorder = FlightRecorder(tracer=Tracer())
        target = tmp_path / "untouched"
        report = run_doctor(case_study.schema, flight=recorder, flight_dir=target)
        assert report.status in ("pass", "warn")
        assert not target.exists()
