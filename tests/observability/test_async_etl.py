"""The parallel-extraction ETL fan-out: determinism, isolation, detail."""

import threading

import pytest

from repro.core import Interval, Measure, MemberVersion, SUM
from repro.core import TemporalDimension, TemporalMultidimensionalSchema
from repro.core import TemporalRelationship
from repro.observability import MetricsRegistry, Tracer
from repro.robustness import RetryPolicy
from repro.warehouse import (
    CleaningRule,
    ETLPipeline,
    FactMapping,
    OperationalSource,
)


def build_schema():
    d = TemporalDimension("org")
    d.add_member(MemberVersion("div", "Division", Interval(0), level="Division"))
    d.add_member(MemberVersion("a", "Dept-A", Interval(0), level="Department"))
    d.add_relationship(TemporalRelationship("a", "div", Interval(0)))
    return TemporalMultidimensionalSchema([d], [Measure("amount", SUM)])


def pipeline_for(schema, rules=(), **kwargs):
    mapping = FactMapping(
        lambda rec: ({"org": rec["dept"]}, rec["t"], {"amount": rec["amount"]})
    )
    return ETLPipeline(schema, rules=rules, mapping=mapping, **kwargs)


def make_sources(n=4, per_source=5):
    return [
        OperationalSource(
            f"s{i}",
            [
                {"dept": "a", "t": j + 1, "amount": float(i * per_source + j)}
                for j in range(per_source)
            ],
        )
        for i in range(n)
    ]


class FlakySource(OperationalSource):
    """Fails ``failures`` times before extracting successfully."""

    def __init__(self, name, records, failures):
        super().__init__(name, records)
        self.failures = failures
        self.calls = 0

    def extract(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise ConnectionError(f"{self.name} unreachable")
        return super().extract()


class TestParallelExtraction:
    def test_parallel_report_identical_to_sequential(self):
        reject_odd = CleaningRule(
            "drop-odd", lambda r: r if int(r["amount"]) % 2 == 0 else None
        )
        sequential = pipeline_for(build_schema(), [reject_odd]).run(
            make_sources()
        )
        parallel = pipeline_for(build_schema(), [reject_odd]).run(
            make_sources(), max_workers=4
        )
        assert parallel.extracted == sequential.extracted
        assert parallel.loaded == sequential.loaded
        assert parallel.rejected == sequential.rejected
        assert parallel.failed_sources == sequential.failed_sources

    def test_parallel_load_matches_sequential_facts(self):
        seq_schema = build_schema()
        par_schema = build_schema()
        pipeline_for(seq_schema).run(make_sources())
        pipeline_for(par_schema).run(make_sources(), max_workers=3)
        assert [
            (dict(f.coordinates), f.t, f.values["amount"])
            for f in seq_schema.facts
        ] == [
            (dict(f.coordinates), f.t, f.values["amount"])
            for f in par_schema.facts
        ]

    def test_extraction_actually_overlaps(self):
        """With enough workers, extractions run concurrently: each source
        blocks until every other one has started."""
        n = 3
        barrier = threading.Barrier(n, timeout=5)

        class BarrierSource(OperationalSource):
            def extract(self):
                barrier.wait()
                return super().extract()

        sources = [
            BarrierSource(f"s{i}", [{"dept": "a", "t": 1, "amount": 1.0}])
            for i in range(n)
        ]
        report = pipeline_for(build_schema()).run(sources, max_workers=n)
        assert report.loaded == n

    def test_failure_isolation_in_parallel_mode(self):
        good = OperationalSource("good", [{"dept": "a", "t": 1, "amount": 1.0}])
        bad = FlakySource("bad", [], failures=99)
        report = pipeline_for(build_schema()).run([bad, good], max_workers=2)
        assert report.loaded == 1
        assert report.failed_source_count == 1
        assert report.failed_sources[0][0] == "bad"

    def test_failed_sources_keep_source_order(self):
        sources = [
            FlakySource("f1", [], failures=99),
            OperationalSource("ok", [{"dept": "a", "t": 1, "amount": 1.0}]),
            FlakySource("f2", [], failures=99),
        ]
        report = pipeline_for(build_schema()).run(sources, max_workers=3)
        assert [name for name, _ in report.failed_sources] == ["f1", "f2"]


class TestFailureDetail:
    def test_detail_names_exception_class_and_message(self):
        bad = FlakySource("bad", [], failures=99)
        report = pipeline_for(build_schema()).run([bad])
        _, reason = report.failed_sources[0]
        assert "ConnectionError" in reason
        assert "bad unreachable" in reason

    def test_detail_unwraps_retry_exhaustion(self):
        bad = FlakySource("bad", [], failures=99)
        policy = RetryPolicy.no_sleep(max_attempts=3, retry_on=(ConnectionError,))
        report = pipeline_for(build_schema(), retry=policy).run([bad])
        _, reason = report.failed_sources[0]
        assert "ConnectionError" in reason
        assert "after 3 attempts" in reason

    def test_retry_recovers_flaky_source(self):
        flaky = FlakySource(
            "flaky", [{"dept": "a", "t": 1, "amount": 1.0}], failures=2
        )
        policy = RetryPolicy.no_sleep(max_attempts=3, retry_on=(ConnectionError,))
        report = pipeline_for(build_schema(), retry=policy).run(
            [flaky], max_workers=2
        )
        assert report.complete and report.loaded == 1


class TestEtlInstrumentation:
    def test_run_span_tree_and_counters(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        reject_odd = CleaningRule(
            "drop-odd", lambda r: r if int(r["amount"]) % 2 == 0 else None
        )
        pipeline = pipeline_for(
            build_schema(), [reject_odd], tracer=tracer, metrics=metrics
        )
        pipeline.run(make_sources(n=2, per_source=4), max_workers=2)
        run = tracer.find("etl.run")[0]
        extracts = tracer.find("etl.extract")
        assert len(extracts) == 2
        assert all(s.parent_id == run.span_id for s in extracts)
        loads = tracer.find("etl.load")
        assert len(loads) == 2
        counters = metrics.snapshot()["counters"]
        assert counters["etl.runs"] == 1
        assert counters["etl.records_extracted"] == 8
        assert counters["etl.records_loaded"] == 4
        assert counters["etl.records_rejected"] == 4
