"""Instrumentation woven through the hot paths: spans, counters, and the
guarantee that observing a run never changes its result."""

import pytest

from repro.concurrency import SnapshotManager
from repro.concurrency.sharding import ShardedExecutor
from repro.core import Interval, LevelGroup, Query, QueryEngine, TimeGroup, YEAR, ym
from repro.mvql import MVQLSession
from repro.observability import MetricsRegistry, Tracer
from repro.olap import Cube
from repro.robustness import TransactionManager
from repro.workloads.case_study import ORG, build_case_study


@pytest.fixture()
def q1():
    return Query(
        group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")),
        time_range=Interval(ym(2001, 1), ym(2002, 12)),
    )


class TestQueryEngine:
    def test_execute_records_phase_spans(self, mvft, q1):
        tracer = Tracer()
        QueryEngine(mvft, tracer=tracer).execute(q1)
        root = tracer.find("query.execute")[0]
        names = [s.name for s in tracer.children(root)]
        assert names == [
            "query.resolve",
            "query.collect_contributions",
            "query.finalize",
        ]

    def test_counters_keyed_by_mode(self, mvft, q1):
        metrics = MetricsRegistry()
        engine = QueryEngine(mvft, metrics=metrics)
        engine.execute(q1)
        engine.execute(q1.with_mode("V1"))
        counters = metrics.snapshot()["counters"]
        assert counters['query.rows_scanned{mode="tcm"}'] > 0
        assert counters['query.rows_scanned{mode="V1"}'] > 0
        assert counters['query.cells_emitted{mode="tcm"}'] > 0
        assert counters['query.executed{mode="tcm"}'] == 1

    def test_instrumented_result_is_byte_equal(self, mvft, q1):
        plain = QueryEngine(mvft).execute(q1).to_text()
        traced = (
            QueryEngine(mvft, tracer=Tracer(), metrics=MetricsRegistry())
            .execute(q1)
            .to_text()
        )
        assert plain == traced


class TestShardedExecutor:
    def test_per_shard_spans_under_root(self, mvft, q1):
        tracer = Tracer()
        metrics = MetricsRegistry()
        executor = ShardedExecutor(
            mvft, shards=4, tracer=tracer, metrics=metrics
        )
        executor.execute(q1)
        root = tracer.find("shard.execute")[0]
        collects = tracer.find("shard.collect")
        assert len(collects) == root.attributes["shards"]
        assert all(s.parent_id == root.span_id for s in collects)
        assert sum(s.attributes["rows"] for s in collects) == (
            root.attributes["rows"]
        )
        assert tracer.find("shard.merge")[0].parent_id == root.span_id
        counters = metrics.snapshot()["counters"]
        assert counters["shard.queries"] == 1
        assert counters["shard.shards_run"] == len(collects)
        assert metrics.snapshot()["histograms"]["shard.merge_seconds"]["count"] == 1

    def test_instrumented_sharded_result_matches_serial(self, mvft, q1):
        serial = QueryEngine(mvft).execute(q1).to_text()
        sharded = (
            ShardedExecutor(mvft, shards=4, tracer=Tracer(), metrics=MetricsRegistry())
            .execute(q1)
            .to_text()
        )
        assert serial == sharded


class TestMVQLSession:
    def test_statement_span_and_counter(self, mvft):
        tracer = Tracer()
        metrics = MetricsRegistry()
        session = MVQLSession(mvft, tracer=tracer, metrics=metrics)
        session.execute("SELECT amount BY year, org.Division")
        span = tracer.find("mvql.statement")[0]
        assert span.attributes["kind"] == "SelectStatement"
        assert "SELECT amount" in span.attributes["statement"]
        # the engine spans nest under the statement span
        execute = tracer.find("query.execute")[0]
        assert execute.parent_id == span.span_id
        counters = metrics.snapshot()["counters"]
        assert counters['mvql.statements{kind="SelectStatement"}'] == 1


class TestCube:
    def test_lattice_hits_and_bypasses_counted(self):
        from repro.olap.cube import LevelAxis, TimeAxis

        study = build_case_study()
        mvft = study.schema.multiversion_facts()
        metrics = MetricsRegistry()
        cube = Cube(mvft, materialize=True, metrics=metrics)
        cube.pivot("tcm", TimeAxis(YEAR), LevelAxis(ORG, "Division"), "amount")
        # A level × level grid is a shape the lattice never stores — it
        # counts as a *bypass*, not a miss (misses are reserved for
        # servable shapes whose node came back empty, so the hit rate
        # actually measures lattice effectiveness).
        cube.pivot(
            "tcm",
            LevelAxis(ORG, "Division"),
            LevelAxis(ORG, "Department"),
            "amount",
        )
        counters = metrics.snapshot()["counters"]
        assert counters["olap.pivots"] == 2
        assert counters["olap.lattice_hits"] == 1
        assert counters["olap.lattice_bypass"] == 1
        assert "olap.lattice_misses" not in counters

    def test_pivot_span_names_server(self):
        from repro.olap.cube import LevelAxis, TimeAxis

        study = build_case_study()
        mvft = study.schema.multiversion_facts()
        tracer = Tracer()
        cube = Cube(mvft, tracer=tracer)
        cube.pivot("tcm", TimeAxis(YEAR), LevelAxis(ORG, "Division"), "amount")
        span = tracer.find("olap.pivot")[0]
        assert span.attributes["served_by"] == "engine"


class TestTransactions:
    def test_commit_latency_and_counters(self, tmp_path):
        study = build_case_study()
        metrics = MetricsRegistry()
        txm = TransactionManager(
            study.schema, wal=tmp_path / "txn.wal", metrics=metrics
        )
        with txm.transaction():
            txm.editor.insert(
                "org", "obs", "Obs", ym(2003, 6),
                level="Department", parents=["sales"],
            )
        snap = metrics.snapshot()
        assert snap["counters"]["txn.committed"] == 1
        assert snap["counters"]["txn.operators_applied"] >= 1
        assert snap["histograms"]["txn.commit_seconds"]["count"] == 1
        assert snap["counters"]['wal.appends{kind="begin"}'] == 1
        assert snap["counters"]['wal.appends{kind="commit"}'] == 1
        assert snap["counters"]["wal.bytes_written"] > 0
        assert snap["gauges"]["wal.size_bytes"] > 0

    def test_rollback_counted(self):
        study = build_case_study()
        metrics = MetricsRegistry()
        txm = TransactionManager(study.schema, metrics=metrics)
        with pytest.raises(RuntimeError):
            with txm.transaction():
                raise RuntimeError("abort")
        assert metrics.snapshot()["counters"]["txn.rolled_back"] == 1


class TestSnapshotManager:
    def test_mvcc_counters(self):
        study = build_case_study()
        metrics = MetricsRegistry()
        txm = TransactionManager(study.schema)
        manager = SnapshotManager(txm, metrics=metrics)
        with manager.open_cursor():
            with manager.transaction():
                txm.editor.insert(
                    "org", "obs2", "Obs2", ym(2003, 6),
                    level="Department", parents=["sales"],
                )
        snap = metrics.snapshot()
        assert snap["counters"]["mvcc.cursors_opened"] == 1
        assert snap["counters"]["mvcc.commits"] == 1
        assert snap["gauges"]["mvcc.open_cursors"] == 0
        assert snap["gauges"]["mvcc.version"] == manager.version


class TestStorage:
    def test_rows_inserted_counter(self):
        from repro.storage import Column, Database, TEXT

        metrics = MetricsRegistry()
        db = Database(metrics=metrics)
        db.create_table("dim", [Column("id", TEXT)], primary_key=["id"])
        db.insert("dim", {"id": "a"})
        db.insert_many("dim", [{"id": "b"}, {"id": "c"}])
        counters = metrics.snapshot()["counters"]
        assert counters['storage.rows_inserted{table="dim"}'] == 3
