"""Tests for the EXPLAIN-ANALYZE-style query profiler."""

import pytest

from repro.core import Interval, LevelGroup, Query, TimeGroup, YEAR, ym
from repro.observability import profile_query
from repro.workloads.case_study import ORG


@pytest.fixture()
def q1():
    return Query(
        group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")),
        time_range=Interval(ym(2001, 1), ym(2002, 12)),
        measures=("amount",),
    )


class TestProfileQuery:
    def test_phases_cover_serial_execution(self, mvft, q1):
        profile = profile_query(mvft, q1, shards=1, all_modes=False)
        assert [p.name for p in profile.phases] == [
            "resolve",
            "collect_contributions",
            "finalize",
        ]
        assert all(p.seconds >= 0 for p in profile.phases)
        assert profile.total_seconds >= max(p.seconds for p in profile.phases)
        assert profile.result_rows > 0
        assert profile.mode == "tcm"

    def test_sharded_pass_reports_per_shard_rows(self, mvft, q1):
        profile = profile_query(mvft, q1, shards=4, all_modes=False)
        assert profile.shards, "expected a sharded pass"
        assert [s.index for s in profile.shards] == list(
            range(len(profile.shards))
        )
        total_rows = sum(s.rows for s in profile.shards)
        assert total_rows == len(mvft.slice("tcm"))
        assert profile.merge_seconds is not None

    def test_per_mode_stats_cover_every_structure_version(self, mvft, q1):
        profile = profile_query(mvft, q1, shards=1)
        assert [m.mode for m in profile.modes] == mvft.modes.labels
        for stats in profile.modes:
            assert stats.rows_scanned > 0
            assert stats.rows_scanned >= stats.rows_matched
            assert stats.cells_emitted == stats.result_rows  # one measure

    def test_defaults_leave_runtime_untouched(self, mvft, q1):
        from repro.observability import runtime

        profile_query(mvft, q1, shards=2, all_modes=False)
        assert runtime.enabled() is False

    def test_to_text_report_sections(self, mvft, q1):
        profile = profile_query(
            mvft, q1, shards=4, statement="SELECT amount BY year"
        )
        text = profile.to_text()
        assert "QUERY PROFILE" in text
        assert "SELECT amount BY year" in text
        assert "collect_contributions" in text
        assert "shard 0" in text
        assert "per structure version:" in text
        for label in mvft.modes.labels:
            assert label in text

    def test_to_dict_round_trips_through_json(self, mvft, q1):
        import json

        profile = profile_query(mvft, q1, shards=2)
        data = json.loads(json.dumps(profile.to_dict()))
        assert data["mode"] == "tcm"
        assert len(data["phases"]) == 3
        assert len(data["modes"]) == len(mvft.modes.labels)
