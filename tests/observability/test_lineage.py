"""Tests for per-cell query lineage (explain_cell)."""

import pytest

from repro.concurrency import ShardedExecutor
from repro.core import (
    Interval,
    LevelGroup,
    Query,
    QueryEngine,
    TimeGroup,
    YEAR,
    ym,
)
from repro.core.errors import QueryError
from repro.mvql import MVQLSession
from repro.mvql.errors import MVQLCompileError
from repro.observability import NULL_LINEAGE, CellLineage, LineageRecorder
from repro.olap import Cube, LevelAxis, TimeAxis
from repro.workloads.case_study import ORG


Q1 = Query(
    group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")),
    time_range=Interval(ym(2001, 1), ym(2002, 12)),
)
Q2 = Query(
    group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Department")),
    time_range=Interval(ym(2002, 1), ym(2003, 12)),
)


class TestRecorderCapture:
    def test_explained_cell_matches_the_returned_value_and_confidence(self, mvft):
        lineage = LineageRecorder()
        engine = QueryEngine(mvft, lineage=lineage)
        for mode in mvft.modes.labels:
            table = engine.execute(Q1.with_mode(mode))
            for row in table:
                cell = lineage.explain_cell(row.group, "amount", mode=mode)
                assert cell.value == row.value("amount")
                expected_cf = row.confidence("amount")
                assert cell.confidence == (
                    expected_cf.symbol if expected_cf is not None else None
                )

    def test_contributions_name_exact_member_versions(self, mvft):
        lineage = LineageRecorder()
        engine = QueryEngine(mvft, lineage=lineage)
        engine.execute(Q1.with_mode("V1"))
        cell = lineage.explain_cell(("2002", "Sales"), "amount")
        coords = [dict(c.coordinates)["org"] for c in cell.contributions]
        # Table 5: 2002 Sales in V1 aggregates the jones and smith leaves.
        assert coords == ["jones", "smith"]
        for contribution in cell.contributions:
            assert contribution.confidence is not None
            assert contribution.provenance

    def test_mapped_mode_lineage_names_the_mapping_function(self, mvft):
        # Q2 in V2 routes 2003 facts of the V3 structure back through the
        # mapping relationship — provenance must name endpoints + function.
        lineage = LineageRecorder()
        engine = QueryEngine(mvft, lineage=lineage)
        engine.execute(Q2.with_mode("V2"))
        cell = lineage.explain_cell(("2003", "Dpt.Jones"), "amount")
        provenance = [p for c in cell.contributions for p in c.provenance]
        assert any("->" in p and "amount" in p for p in provenance), provenance

    def test_fold_steps_record_the_cf_reduction(self, mvft):
        lineage = LineageRecorder()
        engine = QueryEngine(mvft, lineage=lineage)
        engine.execute(Q1.with_mode("V1"))
        cell = lineage.explain_cell(("2002", "Sales"), "amount")
        assert len(cell.contributions) == 2
        assert cell.fold_steps == ("sd ⊗cf sd -> sd",)

    def test_multi_step_fold_matches_the_aggregator(self, mvft, case_study):
        lineage = LineageRecorder()
        engine = QueryEngine(mvft, lineage=lineage)
        # Whole-history tcm query: group with >2 contributions exercises
        # a chained fold.
        query = Query(group_by=(LevelGroup(ORG, "Division"),))
        table = engine.execute(query)
        agg = case_study.schema.cf_aggregator
        for row in table:
            cell = lineage.explain_cell(row.group, "amount")
            if len(cell.contributions) < 2:
                continue
            assert len(cell.fold_steps) == len(cell.contributions) - 1
            # The last step's result is the cell's confidence.
            assert cell.fold_steps[-1].endswith(f"-> {cell.confidence}")

    def test_begin_clears_previous_capture_of_the_same_mode(self, mvft):
        lineage = LineageRecorder()
        engine = QueryEngine(mvft, lineage=lineage)
        engine.execute(Q1.with_mode("V1"))
        first = len(lineage.cells())
        engine.execute(Q1.with_mode("V1"))
        assert len(lineage.cells()) == first

    def test_group_labels_match_by_string_rendering(self, mvft):
        lineage = LineageRecorder()
        engine = QueryEngine(mvft, lineage=lineage)
        engine.execute(Q1.with_mode("V1"))
        exact = lineage.explain_cell(("2002", "Sales"), "amount")
        assert isinstance(exact, CellLineage)
        assert exact.measure == "amount"

    def test_missing_cell_raises_with_recorded_listing(self, mvft):
        lineage = LineageRecorder()
        engine = QueryEngine(mvft, lineage=lineage)
        engine.execute(Q1.with_mode("V1"))
        with pytest.raises(KeyError, match="no lineage recorded"):
            lineage.explain_cell(("1999", "Nothing"), "amount")

    def test_disabled_recorder_captures_nothing(self, mvft):
        lineage = LineageRecorder()
        lineage.enabled = False
        engine = QueryEngine(mvft, lineage=lineage)
        engine.execute(Q1.with_mode("V1"))
        assert lineage.cells() == []

    def test_null_lineage_explain_raises(self, mvft):
        engine = QueryEngine(mvft)
        assert engine.lineage is NULL_LINEAGE
        with pytest.raises(KeyError, match="disabled"):
            engine.lineage.explain_cell(("2002", "Sales"), "amount")

    def test_to_text_renders_the_derivation_tree(self, mvft):
        lineage = LineageRecorder()
        engine = QueryEngine(mvft, lineage=lineage)
        engine.execute(Q1.with_mode("V1"))
        text = lineage.explain_cell(("2002", "Sales"), "amount").to_text()
        assert "cell (2002, Sales)" in text
        assert "⊗cf" in text
        assert "via " in text

    def test_to_dict_round_trips_through_json(self, mvft):
        import json

        lineage = LineageRecorder()
        engine = QueryEngine(mvft, lineage=lineage)
        engine.execute(Q1.with_mode("V1"))
        cell = lineage.explain_cell(("2002", "Sales"), "amount")
        payload = json.loads(json.dumps(cell.to_dict()))
        assert payload["measure"] == "amount"
        assert payload["group"] == ["2002", "Sales"]
        assert len(payload["contributions"]) == 2


class TestShardedLineage:
    def test_sharded_lineage_matches_serial(self, mvft):
        serial = LineageRecorder()
        QueryEngine(mvft, lineage=serial).execute(Q1.with_mode("V2"))
        sharded = LineageRecorder()
        executor = ShardedExecutor(
            mvft, shards=4, max_workers=4, lineage=sharded
        )
        executor.execute(Q1.with_mode("V2"))
        assert serial.cells() == sharded.cells()
        for key in serial.cells():
            a = serial.explain_cell(key[1], key[2], mode=key[0])
            b = sharded.explain_cell(key[1], key[2], mode=key[0])
            assert a.contributions == b.contributions
            assert a.fold_steps == b.fold_steps
            assert a.value == b.value and a.confidence == b.confidence


class TestSessionAndCubeSurfaces:
    def test_session_explain_true_records_and_explains(self, mvft):
        session = MVQLSession(mvft, explain=True)
        table = session.execute(
            "SELECT amount BY year, org.Division IN MODE V1 DURING 2001..2002"
        )
        row = next(iter(table))
        cell = session.explain_cell(row.group, "amount")
        assert cell.value == row.value("amount")

    def test_session_without_explain_raises(self, mvft):
        session = MVQLSession(mvft)
        with pytest.raises(MVQLCompileError, match="explain=True"):
            session.explain_cell(("2002", "Sales"), "amount")

    def test_cube_explain_cell(self, mvft):
        cube = Cube(mvft, explain=True)
        view = cube.pivot(
            "V1", TimeAxis(YEAR), LevelAxis(ORG, "Division"), "amount"
        )
        cell = cube.explain_cell("2002", "Sales", "amount")
        assert cell.value == view.cell("2002", "Sales").value

    def test_explaining_cube_bypasses_the_lattice(self, mvft):
        cube = Cube(mvft, materialize=True, explain=True)
        cube.pivot("V1", TimeAxis(YEAR), LevelAxis(ORG, "Division"), "amount")
        # Lattice-served pivots record no lineage; the explain surface
        # must therefore have gone through the engine.
        assert cube.explain_cell("2002", "Sales", "amount").contributions

    def test_cube_without_lineage_raises(self, mvft):
        cube = Cube(mvft)
        with pytest.raises(QueryError, match="explain=True"):
            cube.explain_cell("2002", "Sales", "amount")
