"""Tests for the metrics registry."""

import pytest

from repro.observability import NULL_METRICS, MetricsRegistry


class TestCounters:
    def test_inc_accumulates(self):
        m = MetricsRegistry()
        c = m.counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_same_name_and_labels_share_a_series(self):
        m = MetricsRegistry()
        m.counter("hits", {"mode": "tcm"}).inc()
        m.counter("hits", {"mode": "tcm"}).inc()
        m.counter("hits", {"mode": "V1"}).inc()
        snap = m.snapshot()["counters"]
        assert snap['hits{mode="tcm"}'] == 2
        assert snap['hits{mode="V1"}'] == 1

    def test_negative_increment_rejected(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError):
            m.counter("hits").inc(-1)


class TestGauges:
    def test_set_inc_dec(self):
        m = MetricsRegistry()
        g = m.gauge("open")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistograms:
    def test_observations_land_in_buckets(self):
        m = MetricsRegistry()
        h = m.histogram("lat", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(5.555)
        assert h.mean == pytest.approx(5.555 / 4)
        cumulative = h.cumulative()
        assert cumulative[-1][0] == "+Inf"
        assert cumulative[-1][1] == 4
        # each observation fell into a distinct bucket
        assert [c for _, c in cumulative] == [1, 2, 3, 4]


class TestRegistry:
    def test_snapshot_covers_all_instrument_kinds(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.gauge("g").set(3)
        m.histogram("h").observe(0.2)
        snap = m.snapshot()
        assert snap["counters"]["c"] == 1
        assert snap["gauges"]["g"] == 3
        assert snap["histograms"]["h"]["count"] == 1

    def test_render_prometheus_format(self):
        m = MetricsRegistry()
        m.counter("query.rows_scanned", {"mode": "tcm"}).inc(7)
        m.histogram("txn.commit_seconds").observe(0.02)
        text = m.render_prometheus()
        assert '# TYPE query_rows_scanned counter' in text
        assert 'query_rows_scanned{mode="tcm"} 7' in text
        assert 'txn_commit_seconds_count 1' in text
        assert 'le="+Inf"' in text

    def test_reset_clears_everything(self):
        m = MetricsRegistry()
        m.counter("c").inc()
        m.reset()
        assert m.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestNullMetrics:
    def test_disabled_and_noops(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.counter("c").inc()
        NULL_METRICS.gauge("g").set(1)
        NULL_METRICS.histogram("h").observe(0.5)
        assert NULL_METRICS.counter("c").value == 0


class TestSeriesValidation:
    def test_label_values_are_escaped_in_prometheus_output(self):
        m = MetricsRegistry()
        m.counter("c", {"q": 'say "hi"\\now\nplease'}).inc()
        text = m.render_prometheus()
        assert r'q="say \"hi\"\\now\nplease"' in text
        # The exposition stays one line per sample.
        sample_lines = [l for l in text.splitlines() if l.startswith("c{")]
        assert len(sample_lines) == 1

    def test_invalid_metric_names_are_rejected(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            m.counter("1starts-with-digit")
        with pytest.raises(ValueError, match="invalid metric name"):
            m.gauge("has space")
        with pytest.raises(ValueError, match="invalid metric name"):
            m.histogram("")

    def test_invalid_label_names_are_rejected(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid label name"):
            m.counter("ok", {"bad-label": "x"})

    def test_validation_happens_once_per_series(self):
        # The cached-lookup fast path must still return the instrument.
        m = MetricsRegistry()
        first = m.counter("ok", {"mode": "tcm"})
        assert m.counter("ok", {"mode": "tcm"}) is first

    def test_snapshot_histograms_include_cumulative_buckets(self):
        m = MetricsRegistry()
        h = m.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(5.0)
        entry = m.snapshot()["histograms"]["lat"]
        assert entry["buckets"] == [("0.1", 1), ("1", 1), ("+Inf", 2)]
