"""Wire-level trace propagation: traceparent, remote parents, sampling.

The W3C-style ``traceparent`` (``00-<trace>-<span>-<flags>``) carries a
trace across the client/server process boundary; these tests exercise
the header codec, remote-parent adoption, sampled-out propagation, and
isolation between concurrent asyncio sessions each resuming a different
remote trace.
"""

import asyncio

import pytest

from repro.concurrency.sharding import ShardedExecutor
from repro.core import Interval, LevelGroup, Query, TimeGroup, YEAR, ym
from repro.observability import (
    TraceSampler,
    Tracer,
    format_traceparent,
    parse_traceparent,
)
from repro.workloads.case_study import ORG

Q1 = Query(
    group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")),
    time_range=Interval(ym(2001, 1), ym(2002, 12)),
)


class TestTraceparentCodec:
    def test_round_trip(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            header = format_traceparent(root)
        trace_id, span_id, sampled = parse_traceparent(header)
        assert trace_id == root.trace_id
        assert span_id == root.span_id
        assert sampled is True

    def test_header_shape(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            header = format_traceparent(root)
        version, trace_hex, span_hex, flags = header.split("-")
        assert version == "00"
        assert len(trace_hex) == 32 and len(span_hex) == 16
        assert flags == "01"

    def test_unsampled_span_formats_flags_00(self):
        tracer = Tracer(sampler=TraceSampler(ratio=0.0))
        with tracer.span("root") as root:
            header = format_traceparent(root)
        assert header.endswith("-00")
        assert parse_traceparent(header)[2] is False

    @pytest.mark.parametrize(
        "bad",
        [
            None,
            "",
            "garbage",
            "00-abc-def-01",  # wrong widths
            "00-" + "0" * 32 + "-" + "1" * 16 + "-01",  # zero trace id
            "00-" + "1" * 32 + "-" + "0" * 16 + "-01",  # zero span id
            "ff-" + "1" * 32 + "-" + "1" * 16 + "-01",  # forbidden version
            "00-" + "x" * 32 + "-" + "1" * 16 + "-01",  # not hex
            "00-" + "1" * 32 + "-" + "1" * 16,  # missing flags
        ],
    )
    def test_malformed_values_parse_to_none(self, bad):
        assert parse_traceparent(bad) is None

    def test_malformed_traceparent_is_ignored_by_span(self):
        tracer = Tracer()
        with tracer.span("s", traceparent="not-a-header") as span:
            pass
        assert span.parent_id is None
        assert span.trace_id == span.span_id


class TestRemoteParentAdoption:
    def test_two_tracers_one_trace(self):
        client, server = Tracer(), Tracer()
        with client.span("client.request") as request:
            header = format_traceparent(request)
        with server.span("server.statement", traceparent=header) as stmt:
            with server.span("engine.phase") as phase:
                pass
        assert stmt.trace_id == request.trace_id == phase.trace_id
        assert stmt.parent_id == request.span_id
        assert phase.parent_id == stmt.span_id

    def test_span_ids_do_not_collide_across_tracers(self):
        # Each tracer draws span ids from its own random base, so spans
        # meeting in one distributed trace stay distinct.
        ids = set()
        for _ in range(5):
            tracer = Tracer()
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
            ids.update(s.span_id for s in tracer.spans)
        assert len(ids) == 10

    def test_client_sampled_out_trace_stays_dropped_server_side(self):
        client = Tracer(sampler=TraceSampler(ratio=0.0))
        server = Tracer()
        with client.span("client.request") as request:
            header = format_traceparent(request)
        with server.span("server.statement", traceparent=header):
            with server.span("engine.phase"):
                pass
        assert client.spans == ()
        assert server.spans == ()

    def test_shard_spans_join_the_remote_trace(self, mvft):
        # The sharded executor passes parent= explicitly to its worker
        # spans; under a remote-parented statement span the whole shard
        # fan-out must land in the caller's trace.
        client, server = Tracer(), Tracer()
        with client.span("client.request") as request:
            header = format_traceparent(request)
        with server.span("server.statement", traceparent=header):
            ShardedExecutor(mvft, shards=4, tracer=server).execute(Q1)
        assert server.spans
        assert {s.trace_id for s in server.spans} == {request.trace_id}
        shard_spans = server.find("shard.collect")
        assert len(shard_spans) == 4


class TestConcurrentRemoteTraces:
    def test_concurrent_sessions_keep_their_own_remote_trace(self):
        """Interleaved asyncio tasks, each resuming a different client's
        trace, never adopt each other's trace id or parent."""
        clients = [Tracer() for _ in range(4)]
        headers = []
        for i, client in enumerate(clients):
            with client.span("client.request", attributes={"i": i}) as span:
                headers.append(format_traceparent(span))
        server = Tracer()

        async def statement(i: int) -> None:
            with server.span(
                "server.statement",
                attributes={"i": i},
                traceparent=headers[i],
            ):
                await asyncio.sleep(0.001 * (i % 3))
                with server.span("engine.phase", attributes={"i": i}):
                    await asyncio.sleep(0)

        async def run() -> None:
            await asyncio.gather(*(statement(i) for i in range(len(clients))))

        asyncio.run(run())
        statements = {
            s.attributes["i"]: s for s in server.find("server.statement")
        }
        phases = {s.attributes["i"]: s for s in server.find("engine.phase")}
        for i, client in enumerate(clients):
            root = client.spans[0]
            assert statements[i].trace_id == root.trace_id
            assert statements[i].parent_id == root.span_id
            assert phases[i].trace_id == root.trace_id
            assert phases[i].parent_id == statements[i].span_id
        # Four distinct clients -> four distinct traces server-side.
        assert len({s.trace_id for s in statements.values()}) == len(clients)
