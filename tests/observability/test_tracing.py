"""Tests for the span tracer."""

import threading

import pytest

from repro.observability import NULL_TRACER, Tracer, read_jsonl


class TestSpans:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("sibling"):
                pass
        root = tracer.find("root")[0]
        assert root.parent_id is None
        children = tracer.children(root)
        assert [s.name for s in children] == ["child", "sibling"]
        grandchild = tracer.find("grandchild")[0]
        assert grandchild.parent_id == tracer.find("child")[0].span_id

    def test_durations_are_monotonic_and_nonnegative(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.find("outer")[0]
        inner = tracer.find("inner")[0]
        assert outer.finished and inner.finished
        assert outer.duration_ns >= inner.duration_ns >= 0

    def test_attributes_and_set_chaining(self):
        tracer = Tracer()
        with tracer.span("s", attributes={"a": 1}) as span:
            span.set("b", 2).set("c", "x")
        assert tracer.find("s")[0].attributes == {"a": 1, "b": 2, "c": "x"}

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        span = tracer.find("boom")[0]
        assert span.finished
        assert "ValueError" in span.attributes["error"]

    def test_explicit_parent_overrides_thread_local_stack(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            pass
        with tracer.span("adopted", parent=root):
            pass
        assert tracer.find("adopted")[0].parent_id == root.span_id

    def test_worker_thread_spans_attach_via_explicit_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            def work():
                with tracer.span("worker", parent=root):
                    pass
            t = threading.Thread(target=work)
            t.start()
            t.join()
        worker = tracer.find("worker")[0]
        assert worker.parent_id == root.span_id

    def test_tree_text_indents_children(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        text = tracer.tree_text()
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")

    def test_clear_resets_recorded_spans(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.clear()
        assert not tracer.spans


class TestJsonlRoundTrip:
    def test_write_and_read_back(self, tmp_path):
        tracer = Tracer()
        with tracer.span("root", attributes={"k": "v"}):
            with tracer.span("child"):
                pass
        path = tmp_path / "trace.jsonl"
        count = tracer.write_jsonl(path)
        assert count == 2
        records = read_jsonl(path)
        assert len(records) == 2
        by_name = {r["name"]: r for r in records}
        assert by_name["child"]["parent_id"] == by_name["root"]["span_id"]
        assert by_name["root"]["attributes"] == {"k": "v"}
        for r in records:
            assert r["duration_us"] >= 0
            assert r["start_us"] >= 0


class TestNullTracer:
    def test_disabled_and_shared_noop_span(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("anything", attributes={"x": 1}) as span:
            span.set("y", 2)
        # the null tracer records nothing
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")
