"""Tests for OTLP-JSON span export and trace sampling."""

import json
import re
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.concurrency import ShardedExecutor
from repro.core import Interval, LevelGroup, Query, TimeGroup, YEAR, ym
from repro.observability import (
    TraceSampler,
    Tracer,
    read_jsonl,
    read_otlp_json,
    spans_to_otlp,
    tracer_to_otlp,
    write_otlp_json,
)
from repro.workloads.case_study import ORG


HEX16 = re.compile(r"[0-9a-f]{16}\Z")
HEX32 = re.compile(r"[0-9a-f]{32}\Z")


def _otlp_spans(document):
    return document["resourceSpans"][0]["scopeSpans"][0]["spans"]


class TestOtlpShape:
    def test_resource_scope_span_structure(self):
        tracer = Tracer()
        with tracer.span("root", attributes={"mode": "V1"}):
            with tracer.span("child"):
                pass
        document = tracer_to_otlp(tracer, service_name="repro-test")
        resource = document["resourceSpans"][0]["resource"]
        assert resource["attributes"] == [
            {"key": "service.name", "value": {"stringValue": "repro-test"}}
        ]
        scope = document["resourceSpans"][0]["scopeSpans"][0]["scope"]
        assert scope["name"] == "repro.observability"
        spans = _otlp_spans(document)
        assert len(spans) == 2
        for span in spans:
            assert HEX32.match(span["traceId"])
            assert HEX16.match(span["spanId"])
            assert span["kind"] == 1
            assert int(span["endTimeUnixNano"]) >= int(
                span["startTimeUnixNano"]
            )

    def test_parent_links_and_shared_trace_id(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child"):
                pass
        document = tracer_to_otlp(tracer)
        by_name = {s["name"]: s for s in _otlp_spans(document)}
        assert by_name["root"]["parentSpanId"] == ""
        assert by_name["child"]["parentSpanId"] == by_name["root"]["spanId"]
        assert by_name["child"]["traceId"] == by_name["root"]["traceId"]
        assert int(by_name["root"]["traceId"], 16) == root.span_id

    def test_separate_roots_get_separate_trace_ids(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        spans = _otlp_spans(tracer_to_otlp(tracer))
        assert spans[0]["traceId"] != spans[1]["traceId"]

    def test_attribute_any_value_encoding(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.set("flag", True).set("n", 7).set("x", 0.5).set("s", "text")
        (otlp,) = _otlp_spans(tracer_to_otlp(tracer))
        values = {a["key"]: a["value"] for a in otlp["attributes"]}
        assert values["flag"] == {"boolValue": True}
        assert values["n"] == {"intValue": "7"}
        assert values["x"] == {"doubleValue": 0.5}
        assert values["s"] == {"stringValue": "text"}

    def test_error_span_gets_error_status(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        (otlp,) = _otlp_spans(tracer_to_otlp(tracer))
        assert otlp["status"]["code"] == 2
        assert "RuntimeError" in otlp["status"]["message"]

    def test_wall_clock_anchor_is_plausible(self):
        import time

        before = time.time_ns()
        tracer = Tracer()
        with tracer.span("s"):
            pass
        (otlp,) = _otlp_spans(tracer_to_otlp(tracer))
        after = time.time_ns()
        assert before <= int(otlp["startTimeUnixNano"]) <= after

    def test_write_and_read_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        path = tmp_path / "trace.otlp.json"
        count = write_otlp_json(tracer, path)
        assert count == 2
        spans = read_otlp_json(path)
        assert [s["name"] for s in spans] == ["child", "root"]
        # The file is one valid JSON document.
        json.loads(path.read_text(encoding="utf-8"))

    def test_orphan_parent_keeps_its_trace_id(self):
        # A span whose parent was cleared (or never finished) must not
        # crash the converter — and exporting a subset must not change
        # trace identity: the orphan still carries the trace id it was
        # born with, so it rejoins its siblings in any collector.
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child"):
                pass
        orphans = [s for s in tracer.spans if s.name == "child"]
        document = spans_to_otlp(orphans, origin_ns=tracer.origin_ns)
        (otlp,) = _otlp_spans(document)
        assert int(otlp["traceId"], 16) == root.trace_id == root.span_id
        assert root.finished


class TestCrossThreadSpanTrees:
    """Spans created on pool threads with explicit parent= must round-trip
    through both export formats with parent ids intact."""

    def _build_cross_thread_trace(self):
        tracer = Tracer()
        with tracer.span("fanout") as root:
            def work(i):
                with tracer.span(
                    "worker", parent=root, attributes={"index": i}
                ):
                    with tracer.span("inner"):
                        pass

            with ThreadPoolExecutor(max_workers=4) as pool:
                list(pool.map(work, range(4)))
        return tracer

    def test_jsonl_round_trip_preserves_parent_ids(self, tmp_path):
        tracer = self._build_cross_thread_trace()
        path = tmp_path / "spans.jsonl"
        tracer.write_jsonl(path)
        records = read_jsonl(path)
        by_id = {r["span_id"]: r for r in records}
        root = next(r for r in records if r["name"] == "fanout")
        workers = [r for r in records if r["name"] == "worker"]
        inners = [r for r in records if r["name"] == "inner"]
        assert len(workers) == 4 and len(inners) == 4
        assert all(w["parent_id"] == root["span_id"] for w in workers)
        # Each inner span chains under some worker via the worker
        # thread's own stack.
        for inner in inners:
            assert by_id[inner["parent_id"]]["name"] == "worker"

    def test_otlp_round_trip_preserves_parent_links(self, tmp_path):
        tracer = self._build_cross_thread_trace()
        path = tmp_path / "spans.otlp.json"
        write_otlp_json(tracer, path)
        spans = read_otlp_json(path)
        by_id = {s["spanId"]: s for s in spans}
        root = next(s for s in spans if s["name"] == "fanout")
        workers = [s for s in spans if s["name"] == "worker"]
        inners = [s for s in spans if s["name"] == "inner"]
        assert all(w["parentSpanId"] == root["spanId"] for w in workers)
        for inner in inners:
            assert by_id[inner["parentSpanId"]]["name"] == "worker"
        # One fan-out, one trace: every span shares the root's trace id.
        assert {s["traceId"] for s in spans} == {root["traceId"]}

    def test_sharded_profiled_query_exports_valid_otlp(self, mvft, tmp_path):
        tracer = Tracer()
        executor = ShardedExecutor(
            mvft, shards=4, max_workers=4, tracer=tracer
        )
        query = Query(
            mode="V2",
            group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")),
            time_range=Interval(ym(2001, 1), ym(2002, 12)),
        )
        executor.execute(query)
        path = tmp_path / "sharded.otlp.json"
        write_otlp_json(tracer, path)
        spans = read_otlp_json(path)
        ids = {s["spanId"] for s in spans}
        root = next(s for s in spans if s["name"] == "shard.execute")
        collects = [s for s in spans if s["name"] == "shard.collect"]
        assert len(collects) == 4
        for span in spans:
            assert HEX32.match(span["traceId"])
            assert HEX16.match(span["spanId"])
            if span["parentSpanId"]:
                assert span["parentSpanId"] in ids
        assert all(c["parentSpanId"] == root["spanId"] for c in collects)
        assert {s["traceId"] for s in spans} == {root["traceId"]}


class TestTraceSampler:
    def test_ratio_is_exact_and_deterministic(self):
        sampler = TraceSampler(0.25, always_on_error=False)
        decisions = [sampler.sample() for _ in range(100)]
        assert sum(decisions) == 25
        # Counter-based: the same ratio always keeps the same indices.
        other = TraceSampler(0.25, always_on_error=False)
        assert [other.sample() for _ in range(100)] == decisions

    def test_ratio_bounds_validated(self):
        with pytest.raises(ValueError, match="ratio"):
            TraceSampler(1.5)

    def test_sampled_traces_record_and_unsampled_drop(self):
        sampler = TraceSampler(0.5, always_on_error=False)
        tracer = Tracer(sampler=sampler)
        for _ in range(4):
            with tracer.span("root"):
                with tracer.span("child"):
                    pass
        assert len(tracer.spans) == 4  # 2 of 4 traces × 2 spans
        assert sampler.traces_sampled == 2

    def test_children_inherit_the_trace_decision(self):
        sampler = TraceSampler(0.0, always_on_error=False)
        tracer = Tracer(sampler=sampler)
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert tracer.spans == ()

    def test_error_spans_are_rescued_from_unsampled_traces(self):
        sampler = TraceSampler(0.0, always_on_error=True)
        tracer = Tracer(sampler=sampler)
        with pytest.raises(ValueError):
            with tracer.span("root"):
                with tracer.span("boom"):
                    raise ValueError("nope")
        names = [s.name for s in tracer.spans]
        assert names == ["boom", "root"]  # both exited with error set
        assert sampler.spans_rescued == 2

    def test_explicit_parent_inherits_sampling_across_threads(self):
        sampler = TraceSampler(0.0, always_on_error=False)
        tracer = Tracer(sampler=sampler)
        with tracer.span("root") as root:
            def work():
                with tracer.span("worker", parent=root):
                    pass

            with ThreadPoolExecutor(max_workers=2) as pool:
                list(pool.map(lambda _i: work(), range(2)))
        assert tracer.spans == ()

    def test_unsampled_spans_do_not_leak_into_otlp(self):
        sampler = TraceSampler(0.5, always_on_error=False)
        tracer = Tracer(sampler=sampler)
        for _ in range(4):
            with tracer.span("root"):
                pass
        assert len(_otlp_spans(tracer_to_otlp(tracer))) == 2


class TestPushExporters:
    """The push half: bounded queue, retrying sinks, span/metrics pushers."""

    def test_file_sink_roundtrip(self, tmp_path):
        from repro.observability import FileSink, read_push_file

        sink = FileSink(tmp_path / "push.jsonl")
        sink.emit({"a": 1})
        sink.emit({"b": [2, 3]})
        assert sink.emitted == 2
        assert read_push_file(sink.path) == [{"a": 1}, {"b": [2, 3]}]

    def test_submit_flush_and_stats(self, tmp_path):
        from repro.observability import FileSink, PushExporter

        exporter = PushExporter(FileSink(tmp_path / "p.jsonl"), name="t")
        assert exporter.submit({"n": 1}) and exporter.submit({"n": 2})
        assert exporter.flush() == 2
        stats = exporter.stats()
        assert stats["pushed"] == 2 and stats["queued"] == 0
        assert stats["name"] == "t"

    def test_full_queue_drops_incoming(self, tmp_path):
        from repro.observability import FileSink, MetricsRegistry, PushExporter

        metrics = MetricsRegistry()
        exporter = PushExporter(
            FileSink(tmp_path / "p.jsonl"), max_queue=1, metrics=metrics,
            name="tiny",
        )
        assert exporter.submit({"n": 1})
        assert not exporter.submit({"n": 2})
        assert exporter.stats()["dropped"] == 1
        counters = metrics.snapshot()["counters"]
        assert counters['export.push.dropped{exporter="tiny"}'] == 1

    def test_dead_sink_exhausts_retries_and_abandons(self, tmp_path):
        from repro.observability import PushExporter
        from repro.robustness.retry import RetryPolicy

        class DeadSink:
            attempts = 0

            def emit(self, payload):
                self.attempts += 1
                raise OSError("collector down")

        sink = DeadSink()
        exporter = PushExporter(
            sink,
            retry=RetryPolicy(max_attempts=3, base_delay=0.0, sleep=lambda s: None),
        )
        exporter.submit({"n": 1})
        assert exporter.flush() == 0
        assert sink.attempts == 3
        stats = exporter.stats()
        assert stats["failures"] == 1 and stats["queued"] == 0

    def test_flaky_sink_recovers_through_retry(self, tmp_path):
        from repro.observability import ExportError, PushExporter
        from repro.robustness.retry import RetryPolicy

        class FlakyOnce:
            calls = 0
            delivered = []

            def emit(self, payload):
                self.calls += 1
                if self.calls == 1:
                    raise ExportError("hiccup")
                self.delivered.append(payload)

        sink = FlakyOnce()
        exporter = PushExporter(
            sink,
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, sleep=lambda s: None),
        )
        exporter.submit({"n": 1})
        assert exporter.flush() == 1
        assert sink.delivered == [{"n": 1}]

    def test_span_pusher_ships_new_spans_as_otlp(self, tmp_path):
        from repro.observability import FileSink, SpanPusher, read_push_file

        tracer = Tracer()
        with tracer.span("first"):
            pass
        sink = FileSink(tmp_path / "otlp.jsonl")
        pusher = SpanPusher(tracer, sink)
        pusher.flush()
        with tracer.span("second"):
            pass
        pusher.flush()
        pusher.flush()  # no new spans: nothing pushed
        docs = read_push_file(sink.path)
        assert len(docs) == 2
        names = [s["name"] for doc in docs for s in _otlp_spans(doc)]
        assert names == ["first", "second"]
        for doc in docs:
            for span in _otlp_spans(doc):
                assert HEX32.match(span["traceId"])

    def test_span_pusher_survives_tracer_clear(self, tmp_path):
        from repro.observability import FileSink, SpanPusher, read_push_file

        tracer = Tracer()
        with tracer.span("a"):
            pass
        sink = FileSink(tmp_path / "otlp.jsonl")
        pusher = SpanPusher(tracer, sink)
        pusher.flush()
        tracer.clear()
        with tracer.span("b"):
            pass
        pusher.flush()
        names = [
            s["name"]
            for doc in read_push_file(sink.path)
            for s in _otlp_spans(doc)
        ]
        assert names == ["a", "b"]

    def test_metrics_pusher_context_manager(self, tmp_path):
        from repro.observability import (
            FileSink,
            MetricsPusher,
            MetricsRegistry,
            read_push_file,
        )

        metrics = MetricsRegistry()
        metrics.counter("demo").inc(3)
        sink = FileSink(tmp_path / "m.jsonl")
        with MetricsPusher(metrics, sink, interval=0.01):
            pass  # exit stops the flusher and drains one final snapshot
        docs = read_push_file(sink.path)
        assert docs
        assert docs[-1]["type"] == "metrics"
        assert docs[-1]["snapshot"]["counters"]["demo"] == 3

    def test_validation(self, tmp_path):
        from repro.observability import FileSink, PushExporter

        with pytest.raises(ValueError, match="at least one payload"):
            PushExporter(FileSink(tmp_path / "p"), max_queue=0)
        with pytest.raises(ValueError, match="interval"):
            PushExporter(FileSink(tmp_path / "p"), interval=0)
