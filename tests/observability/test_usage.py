"""Tests for per-tenant usage metering: LabelledMetrics + UsageMeter."""

import threading

import pytest

from repro.core import (
    Interval,
    LevelGroup,
    Query,
    QueryEngine,
    TimeGroup,
    YEAR,
    ym,
)
from repro.observability import (
    EventBus,
    LabelledMetrics,
    MetricsRegistry,
    UsageMeter,
    read_usage_log,
    statement_digest,
)
from repro.workloads.case_study import ORG

Q1 = Query(
    group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")),
    time_range=Interval(ym(2001, 1), ym(2002, 12)),
)


class TestLabelledMetrics:
    def test_fixed_labels_ride_every_series(self):
        base = MetricsRegistry()
        view = LabelledMetrics(base, {"tenant": "acme"})
        view.counter("query.rows_scanned", {"mode": "tcm"}).inc(7)
        view.gauge("engine.load").set(2)
        snap = base.snapshot()
        assert snap["counters"] == {
            'query.rows_scanned{mode="tcm",tenant="acme"}': 7.0
        }
        assert snap["gauges"] == {'engine.load{tenant="acme"}': 2.0}

    def test_stamped_labels_win_over_call_labels(self):
        # A caller passing its own tenant label cannot escape the view's
        # attribution — the fixed labels overwrite on conflict.
        base = MetricsRegistry()
        view = LabelledMetrics(base, {"tenant": "acme"})
        view.counter("c", {"tenant": "mallory"}).inc()
        assert base.snapshot()["counters"] == {'c{tenant="acme"}': 1.0}

    def test_view_delegates_enabled_and_snapshot(self):
        base = MetricsRegistry()
        view = LabelledMetrics(base, {"tenant": "t"})
        assert view.enabled is True
        assert view.registry is base
        view.counter("c").inc()
        assert view.snapshot() == base.snapshot()

    def test_engine_under_a_view_produces_tenant_series(self, mvft):
        base = MetricsRegistry()
        engine = QueryEngine(
            mvft, metrics=LabelledMetrics(base, {"tenant": "acme"})
        )
        engine.execute(Q1)
        keys = base.snapshot()["counters"]
        assert any(
            key.startswith("query.rows_scanned{") and 'tenant="acme"' in key
            for key in keys
        )


class TestUsageMeter:
    def _run(self, mvft, meter, base, tenant, query, *, statement=None):
        engine = QueryEngine(
            mvft, metrics=LabelledMetrics(base, {"tenant": tenant})
        )
        with meter.measure(tenant, f"{tenant}-1", statement=statement):
            engine.execute(query)

    def test_measure_attributes_engine_deltas(self, mvft):
        base = MetricsRegistry()
        meter = UsageMeter(base)
        self._run(mvft, meter, base, "acme", Q1, statement="q1")
        (record,) = meter.records("acme")
        assert record.statements == 1
        assert record.errors == 0
        assert record.rows_scanned > 0
        assert record.cells_emitted > 0
        assert record.digest == statement_digest("q1")

    def test_repeated_statement_accumulates_one_record(self, mvft):
        base = MetricsRegistry()
        meter = UsageMeter(base)
        for _ in range(3):
            self._run(mvft, meter, base, "acme", Q1, statement="q1")
        (record,) = meter.records("acme")
        assert record.statements == 3
        single = record.rows_scanned / 3
        assert single > 0 and record.rows_scanned == pytest.approx(3 * single)

    def test_errors_are_charged_and_reraised(self):
        meter = UsageMeter(MetricsRegistry())
        with pytest.raises(RuntimeError):
            with meter.measure("acme", "s1", statement="boom"):
                raise RuntimeError("boom")
        (record,) = meter.records()
        assert record.statements == 1 and record.errors == 1

    def test_wire_bytes_come_from_the_charge(self):
        meter = UsageMeter(MetricsRegistry())
        with meter.measure("acme", "s1") as charge:
            charge.add_wire_bytes(100)
            charge.add_wire_bytes(42)
        (record,) = meter.records()
        assert record.wire_bytes == 142

    def test_ledger_is_bounded_and_counts_evictions(self):
        meter = UsageMeter(MetricsRegistry(), capacity=2)
        for i in range(5):
            with meter.measure("acme", "s1", statement=f"q{i}"):
                pass
        assert len(meter.records()) == 2
        assert meter.evicted == 3
        assert meter.stats()["charged"] == 5

    def test_totals_aggregate_per_tenant(self):
        meter = UsageMeter(MetricsRegistry())
        with meter.measure("acme", "s1", statement="a"):
            pass
        with meter.measure("acme", "s1", statement="b"):
            pass
        with meter.measure("ops", "s2", statement="a"):
            pass
        totals = meter.totals()
        assert totals["acme"]["statements"] == 2
        assert totals["ops"]["statements"] == 1

    def test_top_sorts_by_field_and_validates_it(self, mvft):
        base = MetricsRegistry()
        meter = UsageMeter(base)
        self._run(mvft, meter, base, "acme", Q1, statement="expensive")
        with meter.measure("acme", "s1", statement="cheap"):
            pass
        top = meter.top(1, by="rows_scanned")
        assert top[0].statement == "expensive"
        with pytest.raises(ValueError):
            meter.top(1, by="nonsense")

    def test_jsonl_trail_and_bus_republish(self, tmp_path):
        bus = EventBus()
        events = bus.subscribe("billing", topics=["usage"])
        path = tmp_path / "usage.jsonl"
        meter = UsageMeter(MetricsRegistry(), path=path, bus=bus)
        with meter.measure("acme", "s1", statement="q") as charge:
            charge.add_wire_bytes(10)
        entries = read_usage_log(path)
        assert len(entries) == 1
        assert entries[0]["tenant"] == "acme"
        assert entries[0]["wire_bytes"] == 10
        assert entries[0]["ok"] is True
        (published,) = events.drain()
        assert published[0] == "usage"
        assert published[1]["digest"] == statement_digest("q")
        assert read_usage_log(path, tenant="other") == []

    def test_tenant_tag_matching_is_exact(self):
        # tenant="acme" must not absorb tenant="acme2"'s series.
        base = MetricsRegistry()
        meter = UsageMeter(base)
        LabelledMetrics(base, {"tenant": "acme2"}).counter(
            "query.rows_scanned", {"mode": "tcm"}
        ).inc(99)
        with meter.measure("acme", "s1"):
            LabelledMetrics(base, {"tenant": "acme"}).counter(
                "query.rows_scanned", {"mode": "tcm"}
            ).inc(5)
        (record,) = meter.records("acme")
        assert record.rows_scanned == 5.0


class TestConcurrentTenantAttribution:
    def test_two_tenants_split_the_global_counters_exactly(self, mvft):
        """Concurrent tenants: per-tenant bills sum to the global delta
        and never bleed into each other (disjoint labelled series)."""
        base = MetricsRegistry()
        meter = UsageMeter(base)
        rounds = 5
        errors: list[BaseException] = []

        def tenant_workload(tenant: str) -> None:
            try:
                engine = QueryEngine(
                    mvft, metrics=LabelledMetrics(base, {"tenant": tenant})
                )
                for i in range(rounds):
                    with meter.measure(
                        tenant, f"{tenant}-1", statement=f"q[{i}]"
                    ):
                        engine.execute(Q1)
            except BaseException as exc:  # pragma: no cover - surfacing
                errors.append(exc)

        threads = [
            threading.Thread(target=tenant_workload, args=(name,))
            for name in ("acme", "ops")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

        totals = meter.totals()
        assert set(totals) == {"acme", "ops"}
        global_scanned = sum(
            value
            for key, value in base.snapshot()["counters"].items()
            if key.startswith("query.rows_scanned{")
        )
        metered = totals["acme"]["rows_scanned"] + totals["ops"]["rows_scanned"]
        assert metered == pytest.approx(global_scanned)
        # Same query, same rounds -> identical bills; leakage would skew one.
        assert totals["acme"]["rows_scanned"] == pytest.approx(
            totals["ops"]["rows_scanned"]
        )
        assert totals["acme"]["statements"] == rounds
