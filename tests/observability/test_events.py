"""Tests for WAL change-data-capture and the in-process event bus.

The two load-bearing guarantees:

* a :class:`ChangeStream` resumed from any cursor — including across a
  compaction boundary — delivers a byte-identical event sequence to a
  cold replay over the journal's full chain;
* a slow :class:`EventBus` subscriber sheds into its own drop counter
  and never blocks the committing writer.
"""

import json

import pytest

from repro.core import ym
from repro.observability import (
    AuditEvent,
    AuditLog,
    ChangeStream,
    EventBus,
    MetricsRegistry,
    committed_events,
    last_committed_lsn,
    publish_commits,
    read_audit_log,
)
from repro.robustness import TransactionManager
from repro.robustness.wal import read_chain

from tests.robustness.conftest import build_schema

T0 = ym(2003, 6)


def managed(wal_path):
    return TransactionManager(build_schema(), wal=wal_path)


def grow(txm, n, *, base=0):
    """Commit ``n`` one-insert evolutions; returns their commit LSNs."""
    commits = []
    for i in range(base, base + n):
        with txm.transaction() as txn:
            txm.editor.insert(
                "Org", f"idN{i}", f"N{i}", T0, level="Department",
                parents=["idP1"],
            )
        commits.append(txn.commit_lsn)
    return commits


def event_bytes(events):
    """Canonical bytes of an event sequence — identity is compared on this."""
    return json.dumps([e.to_dict() for e in events], sort_keys=True)


class TestCommittedEvents:
    def test_strict_commit_lsn_order(self, tmp_path):
        txm = managed(tmp_path / "j.wal")
        grow(txm, 3)
        events = committed_events(read_chain(txm.wal.path))
        assert events, "expected committed op events"
        ordered = [e.commit_lsn for e in events]
        assert ordered == sorted(ordered)
        # within one commit, payload records keep journal order
        lsns = [e.lsn for e in events]
        assert lsns == sorted(lsns)
        for e in events:
            assert e.lsn < e.commit_lsn

    def test_aborted_and_open_transactions_invisible(self, tmp_path):
        txm = managed(tmp_path / "j.wal")
        grow(txm, 1)
        with pytest.raises(RuntimeError):
            with txm.transaction():
                txm.editor.insert(
                    "Org", "idBad", "Bad", T0, level="Department",
                    parents=["idP1"],
                )
                raise RuntimeError("boom")
        txm.begin()  # left open: no commit record
        txm.editor.insert(
            "Org", "idOpen", "Open", T0, level="Department", parents=["idP1"]
        )
        events = committed_events(read_chain(txm.wal.path))
        names = [e.record.get("kwargs", {}).get("name") for e in events]
        assert "Bad" not in names and "Open" not in names

    def test_restore_point_is_its_own_commit(self, tmp_path):
        txm = managed(tmp_path / "j.wal")
        grow(txm, 1)
        lsn = txm.create_restore_point("before-load")
        (rp,) = [
            e
            for e in committed_events(read_chain(txm.wal.path))
            if e.kind == "restore_point"
        ]
        assert rp.lsn == rp.commit_lsn == lsn
        assert rp.txid is None

    def test_kind_filter_and_unknown_kind(self, tmp_path):
        txm = managed(tmp_path / "j.wal")
        grow(txm, 2)
        txm.create_restore_point("rp")
        only_ops = committed_events(read_chain(txm.wal.path), kinds=["op"])
        assert only_ops and all(e.kind == "op" for e in only_ops)
        with pytest.raises(ValueError, match="unknown change-stream kind"):
            committed_events([], kinds=["commit"])

    def test_last_committed_lsn(self, tmp_path):
        path = tmp_path / "j.wal"
        assert last_committed_lsn(path) == 0
        txm = managed(path)
        commits = grow(txm, 3)
        assert last_committed_lsn(path) == commits[-1]


class TestChangeStream:
    def test_poll_advances_cursor_and_drains(self, tmp_path):
        txm = managed(tmp_path / "j.wal")
        commits = grow(txm, 2)
        stream = ChangeStream(txm.wal.path)
        first = stream.poll()
        assert first
        assert stream.cursor == commits[-1]
        assert stream.poll() == []
        grow(txm, 1, base=2)
        assert stream.poll()

    def test_resume_from_cursor_equals_cold_replay(self, tmp_path):
        txm = managed(tmp_path / "j.wal")
        grow(txm, 2)
        stream = ChangeStream(txm.wal.path)
        head = stream.poll()
        grow(txm, 2, base=2)
        # a brand-new stream resumed from the persisted cursor
        resumed = ChangeStream(txm.wal.path, from_lsn=stream.cursor)
        tail = resumed.poll()
        cold = committed_events(read_chain(txm.wal.path))
        assert event_bytes(head + tail) == event_bytes(cold)

    def test_resume_across_compaction_byte_identical(self, tmp_path):
        """The acceptance proof: tail, compact underneath, keep tailing —
        the concatenation is byte-identical to a cold full-chain replay."""
        txm = managed(tmp_path / "j.wal")
        grow(txm, 3)
        stream = ChangeStream(txm.wal.path)
        head = stream.poll()
        cursor = stream.cursor
        # compact: everything before the checkpoint moves to an archive
        # segment; the live journal no longer holds the polled records
        dropped = txm.wal.truncate_before(txm.checkpoint())
        assert dropped > 0
        grow(txm, 3, base=3)
        tail = stream.poll()
        assert tail, "events after the compaction boundary"
        resumed = ChangeStream(txm.wal.path, from_lsn=cursor)
        assert event_bytes(resumed.poll()) == event_bytes(tail)
        cold = committed_events(read_chain(txm.wal.path))
        assert event_bytes(head + tail) == event_bytes(cold)

    def test_kind_filtered_cursor_never_rescans(self, tmp_path):
        txm = managed(tmp_path / "j.wal")
        grow(txm, 1)
        txm.create_restore_point("rp")
        stream = ChangeStream(txm.wal.path, kinds=["op"])
        assert [e.kind for e in stream.poll()] == ["op"]
        # the restore point's commit was consumed by the filter: the
        # cursor moved past it, so nothing is re-delivered
        assert stream.cursor == last_committed_lsn(txm.wal.path) + 1
        assert stream.poll() == []

    def test_follow_yields_until_stopped(self, tmp_path):
        txm = managed(tmp_path / "j.wal")
        grow(txm, 2)
        stream = ChangeStream(txm.wal.path)
        polls = []

        def stop():
            return len(polls) >= 1

        def sleep(_):
            polls.append(True)

        events = list(stream.follow(stop=stop, sleep=sleep))
        assert event_bytes(events) == event_bytes(
            committed_events(read_chain(txm.wal.path))
        )

    def test_delivery_metric(self, tmp_path):
        txm = managed(tmp_path / "j.wal")
        grow(txm, 2)
        metrics = MetricsRegistry()
        stream = ChangeStream(txm.wal.path, metrics=metrics)
        n = len(stream.poll())
        assert metrics.snapshot()["counters"]["events.stream.delivered"] == n


class TestEventBus:
    def test_bounded_queue_drops_incoming_keeps_backlog(self):
        bus = EventBus()
        sub = bus.subscribe("slow", max_queue=2)
        for i in range(5):
            bus.publish("t", i)
        assert sub.dropped == 3
        assert sub.delivered == 2
        # the backlog (oldest events) survived; the incoming ones dropped
        assert [event for _, event in sub.drain()] == [0, 1]
        bus.publish("t", 99)
        assert [event for _, event in sub.drain()] == [99]

    def test_topic_filtering(self):
        bus = EventBus()
        commits = bus.subscribe("commits", topics=["commit"])
        everything = bus.subscribe("all")
        assert bus.publish("commit", {"n": 1}) == 2
        assert bus.publish("audit", {"n": 2}) == 1
        assert len(commits) == 1
        assert len(everything) == 2

    def test_drop_counters_reach_metrics(self):
        metrics = MetricsRegistry()
        bus = EventBus(metrics=metrics)
        bus.subscribe("tiny", max_queue=1)
        bus.publish("t", 1)
        bus.publish("t", 2)
        counters = metrics.snapshot()["counters"]
        assert counters['events.bus.dropped{subscriber="tiny"}'] == 1
        assert counters['events.bus.published{topic="t"}'] == 2

    def test_stats_and_unsubscribe(self):
        bus = EventBus()
        sub = bus.subscribe("a", topics=["x"])
        bus.publish("x", 1)
        stats = bus.stats()
        assert stats["published"] == 1
        assert stats["subscribers"]["a"]["topics"] == ["x"]
        sub.close()
        assert bus.subscribers == ()
        sub.close()  # idempotent

    def test_slow_subscriber_never_blocks_commits(self, tmp_path):
        """Deterministic satellite check: a full subscriber queue sheds
        into drop counters while every WAL commit still succeeds."""
        txm = managed(tmp_path / "j.wal")
        bus = EventBus()
        slow = bus.subscribe("slow", max_queue=1)
        publish_commits(txm, bus)
        commits = grow(txm, 5)
        assert len(commits) == 5 and all(isinstance(c, int) for c in commits)
        assert txm.committed == 5
        assert slow.delivered == 1
        assert slow.dropped == 4
        # the one delivered event is the first commit, verbatim
        ((topic, event),) = slow.drain()
        assert topic == "commit"
        assert event == {"txid": event["txid"], "commit_lsn": commits[0]}


class TestPublishCommits:
    def test_commit_hook_payload_matches_wal(self, tmp_path):
        txm = managed(tmp_path / "j.wal")
        bus = EventBus()
        sub = bus.subscribe()
        hook = publish_commits(txm, bus)
        commits = grow(txm, 2)
        assert [e["commit_lsn"] for _, e in sub.drain()] == commits
        txm.postcommit_hooks.remove(hook)
        grow(txm, 1, base=2)
        assert sub.drain() == []


class TestAuditTrail:
    def test_record_roundtrip_filters_and_last_lsn(self, tmp_path):
        log = AuditLog(tmp_path / "audit.jsonl", clock=lambda: 1.5)
        log.record(AuditEvent("auth", tenant="acme", session="acme-1"))
        log.record(
            AuditEvent(
                "evolve", tenant="ops", session="ops-1", lsn=42,
                detail={"base_version": 40},
            )
        )
        log.record(AuditEvent("auth_failed", ok=False, detail={"peer": "p"}))
        entries = log.entries()
        assert [e["action"] for e in entries] == [
            "auth", "evolve", "auth_failed",
        ]
        assert entries[0]["at"] == 1.5
        assert "lsn" not in entries[0]
        assert entries[1]["lsn"] == 42
        assert entries[1]["detail"] == {"base_version": 40}
        assert entries[2]["ok"] is False
        assert log.last_lsn() == 42
        assert [e["action"] for e in log.entries(tenant="ops")] == ["evolve"]
        assert log.entries(action="auth")[0]["tenant"] == "acme"

    def test_torn_final_line_dropped_mid_corruption_raises(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        log = AuditLog(path)
        log.record(AuditEvent("auth", tenant="t"))
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"action": "drain", "ok":')  # crash mid-append
        assert [e["action"] for e in read_audit_log(path)] == ["auth"]
        path.write_text('not json\n{"action": "auth"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt audit entry"):
            read_audit_log(path)

    def test_missing_file_is_empty_trail(self, tmp_path):
        assert read_audit_log(tmp_path / "nope.jsonl") == []
        assert AuditLog(tmp_path / "nope.jsonl").last_lsn() == 0

    def test_bus_republish_and_metrics(self, tmp_path):
        bus = EventBus()
        sub = bus.subscribe(topics=["audit"])
        log = AuditLog(tmp_path / "audit.jsonl", bus=bus)
        log.record(AuditEvent("statement", tenant="acme", session="acme-1"))
        ((topic, entry),) = sub.drain()
        assert topic == "audit" and entry["action"] == "statement"

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown audit action"):
            AuditEvent("login")
