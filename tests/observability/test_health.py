"""Tests for the health layer: slow-query log, alert rules, doctor."""

import threading

import pytest

from repro.core import Interval, LevelGroup, Query, QueryEngine, TimeGroup, YEAR, ym
from repro.mvql import MVQLSession
from repro.observability import (
    AlertRule,
    DEFAULT_RULES,
    MetricsRegistry,
    SlowQueryLog,
    evaluate_rules,
    histogram_quantile,
    run_doctor,
    statement_digest,
)
from repro.workloads.case_study import ORG


Q1 = Query(
    group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")),
    time_range=Interval(ym(2001, 1), ym(2002, 12)),
)


class TestSlowQueryLog:
    def test_under_threshold_queries_are_not_retained(self):
        log = SlowQueryLog(threshold=10.0)
        assert log.record(mode="tcm", seconds=0.01) is None
        assert log.records() == []
        assert log.total_queries == 1 and log.total_slow == 0

    def test_over_threshold_queries_are_retained_with_phases(self):
        log = SlowQueryLog(threshold=0.05)
        record = log.record(
            mode="V1",
            seconds=0.2,
            phases={"resolve": 0.01, "collect_contributions": 0.15},
        )
        assert record is not None
        assert dict(record.phases)["collect_contributions"] == 0.15
        assert log.records() == [record]

    def test_ring_buffer_drops_oldest(self):
        log = SlowQueryLog(threshold=0.0, capacity=3)
        for i in range(5):
            log.record(mode=f"m{i}", seconds=float(i))
        assert [r.mode for r in log.records()] == ["m2", "m3", "m4"]
        assert log.total_slow == 5

    def test_statement_context_labels_records(self):
        log = SlowQueryLog(threshold=0.0)
        with log.statement("SELECT   amount BY year"):
            record = log.record(mode="tcm", seconds=1.0)
        assert record.statement == "SELECT amount BY year"
        assert record.digest == statement_digest("select amount by year")

    def test_statement_context_is_thread_local(self):
        log = SlowQueryLog(threshold=0.0)
        seen = {}

        def worker():
            seen["worker"] = log.current_statement

        with log.statement("SELECT a BY year"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["worker"] is None

    def test_query_signature_excludes_the_coordinate_filter(self):
        log = SlowQueryLog(threshold=0.0)
        query = Q1.with_mode("V1")
        filtered = Query(
            mode="V1",
            group_by=Q1.group_by,
            time_range=Q1.time_range,
            coordinate_filter=lambda row: True,
        )
        a = log.record(mode="V1", seconds=1.0, query=query)
        b = log.record(mode="V1", seconds=1.0, query=filtered)
        assert a.digest == b.digest

    def test_engine_records_slow_queries_with_phase_breakdown(self, mvft):
        log = SlowQueryLog(threshold=0.0)  # everything is "slow"
        engine = QueryEngine(mvft, slow_log=log)
        engine.execute(Q1.with_mode("V1"))
        (record,) = log.records()
        assert record.mode == "V1"
        phases = dict(record.phases)
        assert set(phases) == {"resolve", "collect_contributions", "finalize"}
        assert record.seconds >= sum(phases.values()) * 0.5

    def test_session_publishes_mvql_text_to_engine_records(self, mvft):
        log = SlowQueryLog(threshold=0.0)
        session = MVQLSession(mvft, slow_log=log)
        session.execute("SELECT amount BY year, org.Division IN MODE V1")
        engine_records = [
            r for r in log.records() if r.statement and "SELECT" in r.statement
        ]
        assert engine_records
        assert "org.Division" in engine_records[0].statement

    def test_disabled_log_records_nothing(self, mvft):
        log = SlowQueryLog(threshold=0.0)
        log.enabled = False
        engine = QueryEngine(mvft, slow_log=log)
        engine.execute(Q1.with_mode("V1"))
        assert log.records() == []

    def test_to_text_reports_counts_and_slowest_first(self):
        log = SlowQueryLog(threshold=0.0)
        log.record(mode="fast", seconds=0.1)
        log.record(mode="slow", seconds=0.9)
        text = log.to_text()
        assert "2/2" in text
        assert text.index("slow") < text.index("fast")

    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            SlowQueryLog(threshold=-1)
        with pytest.raises(ValueError, match="capacity"):
            SlowQueryLog(capacity=0)


class TestHistogramQuantile:
    def test_interpolates_within_the_winning_bucket(self):
        # 10 observations <= 1.0, 10 more <= 2.0.
        buckets = [("1", 10), ("2", 20), ("+Inf", 20)]
        assert histogram_quantile(0.5, buckets) == pytest.approx(1.0)
        assert histogram_quantile(0.75, buckets) == pytest.approx(1.5)
        assert histogram_quantile(1.0, buckets) == pytest.approx(2.0)

    def test_empty_histogram_returns_none(self):
        assert histogram_quantile(0.99, [("1", 0), ("+Inf", 0)]) is None
        assert histogram_quantile(0.99, []) is None

    def test_inf_bucket_reports_largest_finite_bound(self):
        buckets = [("0.5", 0), ("1", 0), ("+Inf", 7)]
        assert histogram_quantile(0.99, buckets) == pytest.approx(1.0)

    def test_quantile_bounds_validated(self):
        with pytest.raises(ValueError, match="quantile"):
            histogram_quantile(1.5, [("1", 1), ("+Inf", 1)])

    def test_real_registry_buckets_feed_the_quantile(self):
        metrics = MetricsRegistry()
        h = metrics.histogram("x.seconds")
        for _ in range(100):
            h.observe(0.003)
        entry = metrics.snapshot()["histograms"]["x.seconds"]
        q = histogram_quantile(0.99, entry["buckets"])
        assert 0.0025 <= q <= 0.005


class TestAlertRules:
    def test_counter_rule_fires_on_threshold(self):
        metrics = MetricsRegistry()
        metrics.counter("snapshot.conflicts").inc(3)
        rule = AlertRule(
            name="conflicts", metric="snapshot.conflicts", op=">", threshold=0
        )
        result = rule.evaluate(metrics.snapshot())
        assert result.fired and result.observed == 3

    def test_labelled_series_aggregate(self):
        metrics = MetricsRegistry()
        metrics.counter("query.rows_scanned", {"mode": "tcm"}).inc(10)
        metrics.counter("query.rows_scanned", {"mode": "V1"}).inc(5)
        rule = AlertRule(
            name="scans", metric="query.rows_scanned", op=">=", threshold=15
        )
        assert rule.evaluate(metrics.snapshot()).observed == 15

    def test_histogram_percentile_rule(self):
        metrics = MetricsRegistry()
        h = metrics.histogram("wal.fsync_seconds")
        for _ in range(99):
            h.observe(0.0002)
        h.observe(4.0)  # one catastrophic fsync
        rule = AlertRule(
            name="fsync p99",
            metric="wal.fsync_seconds",
            stat="p99",
            op=">",
            threshold=0.05,
        )
        result = rule.evaluate(metrics.snapshot())
        assert not result.fired  # p99 still inside the fast buckets
        worst = AlertRule(
            name="fsync max-ish",
            metric="wal.fsync_seconds",
            stat="p99.9",
            op=">",
            threshold=0.05,
        )
        assert worst.evaluate(metrics.snapshot()).fired

    def test_missing_metric_reports_no_data_and_does_not_fire(self):
        result = AlertRule(
            name="x", metric="absent", op=">", threshold=0
        ).evaluate(MetricsRegistry().snapshot())
        assert not result.fired and result.observed is None
        assert "no data" in result.to_text()

    def test_from_dict_round_trip_and_validation(self):
        rule = AlertRule.from_dict(
            {"name": "r", "metric": "m", "op": ">", "threshold": 2,
             "stat": "mean", "severity": "fail"}
        )
        assert rule.stat == "mean" and rule.severity == "fail"
        with pytest.raises(ValueError, match="missing"):
            AlertRule.from_dict({"name": "r"})
        with pytest.raises(ValueError, match="unknown alert-rule fields"):
            AlertRule.from_dict(
                {"name": "r", "metric": "m", "op": ">", "threshold": 1,
                 "bogus": True}
            )
        with pytest.raises(ValueError, match="comparison"):
            AlertRule(name="r", metric="m", op="!!", threshold=1)
        with pytest.raises(ValueError, match="severity"):
            AlertRule(name="r", metric="m", op=">", threshold=1,
                      severity="meh")
        with pytest.raises(ValueError, match="stat"):
            AlertRule(name="r", metric="m", op=">", threshold=1, stat="p999")

    def test_evaluate_rules_preserves_order(self):
        metrics = MetricsRegistry()
        metrics.counter("a").inc()
        rules = [
            AlertRule(name="first", metric="a", op=">", threshold=0),
            AlertRule(name="second", metric="b", op=">", threshold=0),
        ]
        results = evaluate_rules(rules, metrics.snapshot())
        assert [r.rule.name for r in results] == ["first", "second"]


class TestDoctor:
    def test_clean_schema_passes(self, case_study):
        report = run_doctor(case_study.schema, metrics=MetricsRegistry())
        assert report.status == "pass" and report.exit_code == 0
        assert "doctor: PASS" in report.to_text()

    def test_default_rules_are_used_when_none_given(self, case_study):
        report = run_doctor(case_study.schema, metrics=MetricsRegistry())
        assert [a.rule.name for a in report.alerts] == [
            r.name for r in DEFAULT_RULES
        ]

    def test_warn_severity_degrades_to_warn(self, case_study):
        metrics = MetricsRegistry()
        metrics.counter("snapshot.conflicts").inc(5)
        report = run_doctor(case_study.schema, metrics=metrics)
        assert report.status == "warn" and report.exit_code == 1

    def test_fail_severity_degrades_to_fail(self, case_study):
        metrics = MetricsRegistry()
        metrics.counter("errors.total").inc()
        rules = [
            AlertRule(name="errors", metric="errors.total", op=">",
                      threshold=0, severity="fail"),
        ]
        report = run_doctor(case_study.schema, metrics=metrics, rules=rules)
        assert report.status == "fail" and report.exit_code == 2

    def test_integrity_violation_fails(self):
        from repro.robustness import IntegrityChecker
        from repro.workloads.case_study import build_case_study

        # A private schema copy — the shared fixture must stay clean.
        schema = build_case_study().schema
        member = next(iter(schema.dimension("org").members.values()))
        # Corrupt a member's valid time through internals; the public
        # surface would reject an ill-formed interval.
        object.__setattr__(member, "valid_time", "not an interval")
        assert not IntegrityChecker(schema).run().ok
        report = run_doctor(schema, metrics=MetricsRegistry())
        assert report.status == "fail" and report.exit_code == 2
        assert "integrity" in report.to_text()

    def test_wal_stats_are_summarised(self, case_study, tmp_path):
        from repro.robustness import TransactionManager

        wal = tmp_path / "journal.wal"
        txm = TransactionManager(case_study.schema, wal=str(wal))
        with txm.transaction():
            pass
        report = run_doctor(case_study.schema, wal_path=str(wal))
        assert report.wal_stats is not None
        assert report.wal_stats["records"] >= 2
        assert report.wal_stats["open_transactions"] == 0
        assert "wal:" in report.to_text()

    def test_open_wal_transaction_degrades_to_warn(self, case_study, tmp_path):
        from repro.robustness import TransactionManager

        wal = tmp_path / "torn.wal"
        txm = TransactionManager(case_study.schema, wal=str(wal))
        txm.begin()  # a crash would leave this transaction open
        report = run_doctor(case_study.schema, wal_path=str(wal))
        assert report.wal_stats["open_transactions"] == 1
        assert report.status == "warn" and report.exit_code == 1
        assert "wal open transactions" in report.to_text()
        txm.rollback()

    def test_slow_queries_degrade_to_warn(self, case_study):
        log = SlowQueryLog(threshold=0.0)
        log.record(mode="tcm", seconds=5.0)
        report = run_doctor(case_study.schema, slow_log=log)
        assert report.status == "warn"
        assert "slow queries" in report.to_text()

    def test_skipped_subsystems_are_noted(self):
        report = run_doctor()
        assert report.status == "pass"
        text = report.to_text()
        assert "metrics: none attached" in text
        assert "schema: none given" in text


class TestDoctorEventsSweep:
    """The events sweep: audit/journal LSN cross-check, push-loss alerts."""

    def _journal_with_commit(self, case_study, tmp_path):
        from repro.robustness import TransactionManager
        from repro.workloads.case_study import build_case_study

        wal = tmp_path / "events.wal"
        # a private schema: the shared case-study fixture must stay pristine
        txm = TransactionManager(build_case_study().schema, wal=str(wal))
        with txm.transaction():
            txm.editor.insert(
                "org", "idDoc", "Doc", ym(2003, 6), level="Department",
                parents=["sales"],
            )
        return wal, txm

    def test_agreeing_audit_trail_passes(self, case_study, tmp_path):
        from repro.observability import (
            AuditEvent,
            AuditLog,
            last_committed_lsn,
        )

        wal, txm = self._journal_with_commit(case_study, tmp_path)
        audit = tmp_path / "audit.jsonl"
        AuditLog(audit).record(
            AuditEvent("evolve", tenant="ops", lsn=last_committed_lsn(wal))
        )
        report = run_doctor(wal_path=str(wal), audit_log=str(audit))
        assert report.status == "pass"
        assert report.audit_stats["last_lsn"] == report.audit_stats[
            "wal_last_committed_lsn"
        ]

    def test_lsn_divergence_warns(self, case_study, tmp_path):
        from repro.observability import AuditEvent, AuditLog

        wal, txm = self._journal_with_commit(case_study, tmp_path)
        audit = tmp_path / "audit.jsonl"
        AuditLog(audit).record(AuditEvent("evolve", tenant="ops", lsn=9999))
        report = run_doctor(wal_path=str(wal), audit_log=str(audit))
        assert report.status == "warn"
        assert "LSN divergence" in report.to_text()
        assert "audit" in report.to_dict() and report.to_dict()["audit"]

    def test_unreadable_audit_log_fails(self, tmp_path):
        bad = tmp_path / "audit.jsonl"
        bad.write_text('broken\n{"action": "auth"}\n', encoding="utf-8")
        report = run_doctor(audit_log=str(bad))
        assert report.status == "fail"
        assert "audit log readable" in report.to_text()

    def test_empty_or_lsn_free_trail_skips_cross_check(self, tmp_path):
        report = run_doctor(audit_log=str(tmp_path / "missing.jsonl"))
        assert report.status == "pass"
        assert "LSN cross-check skipped" in report.to_text()

    def test_push_and_bus_losses_warn(self, tmp_path):
        from repro.observability import EventBus, FileSink, PushExporter

        exporter = PushExporter(FileSink(tmp_path / "push.jsonl"))
        exporter.submit({"n": 1})
        exporter.dropped = 3  # simulate queue overflow
        bus = EventBus()
        bus.subscribe("slow", max_queue=1)
        bus.publish("t", 1)
        bus.publish("t", 2)
        report = run_doctor(exporters=[exporter], bus=bus)
        assert report.status == "warn"
        text = report.to_text()
        assert "push exporter" in text and "dropped" in text
        assert "event bus subscriber slow dropped" in text
