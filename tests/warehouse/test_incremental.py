"""Tests for incremental MultiVersion maintenance."""

import pytest

from repro.core import (
    AVG,
    Measure,
    ModelError,
    MultiVersionFactTable,
    SUM,
)
from repro.warehouse import IncrementalMultiVersion
from repro.workloads.case_study import ORG, build_case_study, fact_instant


def snapshot(mvft):
    """A comparable snapshot of a MV table: per-mode cell dictionaries."""
    out = {}
    for label in mvft.modes.labels:
        out[label] = {
            (tuple(sorted(r.coordinates.items())), r.t): (
                {m: r.value(m) for m in r.values},
                {m: c.symbol for m, c in r.confidences.items()},
            )
            for r in mvft.slice(label)
        }
    return out


class TestEquivalenceToBatchRebuild:
    def test_appends_match_full_rebuild(self):
        """Grow the fact table fact by fact; after every append the
        incremental table equals a from-scratch rebuild."""
        reference = build_case_study()
        stream = [
            (dict(row.coordinates), row.t, {m: row.value(m) for m in row.values})
            for row in reference.schema.facts
        ]
        study = build_case_study(with_facts=False)
        incremental = IncrementalMultiVersion(study.schema)
        assert len(incremental.mvft) == 0
        for coordinates, t, values in stream:
            incremental.append_fact(coordinates, t, values)
            rebuilt = MultiVersionFactTable.build(study.schema)
            assert snapshot(incremental.mvft) == snapshot(rebuilt)

    def test_final_state_matches_case_study(self, mvft):
        reference = build_case_study()
        study = build_case_study(with_facts=False)
        incremental = IncrementalMultiVersion(study.schema)
        for row in reference.schema.facts:
            incremental.append_fact(
                dict(row.coordinates), row.t, {m: row.value(m) for m in row.values}
            )
        assert snapshot(incremental.mvft) == snapshot(mvft)


class TestMergingCells:
    def test_second_fact_merges_into_mapped_cell(self):
        """Two facts at the same instant on Bill and Paul both map onto
        the Jones cell in mode V2 and must fold to their sum."""
        study = build_case_study(with_facts=False)
        incremental = IncrementalMultiVersion(study.schema)
        t = fact_instant(2003)
        incremental.append_fact({ORG: "bill"}, t, amount=150.0)
        incremental.append_fact({ORG: "paul"}, t, amount=50.0)
        cell = incremental.mvft.lookup({ORG: "jones"}, t, "V2")
        assert cell is not None
        assert cell.value("amount") == 200.0
        assert cell.confidence("amount").symbol == "em"


class TestLifecycle:
    def test_validation_still_enforced(self):
        study = build_case_study(with_facts=False)
        incremental = IncrementalMultiVersion(study.schema)
        from repro.core import FactValidityError

        with pytest.raises(FactValidityError):
            incremental.append_fact({ORG: "jones"}, fact_instant(2003), amount=1.0)

    def test_unroutable_fact_recorded_as_unmapped(self):
        from repro.core import EvolutionManager

        study = build_case_study(with_facts=False)
        manager = EvolutionManager(study.schema)
        manager.create_member(
            "org", "orphan", "Dpt.Orphan", fact_instant(2003) - 1,
            parents=["sales"], level="Department",
        )
        incremental = IncrementalMultiVersion(study.schema)
        incremental.append_fact({ORG: "orphan"}, fact_instant(2003), amount=5.0)
        assert any(u.source == "orphan" for u in incremental.mvft.unmapped)

    def test_invalidate_forces_rebuild(self):
        study = build_case_study(with_facts=False)
        incremental = IncrementalMultiVersion(study.schema)
        first = incremental.mvft
        incremental.invalidate()
        assert incremental.mvft is not first

    def test_non_foldable_aggregate_rejected(self):
        from repro.core import (
            Interval,
            MemberVersion,
            TemporalDimension,
            TemporalMultidimensionalSchema,
        )

        d = TemporalDimension("org")
        d.add_member(MemberVersion("a", "A", Interval(0)))
        schema = TemporalMultidimensionalSchema(
            [d], [Measure("amount", SUM), Measure("mean", AVG)]
        )
        with pytest.raises(ModelError):
            IncrementalMultiVersion(schema)


class TestDeltaReconstructionProperty:
    """Hypothesis: delta-store reconstruction equals the full table on
    random full-mix workloads."""

    def test_random_workloads(self):
        from hypothesis import given, settings, strategies as st
        from repro.warehouse import DeltaMultiVersionStore
        from repro.workloads.generator import WorkloadConfig, generate_workload

        @settings(max_examples=10, deadline=None)
        @given(seed=st.integers(min_value=0, max_value=10_000))
        def check(seed):
            wl = generate_workload(
                WorkloadConfig(
                    seed=seed, n_years=3, n_departments=7,
                    transforms_per_year=1, deletions_per_year=1,
                )
            )
            mvft = wl.schema.multiversion_facts()
            delta = DeltaMultiVersionStore(mvft)
            for label in mvft.modes.labels:
                assert snapshot_mode(mvft, label) == snapshot_mode_rows(
                    delta.slice(label)
                )

        def snapshot_mode(mvft, label):
            return snapshot_mode_rows(mvft.slice(label))

        def snapshot_mode_rows(rows):
            return {
                (tuple(sorted(r.coordinates.items())), r.t): (
                    dict(r.values),
                    {m: c.symbol for m, c in r.confidences.items()},
                )
                for r in rows
            }

        check()
