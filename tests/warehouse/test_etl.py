"""Tests for the ETL pipeline (Figure 1's first tier)."""

import pytest

from repro.core import Interval, Measure, MemberVersion, SUM
from repro.core import TemporalDimension, TemporalMultidimensionalSchema
from repro.core import TemporalRelationship, ym
from repro.warehouse import CleaningRule, ETLPipeline, FactMapping, OperationalSource


@pytest.fixture()
def schema():
    d = TemporalDimension("org")
    d.add_member(MemberVersion("div", "Division", Interval(0), level="Division"))
    d.add_member(MemberVersion("a", "Dept-A", Interval(0), level="Department"))
    d.add_member(MemberVersion("b", "Dept-B", Interval(0, 9), level="Department"))
    d.add_relationship(TemporalRelationship("a", "div", Interval(0)))
    d.add_relationship(TemporalRelationship("b", "div", Interval(0, 9)))
    return TemporalMultidimensionalSchema([d], [Measure("amount", SUM)])


def pipeline_for(schema, rules=()):
    mapping = FactMapping(
        lambda rec: ({"org": rec["dept"]}, rec["t"], {"amount": rec["amount"]})
    )
    return ETLPipeline(schema, rules=rules, mapping=mapping)


class TestExtraction:
    def test_sources_are_not_mutated(self, schema):
        source = OperationalSource("ops", [{"dept": "a", "t": 1, "amount": 5.0}])
        rule = CleaningRule("mutate", lambda r: {**r, "amount": 0.0})
        pipeline_for(schema, [rule]).run([source])
        assert source.records[0]["amount"] == 5.0

    def test_multiple_sources_merged(self, schema):
        s1 = OperationalSource("s1", [{"dept": "a", "t": 1, "amount": 1.0}])
        s2 = OperationalSource("s2", [{"dept": "a", "t": 2, "amount": 2.0}])
        report = pipeline_for(schema).run([s1, s2])
        assert report.extracted == 2 and report.loaded == 2
        assert len(schema.facts) == 2


class TestCleaning:
    def test_rule_rejection_reported_with_rule_name(self, schema):
        rule = CleaningRule(
            "drop-null-amounts",
            lambda r: r if r.get("amount") is not None else None,
        )
        source = OperationalSource("ops", [{"dept": "a", "t": 1, "amount": None}])
        report = pipeline_for(schema, [rule]).run([source])
        assert report.loaded == 0
        assert report.rejected_count == 1
        assert "drop-null-amounts" in report.rejected[0][1]

    def test_rules_chain_in_order(self, schema):
        calls = []
        r1 = CleaningRule("one", lambda r: (calls.append("one"), r)[1])
        r2 = CleaningRule("two", lambda r: (calls.append("two"), r)[1])
        source = OperationalSource("ops", [{"dept": "a", "t": 1, "amount": 1.0}])
        pipeline_for(schema, [r1, r2]).run([source])
        assert calls == ["one", "two"]

    def test_fixing_rule_transforms_record(self, schema):
        rule = CleaningRule(
            "negative-to-zero",
            lambda r: {**r, "amount": max(0.0, r["amount"])},
        )
        source = OperationalSource("ops", [{"dept": "a", "t": 1, "amount": -4.0}])
        report = pipeline_for(schema, [rule]).run([source])
        assert report.loaded == 1
        assert schema.facts.total("amount") == 0.0


class TestLoadValidation:
    def test_schema_rejects_invalid_member_time(self, schema):
        """Dept-B ends at t=9: a record at t=20 is rejected, not loaded."""
        source = OperationalSource("ops", [{"dept": "b", "t": 20, "amount": 1.0}])
        report = pipeline_for(schema).run([source])
        assert report.loaded == 0
        assert "schema rejection" in report.rejected[0][1]

    def test_unknown_member_rejected(self, schema):
        source = OperationalSource("ops", [{"dept": "ghost", "t": 1, "amount": 1.0}])
        report = pipeline_for(schema).run([source])
        assert report.rejected_count == 1

    def test_mapper_crash_contained(self, schema):
        source = OperationalSource("ops", [{"wrong_key": 1}])
        report = pipeline_for(schema).run([source])
        assert report.loaded == 0
        assert "mapping error" in report.rejected[0][1]

    def test_mixed_batch_partially_loads(self, schema):
        source = OperationalSource(
            "ops",
            [
                {"dept": "a", "t": 1, "amount": 1.0},
                {"dept": "b", "t": 20, "amount": 2.0},  # invalid
                {"dept": "a", "t": 2, "amount": 3.0},
            ],
        )
        report = pipeline_for(schema).run([source])
        assert report.extracted == 3
        assert report.loaded == 2
        assert report.rejected_count == 1
        assert schema.facts.total("amount") == 4.0


class TestGracefulDegradation:
    """Regression: one failing source used to abort the whole load."""

    class BrokenSource(OperationalSource):
        def extract(self):
            raise ConnectionError("source offline")

    def test_failing_source_is_reported_and_skipped(self, schema):
        report = pipeline_for(schema).run(
            [
                OperationalSource("s1", [{"dept": "a", "t": 1, "amount": 1.0}]),
                self.BrokenSource("s2"),
                OperationalSource("s3", [{"dept": "a", "t": 2, "amount": 2.0}]),
            ]
        )
        assert report.loaded == 2
        assert not report.complete
        assert report.failed_source_count == 1
        name, reason = report.failed_sources[0]
        assert name == "s2" and "ConnectionError" in reason

    def test_clean_run_is_complete(self, schema):
        report = pipeline_for(schema).run(
            [OperationalSource("s1", [{"dept": "a", "t": 1, "amount": 1.0}])]
        )
        assert report.complete and report.failed_source_count == 0

    def test_retry_policy_is_applied_to_extraction(self, schema):
        from repro.robustness import RetryPolicy

        class FlakyOnce(OperationalSource):
            attempts = 0

            def extract(self):
                type(self).attempts += 1
                if type(self).attempts == 1:
                    raise ConnectionError("blip")
                return super().extract()

        mapping = FactMapping(
            lambda rec: ({"org": rec["dept"]}, rec["t"], {"amount": rec["amount"]})
        )
        pipeline = ETLPipeline(
            schema, mapping=mapping, retry=RetryPolicy.no_sleep(max_attempts=2)
        )
        report = pipeline.run(
            [FlakyOnce("s1", [{"dept": "a", "t": 1, "amount": 1.0}])]
        )
        assert report.complete and report.loaded == 1
        assert FlakyOnce.attempts == 2


class TestTransactionalLoads:
    """``transactions=`` — per-source atomicity and journaled fact loads."""

    def _pipeline(self, schema, txm):
        mapping = FactMapping(
            lambda rec: ({"org": rec["dept"]}, rec["t"], {"amount": rec["amount"]})
        )
        return ETLPipeline(schema, mapping=mapping, transactions=txm)

    def test_mismatched_schema_is_rejected(self, schema):
        from repro.core.errors import ReproError
        from repro.robustness import TransactionManager

        d = TemporalDimension("other")
        other = TemporalMultidimensionalSchema([d], [Measure("amount", SUM)])
        mapping = FactMapping(lambda rec: ({}, 0, {}))
        with pytest.raises(ReproError, match="different schema"):
            ETLPipeline(
                schema, mapping=mapping, transactions=TransactionManager(other)
            )

    def test_facts_are_journaled_per_source(self, schema, tmp_path):
        from repro.robustness import TransactionManager

        txm = TransactionManager(schema, wal=tmp_path / "etl.wal")
        report = self._pipeline(schema, txm).run(
            [
                OperationalSource("s1", [{"dept": "a", "t": 1, "amount": 1.0}]),
                OperationalSource("s2", [{"dept": "a", "t": 2, "amount": 2.0}]),
            ]
        )
        assert report.complete and report.loaded == 2
        kinds = [r["kind"] for r in txm.wal.records()]
        # one transaction per source, each with its fact record
        assert kinds == ["checkpoint", "begin", "fact", "commit", "begin", "fact", "commit"]
        txm.wal.close()

    def test_journaled_facts_survive_recovery(self, schema, tmp_path):
        from repro.robustness import TransactionManager, recover_schema

        wal_path = tmp_path / "etl.wal"
        txm = TransactionManager(schema, wal=wal_path)
        self._pipeline(schema, txm).run(
            [OperationalSource("s1", [{"dept": "a", "t": 1, "amount": 1.0}])]
        )
        txm.wal.close()
        recovered, report = recover_schema(wal_path)
        assert report.facts_replayed == 1
        assert len(recovered.facts) == len(schema.facts) == 1

    def test_fault_mid_load_rolls_the_source_back(self, schema, tmp_path):
        from repro.robustness import FaultInjector, TransactionManager

        injector = FaultInjector(seed=3)
        txm = TransactionManager(
            schema, wal=tmp_path / "etl.wal", fault_injector=injector
        )
        injector.arm("txn.op.pre", at_call=2)  # second fact of the source
        report = self._pipeline(schema, txm).run(
            [
                OperationalSource(
                    "flaky",
                    [
                        {"dept": "a", "t": 1, "amount": 1.0},
                        {"dept": "a", "t": 2, "amount": 2.0},
                    ],
                ),
                OperationalSource("ok", [{"dept": "a", "t": 3, "amount": 3.0}]),
            ]
        )
        # the flaky source rolled back as a unit; the ok source loaded
        assert report.loaded == 1
        assert report.failed_source_count == 1
        name, reason = report.failed_sources[0]
        assert name == "flaky" and "rolled back" in reason
        assert [f.t for f in schema.facts] == [3]
        txm.wal.close()

    def test_schema_rejections_stay_per_record(self, schema, tmp_path):
        from repro.robustness import TransactionManager

        txm = TransactionManager(schema, wal=tmp_path / "etl.wal")
        report = self._pipeline(schema, txm).run(
            [
                OperationalSource(
                    "mixed",
                    [
                        {"dept": "ghost", "t": 1, "amount": 1.0},
                        {"dept": "a", "t": 1, "amount": 1.0},
                    ],
                )
            ]
        )
        # an invalid record rejects without aborting the source's txn
        assert report.loaded == 1 and report.rejected_count == 1
        assert report.complete
        txm.wal.close()
