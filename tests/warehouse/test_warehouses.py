"""Tests for the temporal / multiversion warehouses, delta storage and
metadata (§5)."""

import pytest

from repro.warehouse import (
    DeltaMultiVersionStore,
    MAPPING_TABLE,
    MV_FACT_TABLE,
    MultiVersionDataWarehouse,
    TemporalDataWarehouse,
    describe_evolutions,
    mapping_relations_extract,
    member_history,
    member_version_metadata,
)
from repro.core import ym
from repro.workloads.case_study import ORG, fact_instant
from repro.workloads.generator import WorkloadConfig, generate_workload


@pytest.fixture(scope="module")
def tdw(case_study):
    return TemporalDataWarehouse.from_schema(
        case_study.schema, case_study.manager.journal
    )


@pytest.fixture(scope="module")
def mvdw(mvft):
    return MultiVersionDataWarehouse.build(mvft)


class TestTemporalDW:
    def test_member_versions_materialized(self, tdw):
        rows = tdw.member_rows(ORG)
        assert len(rows) == 7  # sales, rd, jones, smith, brian, bill, paul
        jones = [r for r in rows if r["mvid"] == "jones"][0]
        assert jones["valid_from"] == ym(2001, 1)
        assert jones["valid_to"] == ym(2002, 12)

    def test_open_validity_stored_as_null(self, tdw):
        bill = [r for r in tdw.member_rows(ORG) if r["mvid"] == "bill"][0]
        assert bill["valid_to"] is None

    def test_relationships_materialized(self, tdw):
        rels = list(tdw.db.table(TemporalDataWarehouse.RELATIONSHIP_TABLE).rows())
        smith_edges = sorted(
            (r["parent"], r["valid_from"], r["valid_to"])
            for r in rels
            if r["child"] == "smith"
        )
        assert smith_edges == [
            ("rd", ym(2002, 1), None),
            ("sales", ym(2001, 1), ym(2001, 12)),
        ]

    def test_consistent_facts_match_table_3(self, tdw, case_study):
        assert len(tdw.fact_rows()) == len(case_study.schema.facts)

    def test_journal_materialized_in_order(self, tdw, case_study):
        rows = tdw.journal_rows()
        assert [r["operator"] for r in rows] == [
            r.operator for r in case_study.manager.journal
        ]

    def test_mapping_relations_present(self, tdw):
        table = tdw.db.table(MAPPING_TABLE)
        assert len(table) == 2  # jones->bill, jones->paul


class TestTable12:
    def test_two_measure_extract_matches_paper(self, two_measure_study):
        rows = {r["to"]: r for r in mapping_relations_extract(two_measure_study.schema)}
        paul, bill = rows["Dpt.Paul"], rows["Dpt.Bill"]
        assert (paul["k_turnover"], paul["k_profit"]) == (0.6, 0.8)
        assert (bill["k_turnover"], bill["k_profit"]) == (0.4, 0.2)
        assert paul["k_inv_turnover"] == paul["k_inv_profit"] == 1.0
        assert paul["confidence"] == 1      # am
        assert paul["confidence_inv"] == 2  # em
        assert paul["from"] == "Dpt.Jones"


class TestMultiVersionDW:
    def test_fact_rows_match_conceptual_table(self, mvdw, mvft):
        assert mvdw.storage_cells() == len(mvft)

    def test_relational_q1_matches_paper_tables(self, mvdw):
        tcm = {
            (r["year"], r["label"]): r["total"]
            for r in mvdw.query_level_totals("tcm", ORG, "Division", "amount")
            if r["year"] in (2001, 2002)
        }
        assert tcm == {
            (2001, "Sales"): 150.0,
            (2001, "R&D"): 100.0,
            (2002, "Sales"): 100.0,
            (2002, "R&D"): 150.0,
        }
        v1 = {
            (r["year"], r["label"]): r["total"]
            for r in mvdw.query_level_totals("V1", ORG, "Division", "amount")
            if r["year"] in (2001, 2002)
        }
        assert v1[(2002, "Sales")] == 200.0
        assert v1[(2002, "R&D")] == 50.0

    def test_relational_confidence_codes(self, mvdw):
        rows = mvdw.query_level_totals("V3", ORG, "Department", "amount")
        bill_2002 = [r for r in rows if r == {**r, "year": 2002, "label": "Dpt.Bill"}]
        by_key = {(r["year"], r["label"]): r["confidence"] for r in rows}
        assert by_key[(2002, "Dpt.Bill")] == 1  # am
        assert by_key[(2003, "Dpt.Bill")] == 3  # sd
        assert bill_2002  # sanity: the row exists

    def test_tmp_dimension_in_db(self, mvdw):
        assert len(mvdw.db.table("dim_tmp")) == 4

    def test_mv_fact_primary_key_holds(self, mvdw):
        table = mvdw.db.table(MV_FACT_TABLE)
        keys = {(r["mode"], r[ORG], r["t"]) for r in table.rows()}
        assert len(keys) == len(table)


class TestDeltaStorage:
    def test_reconstruction_equals_full_slices(self, mvft):
        delta = DeltaMultiVersionStore(mvft)
        for mode in ("tcm", "V1", "V2", "V3"):
            full = {
                (tuple(sorted(r.coordinates.items())), r.t): (
                    dict(r.values),
                    {m: c.symbol for m, c in r.confidences.items()},
                )
                for r in mvft.slice(mode)
            }
            rebuilt = {
                (tuple(sorted(r.coordinates.items())), r.t): (
                    dict(r.values),
                    {m: c.symbol for m, c in r.confidences.items()},
                )
                for r in delta.slice(mode)
            }
            assert full == rebuilt, mode

    def test_delta_stores_fewer_cells_than_full(self, mvft):
        delta = DeltaMultiVersionStore(mvft)
        assert delta.total_stored() < delta.full_replication_cells()
        assert 0.0 < delta.savings_ratio() < 1.0

    def test_case_study_counts(self, mvft):
        delta = DeltaMultiVersionStore(mvft)
        # tcm kept in full (10); per version only the mapped cells:
        # V1: jones@2003 (merged); V2: same; V3: bill/paul for 2001+2002.
        assert delta.stored_cells() == {"tcm": 10, "V1": 1, "V2": 1, "V3": 4}

    def test_savings_track_churn_rate(self):
        """Delta storage pays per *change*: a slowly-evolving dimension
        saves more than a heavily-churning one of the same size."""
        low = generate_workload(
            WorkloadConfig(
                seed=3, n_years=5, n_departments=20,
                splits_per_year=1, merges_per_year=0,
                reclassifications_per_year=0,
            )
        )
        high = generate_workload(
            WorkloadConfig(
                seed=3, n_years=5, n_departments=20,
                splits_per_year=3, merges_per_year=3,
                reclassifications_per_year=2,
            )
        )
        d_low = DeltaMultiVersionStore(low.schema.multiversion_facts())
        d_high = DeltaMultiVersionStore(high.schema.multiversion_facts())
        assert d_low.savings_ratio() > d_high.savings_ratio()


class TestMetadata:
    def test_member_version_metadata(self, case_study):
        records = member_version_metadata(case_study.schema, ORG)
        jones = [r for r in records if r["mvid"] == "jones"][0]
        assert jones["valid_from_label"] == "01/2001"
        assert jones["valid_to_label"] == "12/2002"
        assert jones["level"] == "Department"

    def test_member_history_tracks_reclassification(self, case_study):
        history = member_history(case_study.schema, ORG, "Dpt.Smith")
        assert len(history) == 1
        parents = history[0]["parents"]
        assert {p["parent"] for p in parents} == {"Sales", "R&D"}

    def test_describe_evolutions_for_jones(self, case_study):
        sentences = describe_evolutions(
            case_study.schema, case_study.manager.journal, "jones"
        )
        assert any("excluded" in s for s in sentences)
        assert any("mapped onto 'bill'" in s for s in sentences)

    def test_describe_evolutions_for_created_member(self, case_study):
        sentences = describe_evolutions(
            case_study.schema, case_study.manager.journal, "bill"
        )
        assert any(s.startswith("created at 01/2003") for s in sentences)
        assert any("mapped from 'jones'" in s for s in sentences)

    def test_describe_reclassification(self, case_study):
        sentences = describe_evolutions(
            case_study.schema, case_study.manager.journal, "smith"
        )
        assert any("reclassified at 01/2002" in s for s in sentences)


class TestRelationalConceptualParity:
    """The star-schema path must agree with the conceptual engine on
    random workloads (single-parent hierarchies: merges disabled, since a
    multi-parent star row concatenates labels while the engine multi-counts)."""

    def test_query_level_totals_matches_engine(self):
        from repro.core import LevelGroup, Query, QueryEngine, TimeGroup, YEAR

        for seed in (3, 17, 202):
            wl = generate_workload(
                WorkloadConfig(
                    seed=seed, n_years=3, n_departments=8, merges_per_year=0
                )
            )
            mvft = wl.schema.multiversion_facts()
            mvdw = MultiVersionDataWarehouse.build(mvft)
            engine = QueryEngine(mvft)
            for mode in mvft.modes.labels:
                relational = {
                    (str(r["year"]), r["label"]): r["total"]
                    for r in mvdw.query_level_totals(mode, "org", "Division", "amount")
                }
                conceptual = {
                    group: cells["amount"]
                    for group, cells in engine.execute(
                        Query(
                            mode=mode,
                            group_by=(TimeGroup(YEAR), LevelGroup("org", "Division")),
                        )
                    ).as_dict().items()
                }
                for key, total in relational.items():
                    assert conceptual[key] == pytest.approx(total), (seed, mode, key)


class TestSnowflakeQueryPath:
    def test_layouts_validation(self, mvft):
        with pytest.raises(Exception):
            MultiVersionDataWarehouse.build(mvft, layouts=("pyramid",))

    def test_snowflake_requires_materialization(self, mvdw):
        from repro.core import ModelError

        with pytest.raises(ModelError):
            mvdw.query_level_totals_snowflake("tcm", ORG, "Division", "amount")

    def test_snowflake_matches_star_on_case_study(self, mvft):
        dw = MultiVersionDataWarehouse.build(mvft, layouts=("star", "snowflake"))
        for mode in ("tcm", "V1", "V2", "V3"):
            star = {
                (r["year"], r["label"]): (r["total"], r["confidence"])
                for r in dw.query_level_totals(mode, ORG, "Division", "amount")
            }
            snowflake = {
                (r["year"], r["label"]): (r["total"], r["confidence"])
                for r in dw.query_level_totals_snowflake(
                    mode, ORG, "Division", "amount"
                )
            }
            assert star == snowflake, mode

    def test_snowflake_handles_multiple_hierarchies(self):
        """A leaf under two units: the star concatenates ('U1 | U2'); the
        snowflake contributes to both — matching the conceptual engine."""
        from repro.core import (
            Interval,
            LevelGroup,
            Measure,
            MemberVersion,
            Query,
            QueryEngine,
            SUM,
            TemporalDimension,
            TemporalRelationship,
            TemporalMultidimensionalSchema,
        )

        d = TemporalDimension("org")
        d.add_member(MemberVersion("u1", "Unit-1", Interval(0), level="Unit"))
        d.add_member(MemberVersion("u2", "Unit-2", Interval(0), level="Unit"))
        d.add_member(MemberVersion("lab", "Lab", Interval(0), level="Team"))
        d.add_relationship(TemporalRelationship("lab", "u1", Interval(0)))
        d.add_relationship(TemporalRelationship("lab", "u2", Interval(0)))
        schema = TemporalMultidimensionalSchema([d], [Measure("amount", SUM)])
        schema.add_fact({"org": "lab"}, 5, amount=12.0)
        mvft = schema.multiversion_facts()
        dw = MultiVersionDataWarehouse.build(mvft, layouts=("star", "snowflake"))

        snowflake = {
            r["label"]: r["total"]
            for r in dw.query_level_totals_snowflake("tcm", "org", "Unit", "amount")
        }
        assert snowflake == {"Unit-1": 12.0, "Unit-2": 12.0}
        engine = QueryEngine(mvft)
        conceptual = engine.execute(
            Query(group_by=(LevelGroup("org", "Unit"),))
        ).as_dict()
        assert conceptual[("Unit-1",)]["amount"] == 12.0
        assert conceptual[("Unit-2",)]["amount"] == 12.0
        # the star cannot: it concatenates the two ancestors into one label
        star = {
            r["label"]: r["total"]
            for r in dw.query_level_totals("tcm", "org", "Unit", "amount")
        }
        assert star == {"Unit-1 | Unit-2": 12.0}
