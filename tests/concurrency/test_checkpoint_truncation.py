"""Auto-checkpointing and WAL compaction (ROADMAP item "WAL compaction").

``TransactionManager(checkpoint_every=N)`` writes a schema checkpoint
after every N commits and truncates the journal prefix before it;
recovery from the compacted journal must reproduce the schema
byte-identically.
"""

import json

import pytest

from repro.core.serialization import schema_to_dict
from repro.robustness import (
    TransactionError,
    TransactionManager,
    WriteAheadJournal,
    recover_schema,
)
from repro.workloads.case_study import build_case_study

from .conftest import insert_department


def fingerprint(schema):
    return json.dumps(schema_to_dict(schema), sort_keys=True)


@pytest.fixture()
def wal_path(tmp_path):
    return tmp_path / "evolutions.wal"


class TestAutoCheckpoint:
    def test_checkpoint_written_every_n_commits(self, wal_path):
        study = build_case_study()
        txm = TransactionManager(study.schema, wal=wal_path, checkpoint_every=2)
        first_checkpoint = txm.wal.last_checkpoint_lsn  # the initial one
        for i in range(4):
            with txm.transaction():
                insert_department(txm, f"ckpt{i}", f"Ckpt{i}")
        checkpoints = [
            r["lsn"] for r in txm.wal.records() if r["kind"] == "checkpoint"
        ]
        # prefix truncation keeps only the newest checkpoint in the file
        assert len(checkpoints) == 1
        assert txm.wal.last_checkpoint_lsn == checkpoints[0]
        assert checkpoints[0] > first_checkpoint

    def test_truncation_drops_the_prefix(self, wal_path):
        study = build_case_study()
        txm = TransactionManager(study.schema, wal=wal_path, checkpoint_every=1)
        with txm.transaction():
            insert_department(txm, "trc_a", "TrcA")
        records = txm.wal.records()
        assert records[0]["kind"] == "checkpoint"
        assert records[0]["lsn"] == txm.wal.last_checkpoint_lsn
        # nothing from before the checkpoint survives
        assert all(r["lsn"] >= txm.wal.last_checkpoint_lsn for r in records)

    def test_recovery_after_truncation_reproduces_schema(self, wal_path):
        study = build_case_study()
        txm = TransactionManager(study.schema, wal=wal_path, checkpoint_every=2)
        for i in range(5):
            with txm.transaction():
                insert_department(txm, f"rcv{i}", f"Rcv{i}")
        live = fingerprint(study.schema)

        recovered, report = recover_schema(wal_path)
        assert fingerprint(recovered) == live
        # commits 2 and 4 checkpointed; commit 5 replays from the last one
        assert report.transactions_replayed == 1

    def test_lsn_sequence_survives_reopen_after_truncation(self, wal_path):
        study = build_case_study()
        txm = TransactionManager(study.schema, wal=wal_path, checkpoint_every=1)
        with txm.transaction():
            insert_department(txm, "seq_a", "SeqA")
        last = txm.wal.last_lsn
        txm.wal.close()
        reopened = WriteAheadJournal(wal_path)
        assert reopened.last_lsn == last
        assert reopened.last_checkpoint_lsn == txm.wal.last_checkpoint_lsn

    def test_truncate_before_noop_when_nothing_precedes(self, wal_path):
        study = build_case_study()
        txm = TransactionManager(study.schema, wal=wal_path)
        assert txm.wal.truncate_before(1) == 0

    def test_checkpoint_every_must_be_positive(self):
        study = build_case_study()
        with pytest.raises(TransactionError):
            TransactionManager(study.schema, checkpoint_every=0)

    def test_no_wal_means_no_auto_checkpoint(self):
        study = build_case_study()
        txm = TransactionManager(study.schema, checkpoint_every=1)
        with txm.transaction():
            insert_department(txm, "nw_a", "NwA")  # must not raise
        assert txm.committed == 1
