"""Deterministic shard-merge: sharded == serial, byte for byte (§5 case study).

The executor partitions the mode's row slice into contiguous shards and
merges partial group maps in shard order, so the merged contribution
lists reproduce the serial fold order exactly — the results must be
*identical*, not merely numerically close.
"""

import pytest

from repro.concurrency import ShardedExecutor, SnapshotManager, shard_rows
from repro.core import Interval, LevelGroup, Query, TimeGroup, YEAR
from repro.core.chronology import ym
from repro.core.query import merge_contributions
from repro.robustness import TransactionManager

QUERIES = [
    Query(group_by=(TimeGroup(YEAR), LevelGroup("org", "Division"))),
    Query(group_by=(TimeGroup(YEAR), LevelGroup("org", "Department"))),
    Query(
        group_by=(TimeGroup(YEAR), LevelGroup("org", "Division")),
        time_range=Interval(ym(2001, 1), ym(2002, 12)),
    ),
]


@pytest.fixture()
def mvft(study):
    return study.schema.multiversion_facts()


class TestShardRows:
    def test_partitions_cover_in_order(self):
        rows = list(range(10))
        parts = shard_rows(rows, 3)
        assert [len(p) for p in parts] == [4, 3, 3]
        assert [x for part in parts for x in part] == rows

    def test_more_shards_than_rows(self):
        assert [list(p) for p in shard_rows([1, 2], 8)] == [[1], [2]]

    def test_empty_input(self):
        assert shard_rows([], 4) == []

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            shard_rows([1], 0)


class TestShardedEqualsSerial:
    @pytest.mark.parametrize("shards", [2, 3, 7])
    @pytest.mark.parametrize("query_index", range(len(QUERIES)))
    def test_identical_results_across_modes(self, mvft, shards, query_index):
        executor = ShardedExecutor(mvft, shards=shards)
        base = QUERIES[query_index]
        for mode in mvft.modes.labels:
            query = base.with_mode(mode)
            serial = executor.execute_serial(query)
            sharded = executor.execute(query)
            assert sharded.to_text() == serial.to_text()
            assert [
                (r.group, [(c.measure, c.value, c.confidence) for c in r.cells])
                for r in sharded
            ] == [
                (r.group, [(c.measure, c.value, c.confidence) for c in r.cells])
                for r in serial
            ]

    def test_merge_preserves_serial_fold_order(self, mvft):
        executor = ShardedExecutor(mvft, shards=4)
        query = QUERIES[1]
        engine = executor.engine
        mode, _ = engine.resolve(query)
        rows = mvft.slice(mode.label)
        serial_groups = engine.collect_contributions(query, rows)
        partials = [
            engine.collect_contributions(query, part)
            for part in shard_rows(rows, 4)
        ]
        assert merge_contributions(partials) == serial_groups

    def test_single_shard_falls_back_to_serial(self, mvft):
        executor = ShardedExecutor(mvft, shards=1)
        query = QUERIES[0]
        assert (
            executor.execute(query).to_text()
            == executor.execute_serial(query).to_text()
        )


class TestExecutorIntegration:
    def test_cube_pivots_through_the_executor(self, study, mvft):
        from repro.olap import Cube, LevelAxis, TimeAxis

        executor = ShardedExecutor(mvft, shards=3)
        plain = Cube(mvft)
        sharded = Cube(mvft, executor=executor)
        view_a = plain.pivot(
            "tcm", TimeAxis(YEAR), LevelAxis("org", "Division"), "amount"
        )
        view_b = sharded.pivot(
            "tcm", TimeAxis(YEAR), LevelAxis("org", "Division"), "amount"
        )
        from repro.olap import render_view

        assert render_view(view_b) == render_view(view_a)

    def test_lattice_materializes_through_the_executor(self, mvft):
        from repro.olap import AggregateLattice

        executor = ShardedExecutor(mvft, shards=3)
        serial = AggregateLattice(mvft)
        sharded = AggregateLattice(mvft, executor=executor)
        assert sharded.node_count == serial.node_count
        assert dict(sharded._walk_nodes()) == dict(serial._walk_nodes())

    def test_snapshot_cursor_feeds_the_executor(self, study, txm):
        manager = SnapshotManager(txm)
        cursor = manager.open_cursor()
        executor = ShardedExecutor(cursor.mvft, shards=3)
        query = QUERIES[0]
        before = executor.execute(query).to_text()
        from .conftest import insert_department

        with manager.transaction():
            insert_department(txm, "shx_a", "ShxA")
        assert executor.execute(query).to_text() == before
