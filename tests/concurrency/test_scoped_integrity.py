"""Incremental integrity: ``scope=`` sweeps only what a transaction touched.

The contract: on the touched dimensions, a scoped sweep reports exactly
the violations the full sweep reports — and spends nothing on the rest.
"""

from repro.core import (
    Interval,
    Measure,
    MemberVersion,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
)
from repro.core.facts import FactRow
from repro.robustness import IntegrityChecker


def build_schema():
    """Two dimensions (Org, Geo), each with a root and two leaves."""
    dims = []
    for did in ("Org", "Geo"):
        d = TemporalDimension(did)
        d.add_member(MemberVersion(f"{did}_root", did, Interval(0), level="All"))
        for k in ("a", "b"):
            mvid = f"{did}_{k}"
            d.add_member(MemberVersion(mvid, mvid, Interval(0), level="Leaf"))
            d.add_relationship(
                TemporalRelationship(mvid, f"{did}_root", Interval(0))
            )
        dims.append(d)
    return TemporalMultidimensionalSchema(dims, [Measure("m", SUM)])


def corrupt_org_interval(schema):
    """Give one Org member an ill-formed valid time (internals only)."""
    object.__setattr__(
        schema.dimension("Org").member("Org_a"), "valid_time", (9, 1)
    )


def subjects(report):
    return sorted((v.code, v.subject) for v in report.violations)


class TestScopedSweep:
    def test_scoped_equals_full_on_touched_dimension(self):
        schema = build_schema()
        corrupt_org_interval(schema)
        full = IntegrityChecker(schema).run()
        scoped = IntegrityChecker(schema).run(scope={"Org"})
        org_only = [
            v for v in full.violations if v.subject.startswith("Org")
        ]
        assert subjects(scoped) == sorted(
            (v.code, v.subject) for v in org_only
        )
        assert not scoped.ok

    def test_scope_skips_untouched_dimensions(self):
        schema = build_schema()
        corrupt_org_interval(schema)
        scoped = IntegrityChecker(schema).run(scope={"Geo"})
        assert scoped.ok  # the corruption lives in Org

    def test_constructor_scope_is_the_default(self):
        schema = build_schema()
        corrupt_org_interval(schema)
        checker = IntegrityChecker(schema, scope={"Geo"})
        assert checker.run().ok
        assert not checker.run(scope={"Org"}).ok  # per-call override

    def test_none_scope_remains_the_full_sweep(self):
        schema = build_schema()
        corrupt_org_interval(schema)
        assert subjects(IntegrityChecker(schema).run()) == subjects(
            IntegrityChecker(schema).run(scope=None)
        )

    def test_fact_sweep_follows_scoped_coordinates(self):
        schema = build_schema()
        # a fact referencing a member that is not valid at its t — stuffed
        # through internals so both coordinates are individually checkable
        schema.facts._rows.append(
            FactRow(
                coordinates={"Org": "Org_a", "Geo": "ghost"},
                t=5,
                values={"m": 1.0},
            )
        )
        full = IntegrityChecker(schema).run()
        assert any(v.code == "fact" for v in full.violations)
        # scoping to Org checks only the Org coordinate (which is fine)
        assert IntegrityChecker(schema).run(scope={"Org"}).ok
        # scoping to Geo (or the facts sentinel) finds the broken coordinate
        assert not IntegrityChecker(schema).run(scope={"Geo"}).ok
        assert not IntegrityChecker(schema).run(scope={"facts"}).ok

    def test_mvid_collisions_report_only_scoped_dimensions(self):
        schema = build_schema()
        # duplicate an Org mvid into Geo through internals
        schema.dimension("Geo")._members["Org_a"] = MemberVersion(
            "Org_a", "dup", Interval(0), level="Leaf"
        )
        # the collision involves Org and Geo: either scope reports it ...
        for scope in ({"Geo"}, {"Org"}):
            assert any(
                v.code == "mvid"
                for v in IntegrityChecker(schema).run(scope=scope).violations
            )
        # ... but a scope touching neither dimension does not
        assert not any(
            v.code == "mvid"
            for v in IntegrityChecker(schema).run(scope={"facts"}).violations
        )

    def test_scoped_mapping_sweep_reaches_dangling_endpoints(self):
        from repro.core.confidence import EM
        from repro.core.mapping import (
            IdentityMapping,
            MappingRelationship,
            MeasureMap,
        )

        schema = build_schema()
        identity = MeasureMap(IdentityMapping(), EM)
        rel = MappingRelationship(
            source="Org_a",
            target="Org_b",
            forward={"m": identity},
            reverse={"m": identity},
        )
        schema.mappings.add(rel)
        # remove an endpoint through internals: the mapping dangles
        del schema.dimension("Org")._members["Org_b"]
        schema.dimension("Org")._reindex()
        full_codes = IntegrityChecker(schema).run().by_code()
        scoped_codes = IntegrityChecker(schema).run(scope={"Geo"}).by_code()
        assert "mapping" in full_codes
        # even a sweep scoped elsewhere surfaces the dangling endpoint —
        # it cannot be attributed to any dimension, so it is never hidden
        assert "mapping" in scoped_codes
