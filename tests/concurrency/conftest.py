"""Shared fixtures for the concurrency tests.

Two schema scales: the paper's §5 case study (realistic, three structure
versions, 20 facts) for end-to-end isolation and sharding checks, and the
robustness suite's small Table-11 schema for surgical conflict and
integrity scenarios.
"""

import pytest

from repro.concurrency import SnapshotManager
from repro.core.chronology import ym
from repro.robustness import TransactionManager
from repro.workloads.case_study import build_case_study

T_EVOLVE = ym(2003, 6)
"""An instant after every case-study evolution — new members go live here."""


def insert_department(txm, mvid, name, *, parent="sales", t=T_EVOLVE):
    """One-operator evolution used as the canonical concurrent write."""
    return txm.editor.insert(
        "org", mvid, name, t, level="Department", parents=[parent]
    )


@pytest.fixture()
def study():
    return build_case_study()


@pytest.fixture()
def txm(study):
    return TransactionManager(study.schema)


@pytest.fixture()
def manager(txm):
    return SnapshotManager(txm)
