"""First-committer-wins validation and the retry-based recovery loop."""

import pytest

from repro.concurrency import (
    SnapshotError,
    SnapshotManager,
    WriteConflictError,
)
from repro.core import (
    Interval,
    Measure,
    MemberVersion,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
)
from repro.core.confidence import EM
from repro.core.mapping import IdentityMapping, MappingRelationship, MeasureMap
from repro.robustness import RetryPolicy, TransactionManager

from .conftest import T_EVOLVE, insert_department


def build_two_dimensional_schema():
    """Org × Geo, one leaf each under one root — for disjoint-write tests."""
    dims = []
    for did, leaf in (("Org", "v_org"), ("Geo", "v_geo")):
        d = TemporalDimension(did)
        d.add_member(MemberVersion(f"root_{did}", did, Interval(0), level="All"))
        d.add_member(MemberVersion(leaf, leaf, Interval(0), level="Leaf"))
        d.add_relationship(TemporalRelationship(leaf, f"root_{did}", Interval(0)))
        dims.append(d)
    return TemporalMultidimensionalSchema(dims, [Measure("m", SUM)])


def no_sleep_policy(attempts=3):
    return RetryPolicy(
        max_attempts=attempts,
        base_delay=0.0,
        retry_on=(WriteConflictError,),
        sleep=lambda _s: None,
    )


class TestFirstCommitterWins:
    def test_loser_raises_and_rolls_back(self, study, txm, manager):
        base = manager.snapshot()
        with manager.transaction(base=base):
            insert_department(txm, "wcw_a", "WcwA")
        winner_version = manager.version

        with pytest.raises(WriteConflictError) as err:
            with manager.transaction(base=base):
                insert_department(txm, "wcw_b", "WcwB")
        assert err.value.dimensions == ("org",)
        assert err.value.base_version == base.version
        assert err.value.committed_version == winner_version
        # the loser left no trace: rollback restored the winner's state
        assert "wcw_b" not in study.schema.dimension("org").members
        assert manager.version == winner_version
        assert txm.rolled_back == 1

    def test_disjoint_dimensions_do_not_conflict(self):
        schema = build_two_dimensional_schema()
        txm = TransactionManager(schema)
        manager = SnapshotManager(txm)
        base = manager.snapshot()
        with manager.transaction(base=base):
            txm.editor.insert("Org", "o2", "O2", 1, level="Leaf", parents=["root_Org"])
        # same stale base, but this writer only touches Geo — no conflict
        with manager.transaction(base=base):
            txm.editor.insert("Geo", "g2", "G2", 1, level="Leaf", parents=["root_Geo"])
        assert "g2" in schema.dimension("Geo").members

    def test_fact_loads_conflict_along_their_coordinates(self):
        schema = build_two_dimensional_schema()
        txm = TransactionManager(schema)
        manager = SnapshotManager(txm)
        base = manager.snapshot()
        with manager.transaction(base=base):
            txm.editor.insert("Org", "o3", "O3", 1, level="Leaf", parents=["root_Org"])
        with pytest.raises(WriteConflictError):
            with manager.transaction(base=base):
                txm.add_fact({"Org": "v_org", "Geo": "v_geo"}, 2, m=1.0)

    def test_associate_resolves_its_touched_dimension(self, study, txm, manager):
        base = manager.snapshot()
        with manager.transaction(base=base):
            insert_department(txm, "wcw_e", "WcwE")
        identity = MeasureMap(IdentityMapping(), EM)
        rel = MappingRelationship(
            source="jones",
            target="wcw_e",
            forward={"amount": identity},
            reverse={"amount": identity},
        )
        with pytest.raises(WriteConflictError):
            with manager.transaction(base=base):
                txm.editor.associate(rel)
        assert len(study.schema.mappings) == len(
            manager.snapshot().schema.mappings
        )

    def test_default_base_is_current_version(self, txm, manager):
        with manager.transaction():
            insert_department(txm, "wcw_f", "WcwF")
        with manager.transaction():  # fresh base: no conflict
            insert_department(txm, "wcw_g", "WcwG")

    def test_unusable_base_is_rejected(self, manager):
        with pytest.raises(SnapshotError):
            with manager.transaction(base=object()):
                pass  # pragma: no cover - transaction never opens


class TestRetryIntegration:
    def test_retry_policy_wins_on_fresh_base(self, study, txm, manager):
        base = manager.snapshot()
        with manager.transaction(base=base):
            insert_department(txm, "rty_a", "RtyA")

        attempts = []

        def write(evolution):
            attempts.append(1)
            return insert_department(txm, "rty_b", "RtyB")

        result = manager.run_write(
            write, base=base, retry=no_sleep_policy()
        )
        assert result.mvid == "rty_b"
        assert len(attempts) == 2  # conflicted once, then won
        assert "rty_b" in study.schema.dimension("org").members

    def test_without_retry_the_conflict_propagates(self, txm, manager):
        base = manager.snapshot()
        with manager.transaction(base=base):
            insert_department(txm, "rty_c", "RtyC")
        with pytest.raises(WriteConflictError):
            manager.run_write(
                lambda ev: insert_department(txm, "rty_d", "RtyD"),
                base=base,
            )


class TestCommitTimeIntegrity:
    def test_verify_commits_accepts_clean_transactions(self, study, txm):
        manager = SnapshotManager(txm, verify_commits=True)
        with manager.transaction():
            insert_department(txm, "vfy_a", "VfyA")
        assert "vfy_a" in study.schema.dimension("org").members

    def test_verify_commits_scopes_to_touched_dimensions(
        self, study, txm, monkeypatch
    ):
        manager = SnapshotManager(txm, verify_commits=True)
        seen = {}
        from repro.robustness.integrity import IntegrityChecker

        original = IntegrityChecker.run

        def spy(self, scope=None):
            seen["scope"] = scope
            return original(self, scope)

        monkeypatch.setattr(IntegrityChecker, "run", spy)
        with manager.transaction():
            insert_department(txm, "vfy_b", "VfyB")
        assert seen["scope"] == {"org"}
