"""Reader-during-writer isolation: the ISSUE's headline acceptance test.

A cursor opened before ``begin()`` must return identical query results
before, during and after a concurrent compound evolution commits — and a
cursor opened afterwards must see the new version.
"""

import threading

import pytest

from repro.concurrency import SnapshotManager, SnapshotError, clone_schema
from repro.core import LevelGroup, Query, QueryEngine, TimeGroup, YEAR
from repro.core.serialization import schema_to_dict
from repro.robustness import FaultInjector, InjectedFault, TransactionManager

from .conftest import T_EVOLVE, insert_department

Q_DIVISION = Query(group_by=(TimeGroup(YEAR), LevelGroup("org", "Division")))


class TestCloneSchema:
    def test_clone_serializes_byte_identically(self, study):
        clone = clone_schema(study.schema)
        assert schema_to_dict(clone) == schema_to_dict(study.schema)

    def test_clone_is_independent_of_source_mutation(self, study, txm):
        clone = clone_schema(study.schema)
        before = schema_to_dict(clone)
        with txm.transaction():
            insert_department(txm, "clone_x", "CloneX")
        assert schema_to_dict(clone) == before
        assert "clone_x" in study.schema.dimension("org").members

    def test_clone_shares_immutable_rows(self, study):
        clone = clone_schema(study.schema)
        assert list(clone.facts.rows())[0] is list(study.schema.facts.rows())[0]


class TestReaderIsolation:
    def test_reader_sees_same_results_before_during_after_commit(
        self, study, txm, manager
    ):
        cursor = manager.open_cursor()
        baseline = QueryEngine(cursor.mvft).execute(Q_DIVISION).to_text()
        fingerprint = cursor.fingerprint()

        txn = txm.begin()
        txn.base_version = manager.version
        # compound evolution in flight: Table 11 split of 'jones' was the
        # case study's; here a smaller compound touches 'org' twice
        insert_department(txm, "iso_a", "IsoA")
        insert_department(txm, "iso_b", "IsoB")
        during = QueryEngine(cursor.mvft).execute(Q_DIVISION).to_text()
        assert during == baseline
        assert cursor.fingerprint() == fingerprint
        txm.commit()

        after = QueryEngine(cursor.mvft).execute(Q_DIVISION).to_text()
        assert after == baseline
        assert cursor.fingerprint() == fingerprint

        fresh = manager.open_cursor()
        assert fresh.version > cursor.version
        assert fresh.fingerprint() != fingerprint
        assert "iso_a" in fresh.schema.dimension("org").members

    def test_mvql_and_cube_read_the_pinned_version(self, manager, txm):
        from repro.mvql import MVQLSession
        from repro.olap import Cube

        cursor = manager.open_cursor()
        session = MVQLSession.from_cursor(cursor)
        cube = Cube.from_cursor(cursor)
        text_before = session.execute_to_text(
            "SELECT amount BY year, org.Division"
        )
        axes = {a.name for a in cube.level_axes()}
        with manager.transaction():
            insert_department(txm, "iso_c", "IsoC")
        assert (
            session.execute_to_text("SELECT amount BY year, org.Division")
            == text_before
        )
        assert {a.name for a in cube.level_axes()} == axes

    def test_warehouse_builds_from_pinned_version(self, manager, txm):
        from repro.warehouse.multiversion_dw import MultiVersionDataWarehouse

        cursor = manager.open_cursor()
        with manager.transaction():
            insert_department(txm, "iso_d", "IsoD")
        dw = MultiVersionDataWarehouse.from_cursor(cursor)
        # the star lowering of the pinned version knows nothing of iso_d
        star_rows = dw.db.table("star_org").scan()
        assert not any(r["member"] == "iso_d" for r in star_rows)

    def test_snapshot_caption_names_the_version(self, manager):
        from repro.olap import snapshot_caption

        cursor = manager.open_cursor()
        caption = snapshot_caption(cursor)
        assert f"v{cursor.version}" in caption
        assert "dimension" in caption


class TestCursorLifecycle:
    def test_open_count_and_versions(self, manager, txm):
        a = manager.open_cursor()
        with manager.transaction():
            insert_department(txm, "lc_a", "LcA")
        b = manager.open_cursor()
        assert manager.open_snapshot_count == 2
        assert manager.open_versions() == sorted([a.version, b.version])
        a.close()
        assert manager.open_snapshot_count == 1
        b.close()
        assert manager.open_snapshot_count == 0

    def test_closed_cursor_refuses_reads(self, manager):
        cursor = manager.open_cursor()
        cursor.close()
        cursor.close()  # idempotent
        with pytest.raises(SnapshotError):
            _ = cursor.schema

    def test_context_manager_closes(self, manager):
        with manager.open_cursor() as cursor:
            assert manager.open_snapshot_count == 1
            _ = cursor.version
        assert manager.open_snapshot_count == 0


class TestSnapshotImmutabilityUnderFaults:
    def test_reader_unaffected_by_faulted_commit(self, study):
        injector = FaultInjector(seed=3)
        txm = TransactionManager(study.schema, fault_injector=injector)
        manager = SnapshotManager(txm)
        cursor = manager.open_cursor()
        fingerprint = cursor.fingerprint()
        version = manager.version

        injector.arm("txn.commit", at_call=1)
        with pytest.raises(InjectedFault):
            with manager.transaction():
                insert_department(txm, "flt_a", "FltA")
        # the failed commit rolled back: no new version was published and
        # neither the reader's pinned snapshot nor the live schema moved
        assert manager.version == version
        assert cursor.fingerprint() == fingerprint
        assert "flt_a" not in study.schema.dimension("org").members

        injector.disarm_all()
        with manager.transaction():
            insert_department(txm, "flt_b", "FltB")
        assert manager.version > version
        assert cursor.fingerprint() == fingerprint

    def test_fault_between_operators_leaves_snapshot_clean(self, study):
        injector = FaultInjector(seed=5)
        txm = TransactionManager(study.schema, fault_injector=injector)
        manager = SnapshotManager(txm)
        cursor = manager.open_cursor()
        fingerprint = cursor.fingerprint()

        injector.arm("txn.op.post", at_call=2)
        with pytest.raises(InjectedFault):
            with manager.transaction():
                insert_department(txm, "flt_c", "FltC")
                insert_department(txm, "flt_d", "FltD")
        assert cursor.fingerprint() == fingerprint
        assert manager.snapshot().fingerprint() == fingerprint


class TestThreadedReaderDuringWriterChurn:
    def test_reader_thread_sees_one_stable_version_while_writer_commits(
        self, study, txm, manager
    ):
        cursor = manager.open_cursor()
        engine = QueryEngine(cursor.mvft)
        baseline = engine.execute(Q_DIVISION).to_text()
        mismatches = []
        stop = threading.Event()

        def read_loop():
            while not stop.is_set():
                if engine.execute(Q_DIVISION).to_text() != baseline:
                    mismatches.append("drift")
                    return

        reader = threading.Thread(target=read_loop)
        reader.start()
        try:
            for i in range(5):
                with manager.transaction():
                    insert_department(txm, f"churn{i}", f"Churn{i}")
        finally:
            stop.set()
            reader.join(timeout=30)
        assert not reader.is_alive()
        assert mismatches == []
        assert manager.open_cursor().version == manager.version
