"""Tests for the SCD / updating / Eder-Koncilia baselines, including the
claims the paper makes about each (§1.2, §2.2)."""

import pytest

from repro.baselines import EKModel, SCDType1, SCDType2, SCDType3, UpdatingModel
from repro.baselines.eder_koncilia import EKError


def year_bucket(t: int) -> int:
    return t


class TestSCDType1:
    def test_overwrite_loses_history(self):
        scd = SCDType1()
        scd.assign("smith", "Sales", 2001)
        scd.record_fact("smith", 2001, 50.0)
        scd.assign("smith", "R&D", 2002)
        scd.record_fact("smith", 2002, 100.0)
        totals = scd.totals_by_group(year_bucket)
        # 2001's fact is silently re-homed under R&D: corrupted history.
        assert totals[(2001, "R&D")] == 50.0
        assert (2001, "Sales") not in totals
        assert scd.history_retention() == 0.0
        assert scd.cross_version_comparability() == 1.0

    def test_without_changes_history_intact(self):
        scd = SCDType1()
        scd.assign("a", "G", 1)
        scd.record_fact("a", 1, 5.0)
        assert scd.history_retention() == 1.0

    def test_unknown_member_rejected(self):
        with pytest.raises(KeyError):
            SCDType1().record_fact("ghost", 1, 1.0)


class TestSCDType2:
    def test_versions_accumulate(self):
        scd = SCDType2()
        scd.assign("smith", "Sales", 2001)
        scd.assign("smith", "R&D", 2002)
        assert scd.version_count("smith") == 2

    def test_no_change_no_new_version(self):
        scd = SCDType2()
        scd.assign("smith", "Sales", 2001)
        scd.assign("smith", "Sales", 2002)
        assert scd.version_count("smith") == 1

    def test_consistent_time_totals(self):
        scd = SCDType2()
        scd.assign("smith", "Sales", 2001)
        scd.record_fact("smith", 2001, 50.0)
        scd.assign("smith", "R&D", 2002)
        scd.record_fact("smith", 2002, 100.0)
        totals = scd.totals_by_group(year_bucket)
        assert totals[(2001, "Sales")] == 50.0
        assert totals[(2002, "R&D")] == 100.0

    def test_fact_outside_any_version_rejected(self):
        scd = SCDType2()
        scd.assign("smith", "Sales", 2001)
        with pytest.raises(KeyError):
            scd.record_fact("smith", 1999, 1.0)

    def test_history_kept_but_not_comparable(self):
        """The paper's §1.2 critique of Type 2: history yes, links no."""
        scd = SCDType2()
        scd.assign("smith", "Sales", 2001)
        scd.assign("smith", "R&D", 2002)
        assert scd.history_retention() == 1.0
        assert scd.cross_version_comparability() == 0.0


class TestSCDType3:
    def test_current_and_previous_views(self):
        scd = SCDType3()
        scd.assign("smith", "Sales", 2001)
        scd.record_fact("smith", 2001, 50.0)
        scd.assign("smith", "R&D", 2002)
        scd.record_fact("smith", 2002, 100.0)
        current = scd.totals_by_group(year_bucket)
        previous = scd.totals_by_group(year_bucket, use_previous=True)
        assert current[(2001, "R&D")] == 50.0
        assert previous[(2001, "Sales")] == 50.0

    def test_second_change_overwrites_first(self):
        """'Equipped to handle only [one] change': retention halves."""
        scd = SCDType3()
        scd.assign("x", "A", 1)
        scd.assign("x", "B", 2)
        assert scd.history_retention() == 1.0
        scd.assign("x", "C", 3)
        assert scd.history_retention() == 0.5
        previous = scd.totals_by_group(year_bucket, use_previous=True)
        assert previous == {}  # no facts yet, but the A state is gone
        assert scd.cross_version_comparability() == 0.5

    def test_no_changes_full_retention(self):
        scd = SCDType3()
        scd.assign("x", "A", 1)
        assert scd.history_retention() == 1.0


class TestUpdatingModel:
    def build(self):
        m = UpdatingModel()
        m.add_member("jones", "Sales")
        m.add_member("smith", "Sales")
        m.add_member("brian", "R&D")
        m.record_fact("jones", 2001, 100.0)
        m.record_fact("smith", 2001, 50.0)
        m.record_fact("brian", 2001, 100.0)
        return m

    def test_reclassify_rewrites_history(self):
        m = self.build()
        m.reclassify("smith", "R&D")
        totals = m.totals_by_group(year_bucket)
        assert totals[(2001, "R&D")] == 150.0  # 2001 history silently moved
        assert m.history_retention() == 0.0

    def test_delete_loses_facts(self):
        m = self.build()
        m.delete_member("brian")
        assert m.facts_lost == 1
        assert (2001, "R&D") not in m.totals_by_group(year_bucket)

    def test_split_corrupts_facts(self):
        m = self.build()
        m.split_member("jones", {"bill": 0.4, "paul": 0.6}, "Sales")
        totals = m.totals_by_group(year_bucket)
        assert totals[(2001, "Sales")] == pytest.approx(150.0)
        assert m.facts_corrupted == 2  # jones's fact became two estimates

    def test_merge_rekeys_facts(self):
        m = self.build()
        m.merge_members(["jones", "smith"], "mega", "Sales")
        totals = m.totals_by_group(year_bucket)
        assert totals[(2001, "Sales")] == 150.0
        assert m.facts_corrupted == 0  # merged values are exact, just re-keyed

    def test_data_loss_fraction(self):
        m = self.build()
        m.delete_member("brian")
        m.split_member("jones", {"bill": 0.4, "paul": 0.6}, "Sales")
        assert m.data_loss_fraction(total_recorded=3) == pytest.approx(1.0)

    def test_single_presentation(self):
        assert self.build().available_presentations() == 1


class TestEderKoncilia:
    def build(self):
        """Jones split 40/60, Smith and Brian unchanged."""
        model = EKModel()
        model.add_version("S1", ["jones", "smith", "brian"])
        model.add_version(
            "S2",
            ["bill", "paul", "smith", "brian"],
            transformation={"jones": {"bill": 0.4, "paul": 0.6}},
        )
        return model

    def test_forward_mapping_matches_our_split(self):
        model = self.build()
        mapped = model.map_vector(
            {"jones": 100.0, "smith": 100.0, "brian": 50.0}, "S1", "S2"
        )
        assert mapped == pytest.approx(
            {"bill": 40.0, "paul": 60.0, "smith": 100.0, "brian": 50.0}
        )

    def test_backward_mapping_merges(self):
        model = self.build()
        mapped = model.map_vector(
            {"bill": 150.0, "paul": 50.0, "smith": 110.0, "brian": 40.0}, "S2", "S1"
        )
        assert mapped["jones"] == pytest.approx(200.0)
        assert mapped["smith"] == 110.0

    def test_chained_versions_multiply(self):
        model = self.build()
        model.add_version(
            "S3",
            ["bill2", "paul", "smith", "brian"],
            transformation={"bill": {"bill2": 0.5}},
        )
        mapped = model.map_vector({"jones": 100.0}, "S1", "S3")
        assert mapped["bill2"] == pytest.approx(20.0)  # 0.4 * 0.5
        assert mapped["paul"] == pytest.approx(60.0)

    def test_disappearing_member_detected(self):
        model = EKModel()
        model.add_version("S1", ["a", "b"])
        model.add_version("S2", ["b"])  # a vanishes with no transformation
        assert model.lost_members("S1", "S2") == ["a"]

    def test_identity_chain(self):
        model = self.build()
        same = model.map_vector({"jones": 5.0}, "S1", "S1")
        assert same["jones"] == 5.0

    def test_errors(self):
        model = EKModel()
        with pytest.raises(EKError):
            model.add_version("S1", ["a"], transformation={"a": {"a": 1.0}})
        model.add_version("S1", ["a"])
        with pytest.raises(EKError):
            model.map_vector({}, "S1", "S9")

    def test_agrees_with_multiversion_model_on_linear_case(self, engine):
        """On the paper's case study the EK matrices and our mapping
        relationships produce identical department-level numbers."""
        from repro.core import Interval, LevelGroup, Query, TimeGroup, YEAR, ym

        model = self.build()
        q2_v3 = engine.execute(
            Query(
                mode="V3",
                group_by=(TimeGroup(YEAR), LevelGroup("org", "Department")),
                time_range=Interval(ym(2002, 1), ym(2002, 12)),
            )
        ).as_dict()
        ek = model.map_vector(
            {"jones": 100.0, "smith": 100.0, "brian": 50.0}, "S1", "S2"
        )
        assert q2_v3[("2002", "Dpt.Bill")]["amount"] == pytest.approx(ek["bill"])
        assert q2_v3[("2002", "Dpt.Paul")]["amount"] == pytest.approx(ek["paul"])


class TestMendelzonVaisman:
    def build(self):
        """The case study in the MV temporal model (year chronons)."""
        from repro.baselines import MVTemporalModel

        m = MVTemporalModel()
        for member in ("Sales", "R&D"):
            m.add_member(member, 2001)
        for member, parent in (
            ("jones", "Sales"), ("smith", "Sales"), ("brian", "R&D")
        ):
            m.add_member(member, 2001)
            m.add_rollup(member, parent, 2001)
        # 2002: smith reclassified.
        m.close_rollup("smith", "Sales", 2001)
        m.add_rollup("smith", "R&D", 2002)
        # 2003: jones split 40/60.
        m.close_member("jones", 2002)
        m.close_rollup("jones", "Sales", 2002)
        for part in ("bill", "paul"):
            m.add_member(part, 2003)
            m.add_rollup(part, "Sales", 2003)
        m.link("jones", "bill", 0.4)
        m.link("jones", "paul", 0.6)
        facts = [
            ("jones", 2001, 100.0), ("smith", 2001, 50.0), ("brian", 2001, 100.0),
            ("jones", 2002, 100.0), ("smith", 2002, 100.0), ("brian", 2002, 50.0),
            ("bill", 2003, 150.0), ("paul", 2003, 50.0),
            ("smith", 2003, 110.0), ("brian", 2003, 40.0),
        ]
        for member, year, amount in facts:
            m.record_fact(member, year, amount)
        return m

    def test_consistent_mode_matches_table_4(self):
        m = self.build()
        totals = m.totals_consistent(lambda t: t)
        assert totals[(2001, "Sales")] == 150.0
        assert totals[(2002, "R&D")] == 150.0

    def test_latest_mode_matches_our_v3(self, engine):
        """On the case study, MV's latest mode equals our V3 mode."""
        from repro.core import Interval, LevelGroup, Query, TimeGroup, YEAR, ym

        m = self.build()
        latest = m.totals_latest(lambda t: t)
        ours = engine.execute(
            Query(mode="V3", group_by=(TimeGroup(YEAR), LevelGroup("org", "Division")))
        ).as_dict()
        for (year, division), amount in latest.items():
            assert ours[(str(year), division)]["amount"] == pytest.approx(amount)

    def test_fact_validity_enforced(self):
        from repro.baselines.mendelzon_vaisman import MVError

        m = self.build()
        with pytest.raises(MVError):
            m.record_fact("jones", 2003, 1.0)  # jones closed in 2002

    def test_dead_end_lineage_loses_data(self):
        from repro.baselines import MVTemporalModel

        m = MVTemporalModel()
        m.add_member("root", 2001)
        m.add_member("gone", 2001, end=2001)
        m.add_rollup("gone", "root", 2001, end=2001)
        m.record_fact("gone", 2001, 10.0)
        # no link from 'gone': its value vanishes from the latest mode.
        assert m.totals_latest(lambda t: t) == {}
        assert m.totals_consistent(lambda t: t) == {(2001, "root"): 10.0}

    def test_the_section_2_2_gap(self):
        m = self.build()
        assert m.available_presentations() == 2
        assert not m.supports_past_version_mapping()
        assert not m.supports_confidence_tagging()
