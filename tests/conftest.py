"""Shared fixtures: the paper's case study, built once per session."""

import pytest

from repro.core import QueryEngine
from repro.workloads.case_study import (
    build_case_study,
    build_two_measure_case_study,
)


@pytest.fixture(scope="session")
def case_study():
    """The §2.1 case study (amount measure, Tables 1-10)."""
    return build_case_study()


@pytest.fixture(scope="session")
def two_measure_study():
    """The §5.2 prototype variant (turnover/profit, Table 12)."""
    return build_two_measure_case_study()


@pytest.fixture(scope="session")
def mvft(case_study):
    """The inferred MultiVersion fact table of the case study."""
    return case_study.schema.multiversion_facts()


@pytest.fixture(scope="session")
def engine(mvft):
    """A query engine over the case study."""
    return QueryEngine(mvft)
