"""Property-based tests for the relational substrate."""

from hypothesis import given, settings, strategies as st

from repro.storage import (
    Column,
    FLOAT,
    INTEGER,
    Q,
    TEXT,
    TableSchema,
    Table,
    dump_table,
    load_table,
)

SCHEMA = TableSchema(
    name="t",
    columns=(
        Column("k", INTEGER),
        Column("g", TEXT),
        Column("v", FLOAT, nullable=True),
    ),
    primary_key=("k",),
)

values = st.one_of(
    st.none(),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)
row_lists = st.lists(
    st.tuples(st.sampled_from(["a", "b", "c"]), values),
    max_size=30,
)


def build_table(rows):
    table = Table(SCHEMA)
    for k, (g, v) in enumerate(rows):
        table.insert({"k": k, "g": g, "v": v})
    return table


class TestCsvRoundtrip:
    @settings(max_examples=60, deadline=None)
    @given(rows=row_lists)
    def test_dump_load_is_identity(self, rows):
        import tempfile
        from pathlib import Path

        table = build_table(rows)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "t.csv"
            dump_table(table, path)
            loaded = load_table(SCHEMA, path)
        assert list(loaded.rows()) == list(table.rows())


class TestQueryPipelineProperties:
    @settings(max_examples=80, deadline=None)
    @given(row_lists)
    def test_group_by_sum_matches_bruteforce(self, rows):
        table = build_table(rows)
        result = {
            r["g"]: r["total"]
            for r in Q(table)
            .group_by(["g"], aggregates={"total": ("sum", "v")})
            .rows()
        }
        expected: dict[str, list] = {}
        for k, (g, v) in enumerate(rows):
            expected.setdefault(g, []).append(v)
        for g, vs in expected.items():
            known = [v for v in vs if v is not None]
            if known:
                assert result[g] is not None
                assert abs(result[g] - sum(known)) < 1e-6
            else:
                assert result[g] is None

    @settings(max_examples=60, deadline=None)
    @given(row_lists)
    def test_where_then_count_matches_bruteforce(self, rows):
        table = build_table(rows)
        got = (
            Q(table)
            .where(lambda r: r["g"] == "a")
            .group_by([], aggregates={"n": ("count", "k")})
            .rows()
        )
        expected = sum(1 for g, _ in rows if g == "a")
        if got:
            assert got[0]["n"] == expected
        else:
            # No surviving rows — there was nothing to count.
            assert expected == 0

    @settings(max_examples=60, deadline=None)
    @given(row_lists)
    def test_order_by_is_stable_sort_on_key(self, rows):
        table = build_table(rows)
        ordered = Q(table).order_by(["g"]).rows()
        keys = [r["g"] for r in ordered]
        assert keys == sorted(keys)
        # stability: within a group, insertion (k) order is preserved
        for g in set(keys):
            ks = [r["k"] for r in ordered if r["g"] == g]
            assert ks == sorted(ks)

    @settings(max_examples=60, deadline=None)
    @given(row_lists)
    def test_join_with_self_on_key_is_identity_sized(self, rows):
        table = build_table(rows)
        joined = Q(table).join(table, on=[("k", "k")]).rows()
        assert len(joined) == len(table)

    @settings(max_examples=40, deadline=None)
    @given(row_lists)
    def test_distinct_idempotent(self, rows):
        table = build_table(rows)
        once = Q(table).select(["g"]).distinct().rows()
        twice = Q(once).distinct().rows()
        assert once == twice
