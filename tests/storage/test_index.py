"""Direct unit tests for the hash index."""

import pytest

from repro.storage import DuplicateKeyError, HashIndex, StorageError


class TestHashIndex:
    def test_needs_columns(self):
        with pytest.raises(StorageError):
            HashIndex([])

    def test_add_and_lookup(self):
        idx = HashIndex(["a", "b"])
        idx.add(0, {"a": 1, "b": "x", "c": "ignored"})
        idx.add(1, {"a": 1, "b": "x"})
        assert idx.lookup((1, "x")) == [0, 1]
        assert idx.lookup((2, "x")) == []
        assert len(idx) == 2

    def test_unique_index_rejects_duplicates(self):
        idx = HashIndex(["k"], unique=True)
        idx.add(0, {"k": 5})
        with pytest.raises(DuplicateKeyError):
            idx.add(1, {"k": 5})

    def test_remove(self):
        idx = HashIndex(["k"])
        idx.add(0, {"k": 5})
        idx.add(1, {"k": 5})
        idx.remove(0, {"k": 5})
        assert idx.lookup((5,)) == [1]
        idx.remove(1, {"k": 5})
        assert idx.lookup((5,)) == []
        # removing an absent rid is a no-op
        idx.remove(9, {"k": 5})

    def test_key_of(self):
        idx = HashIndex(["b", "a"])
        assert idx.key_of({"a": 1, "b": 2}) == (2, 1)
