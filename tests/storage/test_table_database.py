"""Unit tests for tables, indexes and the database catalog."""

import pytest

from repro.storage import (
    Column,
    Database,
    DuplicateKeyError,
    FLOAT,
    ForeignKey,
    ForeignKeyViolation,
    INTEGER,
    StorageError,
    TableExistsError,
    TEXT,
    UnknownTableError,
)


def make_db():
    db = Database("test")
    db.create_table(
        "dim",
        [Column("member_id", TEXT), Column("name", TEXT)],
        primary_key=["member_id"],
    )
    db.create_table(
        "fact",
        [
            Column("member_id", TEXT),
            Column("t", INTEGER),
            Column("amount", FLOAT, nullable=True),
        ],
        primary_key=["member_id", "t"],
        foreign_keys=[ForeignKey(("member_id",), "dim", ("member_id",))],
    )
    return db


class TestTableCrud:
    def test_insert_and_get(self):
        db = make_db()
        dim = db.table("dim")
        dim.insert({"member_id": "a", "name": "A"})
        assert dim.get(("a",)) == {"member_id": "a", "name": "A"}
        assert dim.get(("zz",)) is None

    def test_primary_key_uniqueness(self):
        db = make_db()
        dim = db.table("dim")
        dim.insert({"member_id": "a", "name": "A"})
        with pytest.raises(DuplicateKeyError):
            dim.insert({"member_id": "a", "name": "A2"})
        assert len(dim) == 1  # failed insert left no trace

    def test_composite_primary_key(self):
        db = make_db()
        db.table("dim").insert({"member_id": "a", "name": "A"})
        fact = db.table("fact")
        db.insert("fact", {"member_id": "a", "t": 1, "amount": 5.0})
        db.insert("fact", {"member_id": "a", "t": 2, "amount": 6.0})
        with pytest.raises(DuplicateKeyError):
            fact.insert({"member_id": "a", "t": 1, "amount": 7.0})

    def test_update(self):
        db = make_db()
        dim = db.table("dim")
        dim.insert({"member_id": "a", "name": "A"})
        changed = dim.update(lambda r: r["member_id"] == "a", {"name": "A2"})
        assert changed == 1
        assert dim.get(("a",))["name"] == "A2"

    def test_update_cannot_create_duplicate_key(self):
        db = make_db()
        dim = db.table("dim")
        dim.insert({"member_id": "a", "name": "A"})
        dim.insert({"member_id": "b", "name": "B"})
        with pytest.raises(DuplicateKeyError):
            dim.update(lambda r: r["member_id"] == "b", {"member_id": "a"})

    def test_delete(self):
        db = make_db()
        dim = db.table("dim")
        dim.insert({"member_id": "a", "name": "A"})
        dim.insert({"member_id": "b", "name": "B"})
        assert dim.delete(lambda r: r["member_id"] == "a") == 1
        assert len(dim) == 1
        assert dim.get(("a",)) is None
        # the key slot is reusable after deletion
        dim.insert({"member_id": "a", "name": "A-again"})

    def test_rows_are_copies(self):
        db = make_db()
        dim = db.table("dim")
        dim.insert({"member_id": "a", "name": "A"})
        row = next(iter(dim))
        row["name"] = "mutated"
        assert dim.get(("a",))["name"] == "A"

    def test_scan_with_predicate(self):
        db = make_db()
        dim = db.table("dim")
        dim.insert_many(
            [{"member_id": m, "name": m.upper()} for m in ("a", "b", "c")]
        )
        assert len(dim.scan(lambda r: r["name"] > "A")) == 2

    def test_column_values_and_distinct(self):
        db = make_db()
        dim = db.table("dim")
        dim.insert_many(
            [
                {"member_id": "a", "name": "X"},
                {"member_id": "b", "name": "X"},
                {"member_id": "c", "name": "Y"},
            ]
        )
        assert dim.column_values("name") == ["X", "X", "Y"]
        assert dim.distinct("name") == ["X", "Y"]


class TestSecondaryIndexes:
    def test_find_uses_index(self):
        db = make_db()
        fact = db.table("fact")
        db.table("dim").insert({"member_id": "a", "name": "A"})
        for t in range(100):
            fact.insert({"member_id": "a", "t": t, "amount": float(t)})
        fact.create_index(["t"])
        hits = fact.find(t=42)
        assert len(hits) == 1 and hits[0]["amount"] == 42.0

    def test_find_falls_back_to_scan(self):
        db = make_db()
        dim = db.table("dim")
        dim.insert({"member_id": "a", "name": "A"})
        assert dim.find(name="A")[0]["member_id"] == "a"

    def test_duplicate_index_rejected(self):
        db = make_db()
        fact = db.table("fact")
        fact.create_index(["t"])
        with pytest.raises(StorageError):
            fact.create_index(["t"])

    def test_index_backfills_existing_rows(self):
        db = make_db()
        dim = db.table("dim")
        dim.insert({"member_id": "a", "name": "A"})
        dim.create_index(["name"])
        assert dim.find(name="A")


class TestDatabase:
    def test_duplicate_table_rejected(self):
        db = make_db()
        with pytest.raises(TableExistsError):
            db.create_table("dim", [Column("x", TEXT)])

    def test_unknown_table_rejected(self):
        with pytest.raises(UnknownTableError):
            make_db().table("zzz")

    def test_drop_table(self):
        db = make_db()
        db.drop_table("fact")
        assert "fact" not in db
        with pytest.raises(UnknownTableError):
            db.drop_table("fact")

    def test_drop_table_refuses_fk_referenced_parent(self):
        db = make_db()
        with pytest.raises(ForeignKeyViolation, match="'fact'"):
            db.drop_table("dim")  # fact.member_id still references it
        assert "dim" in db
        db.drop_table("fact")
        db.drop_table("dim")  # no dependents left: allowed

    def test_foreign_key_enforced(self):
        db = make_db()
        with pytest.raises(ForeignKeyViolation):
            db.insert("fact", {"member_id": "ghost", "t": 1, "amount": 1.0})

    def test_foreign_key_satisfied(self):
        db = make_db()
        db.table("dim").insert({"member_id": "a", "name": "A"})
        db.insert("fact", {"member_id": "a", "t": 1, "amount": 1.0})

    def test_foreign_key_skipped_on_null(self):
        db = Database()
        db.create_table("p", [Column("k", TEXT)], primary_key=["k"])
        db.create_table(
            "c",
            [Column("k", TEXT, nullable=True), Column("v", INTEGER)],
            foreign_keys=[ForeignKey(("k",), "p", ("k",))],
        )
        db.insert("c", {"k": None, "v": 1})  # SQL semantics: NULL FK passes

    def test_check_fk_false_bypasses(self):
        db = make_db()
        db.insert("fact", {"member_id": "ghost", "t": 1, "amount": 1.0}, check_fk=False)

    def test_row_counts(self):
        db = make_db()
        db.table("dim").insert({"member_id": "a", "name": "A"})
        assert db.row_counts() == {"dim": 1, "fact": 0}
        assert db.total_rows() == 1


class TestRowLevelUndo:
    """remove_row / restore_row / items — the hooks transactions use."""

    def test_items_yields_live_rows_with_stable_rids(self):
        db = make_db()
        r1 = db.insert("dim", {"member_id": "a", "name": "A"})
        r2 = db.insert("dim", {"member_id": "b", "name": "B"})
        table = db.table("dim")
        assert dict(table.items()) == {
            r1: {"member_id": "a", "name": "A"},
            r2: {"member_id": "b", "name": "B"},
        }
        table.remove_row(r1)
        assert [rid for rid, _ in table.items()] == [r2]

    def test_remove_row_returns_copy_and_clears_indexes(self):
        db = make_db()
        rid = db.insert("dim", {"member_id": "a", "name": "A"})
        table = db.table("dim")
        row = table.remove_row(rid)
        assert row == {"member_id": "a", "name": "A"}
        assert len(table) == 0
        # the primary key is free again
        db.insert("dim", {"member_id": "a", "name": "A2"})

    def test_remove_row_rejects_dead_slots(self):
        db = make_db()
        rid = db.insert("dim", {"member_id": "a", "name": "A"})
        table = db.table("dim")
        table.remove_row(rid)
        with pytest.raises(StorageError):
            table.remove_row(rid)
        with pytest.raises(StorageError):
            table.remove_row(999)

    def test_restore_row_round_trips(self):
        db = make_db()
        rid = db.insert("dim", {"member_id": "a", "name": "A"})
        table = db.table("dim")
        row = table.remove_row(rid)
        table.restore_row(rid, row)
        assert table.find(member_id="a")
        assert len(table) == 1

    def test_restore_row_grows_slots_with_holes(self):
        # recovery replays journaled rids onto a fresh table: slots below
        # the target rid must appear as dead holes, not shift other rows
        db = make_db()
        table = db.table("dim")
        table.restore_row(3, {"member_id": "d", "name": "D"})
        assert len(table) == 1
        assert table.row(3) == {"member_id": "d", "name": "D"}
        with pytest.raises(StorageError):
            table.row(0)  # a hole, not a row
        db.insert("dim", {"member_id": "e", "name": "E"})  # fills slot 4
        assert table.row(4) == {"member_id": "e", "name": "E"}

    def test_restore_row_audits_unique_indexes(self):
        db = make_db()
        db.insert("dim", {"member_id": "a", "name": "A"})
        table = db.table("dim")
        with pytest.raises(DuplicateKeyError, match="would duplicate key"):
            table.restore_row(5, {"member_id": "a", "name": "imposter"})
        assert len(table) == 1  # the audit fired before any mutation

    def test_restore_row_rejects_negative_rid(self):
        table = make_db().table("dim")
        with pytest.raises(StorageError):
            table.restore_row(-1, {"member_id": "a", "name": "A"})


class TestInsertManyAtomicity:
    """Regression: a failing row used to leave all prior rows behind."""

    def test_fk_violation_mid_batch_inserts_nothing(self):
        db = make_db()
        db.insert("dim", {"member_id": "a", "name": "A"})
        with pytest.raises(ForeignKeyViolation):
            db.insert_many(
                "fact",
                [
                    {"member_id": "a", "t": 1, "amount": 1.0},
                    {"member_id": "a", "t": 2, "amount": 2.0},
                    {"member_id": "ghost", "t": 3, "amount": 3.0},
                ],
            )
        assert db.row_counts()["fact"] == 0

    def test_duplicate_key_mid_batch_inserts_nothing(self):
        db = make_db()
        with pytest.raises(DuplicateKeyError):
            db.insert_many(
                "dim",
                [
                    {"member_id": "a", "name": "A"},
                    {"member_id": "a", "name": "A again"},
                ],
            )
        assert db.row_counts()["dim"] == 0
        # and the key is still usable afterwards
        db.insert("dim", {"member_id": "a", "name": "A"})

    def test_successful_batch_reports_count(self):
        db = make_db()
        n = db.insert_many(
            "dim",
            [
                {"member_id": "a", "name": "A"},
                {"member_id": "b", "name": "B"},
            ],
        )
        assert n == 2 and db.row_counts()["dim"] == 2

    def test_injected_fault_mid_batch_inserts_nothing(self):
        from repro.robustness import FaultInjector, InjectedFault

        inj = FaultInjector()
        inj.arm("db.insert_many.row", at_call=2)
        db = Database("test", fault_injector=inj)
        db.create_table(
            "dim",
            [Column("member_id", TEXT), Column("name", TEXT)],
            primary_key=["member_id"],
        )
        with pytest.raises(InjectedFault):
            db.insert_many(
                "dim",
                [
                    {"member_id": "a", "name": "A"},
                    {"member_id": "b", "name": "B"},
                ],
            )
        assert db.row_counts()["dim"] == 0
