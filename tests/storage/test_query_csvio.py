"""Unit tests for the query pipeline and CSV persistence."""

import pytest

from repro.storage import (
    Column,
    Database,
    FLOAT,
    INTEGER,
    Q,
    QueryPlanError,
    StorageError,
    TEXT,
    dump_database,
    dump_table,
    load_database,
    load_table,
)


def sales_db():
    db = Database()
    dim = db.create_table(
        "dim",
        [Column("member", TEXT), Column("division", TEXT)],
        primary_key=["member"],
    )
    fact = db.create_table(
        "fact",
        [
            Column("member", TEXT),
            Column("year", INTEGER),
            Column("amount", FLOAT, nullable=True),
        ],
    )
    dim.insert_many(
        [
            {"member": "jones", "division": "Sales"},
            {"member": "smith", "division": "Sales"},
            {"member": "brian", "division": "R&D"},
        ]
    )
    fact.insert_many(
        [
            {"member": "jones", "year": 2001, "amount": 100.0},
            {"member": "smith", "year": 2001, "amount": 50.0},
            {"member": "brian", "year": 2001, "amount": 100.0},
            {"member": "jones", "year": 2002, "amount": 100.0},
            {"member": "brian", "year": 2002, "amount": None},
        ]
    )
    return db


class TestPipeline:
    def test_where_and_select(self):
        db = sales_db()
        rows = (
            Q(db.table("fact"))
            .where(lambda r: r["year"] == 2001)
            .select(["member", "amount"])
            .rows()
        )
        assert len(rows) == 3
        assert set(rows[0]) == {"member", "amount"}

    def test_select_unknown_column_rejected(self):
        db = sales_db()
        with pytest.raises(QueryPlanError):
            Q(db.table("fact")).select(["zzz"]).rows()

    def test_join_group_order(self):
        db = sales_db()
        rows = (
            Q(db.table("fact"))
            .join(db.table("dim"), on=[("member", "member")])
            .group_by(
                ["year", "division"], aggregates={"total": ("sum", "amount")}
            )
            .order_by(["year", "division"])
            .rows()
        )
        assert rows == [
            {"year": 2001, "division": "R&D", "total": 100.0},
            {"year": 2001, "division": "Sales", "total": 150.0},
            {"year": 2002, "division": "R&D", "total": None},
            {"year": 2002, "division": "Sales", "total": 100.0},
        ]

    def test_left_join_keeps_unmatched(self):
        db = sales_db()
        db.table("fact").insert({"member": "ghost", "year": 2001, "amount": 5.0})
        rows = (
            Q(db.table("fact"))
            .join(db.table("dim"), on=[("member", "member")], how="left")
            .where(lambda r: r["member"] == "ghost")
            .rows()
        )
        assert rows[0]["division"] is None

    def test_inner_join_drops_unmatched(self):
        db = sales_db()
        db.table("fact").insert({"member": "ghost", "year": 2001, "amount": 5.0})
        rows = (
            Q(db.table("fact"))
            .join(db.table("dim"), on=[("member", "member")])
            .rows()
        )
        assert all(r["member"] != "ghost" for r in rows)

    def test_join_name_collision_suffixed(self):
        db = sales_db()
        other = [{"member": "jones", "year": 1999}]
        row = (
            Q(db.table("fact"))
            .where(lambda r: r["member"] == "jones" and r["year"] == 2001)
            .join(other, on=[("member", "member")])
            .rows()[0]
        )
        assert row["year"] == 2001 and row["year_r"] == 1999

    def test_bad_join_spec_rejected(self):
        db = sales_db()
        with pytest.raises(QueryPlanError):
            Q(db.table("fact")).join(db.table("dim"), on=[]).rows()
        with pytest.raises(QueryPlanError):
            Q(db.table("fact")).join(db.table("dim"), on=[("member", "member")], how="outer")

    def test_aggregates(self):
        db = sales_db()
        row = (
            Q(db.table("fact"))
            .group_by(
                [],
                aggregates={
                    "total": ("sum", "amount"),
                    "n": ("count", "amount"),
                    "lo": ("min", "amount"),
                    "hi": ("max", "amount"),
                    "mean": ("avg", "amount"),
                },
            )
            .one()
        )
        assert row["total"] == 350.0
        assert row["n"] == 4  # None not counted
        assert (row["lo"], row["hi"]) == (50.0, 100.0)
        assert row["mean"] == pytest.approx(87.5)

    def test_unknown_aggregate_rejected(self):
        db = sales_db()
        with pytest.raises(QueryPlanError):
            Q(db.table("fact")).group_by([], aggregates={"x": ("median", "amount")})

    def test_extend_distinct_limit(self):
        db = sales_db()
        rows = (
            Q(db.table("fact"))
            .extend("era", lambda r: "early" if r["year"] < 2002 else "late")
            .select(["era"])
            .distinct()
            .order_by(["era"])
            .limit(1)
            .rows()
        )
        assert rows == [{"era": "early"}]

    def test_scalar_and_one_guards(self):
        db = sales_db()
        q = Q(db.table("fact")).group_by([], aggregates={"total": ("sum", "amount")})
        assert q.scalar("total") == 350.0
        with pytest.raises(QueryPlanError):
            q.scalar("zzz")
        with pytest.raises(QueryPlanError):
            Q(db.table("fact")).one()

    def test_pipeline_is_reusable_and_immutable(self):
        db = sales_db()
        base = Q(db.table("fact"))
        q1 = base.where(lambda r: r["year"] == 2001)
        q2 = base.where(lambda r: r["year"] == 2002)
        assert len(q1.rows()) == 3 and len(q2.rows()) == 2
        assert len(base.rows()) == 5  # untouched

    def test_negative_limit_rejected(self):
        with pytest.raises(QueryPlanError):
            Q([]).limit(-1)


class TestCsvIO:
    def test_table_roundtrip(self, tmp_path):
        db = sales_db()
        path = tmp_path / "fact.csv"
        dump_table(db.table("fact"), path)
        loaded = load_table(db.table("fact").schema, path)
        assert list(loaded.rows()) == list(db.table("fact").rows())

    def test_null_roundtrip(self, tmp_path):
        db = sales_db()
        path = tmp_path / "fact.csv"
        dump_table(db.table("fact"), path)
        loaded = load_table(db.table("fact").schema, path)
        nones = [r for r in loaded.rows() if r["amount"] is None]
        assert len(nones) == 1

    def test_header_mismatch_rejected(self, tmp_path):
        db = sales_db()
        path = tmp_path / "x.csv"
        dump_table(db.table("fact"), path)
        with pytest.raises(StorageError):
            load_table(db.table("dim").schema, path)

    def test_database_roundtrip(self, tmp_path):
        db = sales_db()
        dump_database(db, tmp_path / "wh")
        loaded = load_database(tmp_path / "wh")
        assert loaded.table_names == db.table_names
        assert loaded.row_counts() == db.row_counts()
        assert list(loaded.table("dim").rows()) == list(db.table("dim").rows())

    def test_missing_catalog_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            load_database(tmp_path)
