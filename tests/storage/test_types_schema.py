"""Unit tests for column types and table schemas."""

import pytest

from repro.storage import (
    BOOLEAN,
    Column,
    FLOAT,
    ForeignKey,
    INTEGER,
    StorageError,
    TableSchema,
    TEXT,
    TypeCoercionError,
    UnknownColumnError,
)


class TestTypes:
    def test_integer_coercion(self):
        assert INTEGER.coerce(5) == 5
        assert INTEGER.coerce(5.0) == 5

    def test_integer_rejects_fraction_and_bool(self):
        with pytest.raises(TypeCoercionError):
            INTEGER.coerce(5.5)
        with pytest.raises(TypeCoercionError):
            INTEGER.coerce(True)
        with pytest.raises(TypeCoercionError):
            INTEGER.coerce("5")

    def test_float_coercion(self):
        assert FLOAT.coerce(5) == 5.0
        assert isinstance(FLOAT.coerce(5), float)
        with pytest.raises(TypeCoercionError):
            FLOAT.coerce("x")
        with pytest.raises(TypeCoercionError):
            FLOAT.coerce(False)

    def test_text_coercion(self):
        assert TEXT.coerce("abc") == "abc"
        with pytest.raises(TypeCoercionError):
            TEXT.coerce(5)

    def test_boolean_coercion(self):
        assert BOOLEAN.coerce(True) is True
        with pytest.raises(TypeCoercionError):
            BOOLEAN.coerce(1)

    def test_parse_from_csv_text(self):
        assert INTEGER.parse("42") == 42
        assert FLOAT.parse("1.5") == 1.5
        assert BOOLEAN.parse("True") is True
        assert BOOLEAN.parse("0") is False
        assert TEXT.parse("x") == "x"
        with pytest.raises(TypeCoercionError):
            BOOLEAN.parse("maybe")


def simple_schema(**kw):
    return TableSchema(
        name="t",
        columns=(
            Column("id", INTEGER),
            Column("name", TEXT),
            Column("score", FLOAT, nullable=True),
        ),
        primary_key=("id",),
        **kw,
    )


class TestColumn:
    def test_not_null_enforced(self):
        with pytest.raises(TypeCoercionError):
            Column("id", INTEGER).coerce(None)

    def test_nullable_passes_none(self):
        assert Column("score", FLOAT, nullable=True).coerce(None) is None

    def test_needs_name(self):
        with pytest.raises(StorageError):
            Column("", INTEGER)


class TestTableSchema:
    def test_column_lookup(self):
        s = simple_schema()
        assert s.column("name").type is TEXT
        with pytest.raises(UnknownColumnError):
            s.column("zzz")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(StorageError):
            TableSchema("t", (Column("a", TEXT), Column("a", TEXT)))

    def test_primary_key_must_exist(self):
        with pytest.raises(UnknownColumnError):
            TableSchema("t", (Column("a", TEXT),), primary_key=("zzz",))

    def test_primary_key_must_be_not_null(self):
        with pytest.raises(StorageError):
            TableSchema(
                "t",
                (Column("a", TEXT, nullable=True),),
                primary_key=("a",),
            )

    def test_coerce_row_fills_nullable_defaults(self):
        s = simple_schema()
        row = s.coerce_row({"id": 1, "name": "x"})
        assert row == {"id": 1, "name": "x", "score": None}

    def test_coerce_row_rejects_unknown_columns(self):
        with pytest.raises(UnknownColumnError):
            simple_schema().coerce_row({"id": 1, "name": "x", "zzz": 0})

    def test_coerce_row_rejects_missing_not_null(self):
        with pytest.raises(TypeCoercionError):
            simple_schema().coerce_row({"id": 1})

    def test_key_of(self):
        s = simple_schema()
        assert s.key_of({"id": 7, "name": "x", "score": None}) == (7,)

    def test_keyless_schema(self):
        s = TableSchema("t", (Column("a", TEXT),))
        assert s.key_of({"a": "x"}) is None

    def test_foreign_key_arity_checked(self):
        with pytest.raises(StorageError):
            ForeignKey(("a",), "p", ("x", "y"))

    def test_foreign_key_columns_must_exist(self):
        with pytest.raises(UnknownColumnError):
            TableSchema(
                "t",
                (Column("a", TEXT),),
                foreign_keys=(ForeignKey(("zzz",), "p", ("x",)),),
            )
