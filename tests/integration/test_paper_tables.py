"""Integration tests: every table of the paper, reproduced exactly.

Each test regenerates one table of the paper from the implemented system
and compares it value for value.  These are the ground truth behind the
benchmark harness in ``benchmarks/``.
"""

import pytest

from repro.core import (
    Interval,
    NOW,
    LevelGroup,
    Query,
    QueryEngine,
    TimeGroup,
    YEAR,
    ym,
)
from repro.workloads.case_study import (
    ORG,
    fact_instant,
    fact_snapshot_table,
    organization_table,
)


Q1 = Query(
    group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")),
    time_range=Interval(ym(2001, 1), ym(2002, 12)),
)
Q2 = Query(
    group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Department")),
    time_range=Interval(ym(2002, 1), ym(2003, 12)),
)


class TestDimensionTables:
    def test_table_1_organization_2001(self, case_study):
        assert organization_table(case_study, 2001) == {
            ("Sales", "Dpt.Jones"),
            ("Sales", "Dpt.Smith"),
            ("R&D", "Dpt.Brian"),
        }

    def test_table_2_organization_2002(self, case_study):
        assert organization_table(case_study, 2002) == {
            ("Sales", "Dpt.Jones"),
            ("R&D", "Dpt.Smith"),
            ("R&D", "Dpt.Brian"),
        }

    def test_table_7_organization_2003(self, case_study):
        assert organization_table(case_study, 2003) == {
            ("Sales", "Dpt.Bill"),
            ("Sales", "Dpt.Paul"),
            ("R&D", "Dpt.Smith"),
            ("R&D", "Dpt.Brian"),
        }


class TestTable3FactSnapshot:
    EXPECTED = [
        (2001, "Sales", "Dpt.Jones", 100.0),
        (2001, "Sales", "Dpt.Smith", 50.0),
        (2001, "R&D", "Dpt.Brian", 100.0),
        (2002, "Sales", "Dpt.Jones", 100.0),
        (2002, "R&D", "Dpt.Smith", 100.0),
        (2002, "R&D", "Dpt.Brian", 50.0),
        (2003, "Sales", "Dpt.Bill", 150.0),
        (2003, "Sales", "Dpt.Paul", 50.0),
        (2003, "R&D", "Dpt.Smith", 110.0),
        (2003, "R&D", "Dpt.Brian", 40.0),
    ]

    def test_table_3(self, case_study):
        assert fact_snapshot_table(case_study) == self.EXPECTED


class TestQ1ResultTables:
    def test_table_4_consistent_time(self, engine):
        d = engine.execute(Q1.with_mode("tcm")).as_dict()
        assert d == {
            ("2001", "Sales"): {"amount": 150.0},
            ("2001", "R&D"): {"amount": 100.0},
            ("2002", "Sales"): {"amount": 100.0},
            ("2002", "R&D"): {"amount": 150.0},
        }

    def test_table_5_mapped_on_2001_organization(self, engine):
        d = engine.execute(Q1.with_mode("V1")).as_dict()
        assert d == {
            ("2001", "Sales"): {"amount": 150.0},
            ("2001", "R&D"): {"amount": 100.0},
            ("2002", "Sales"): {"amount": 200.0},
            ("2002", "R&D"): {"amount": 50.0},
        }

    def test_table_6_mapped_on_2002_organization(self, engine):
        d = engine.execute(Q1.with_mode("V2")).as_dict()
        assert d == {
            ("2001", "Sales"): {"amount": 100.0},
            ("2001", "R&D"): {"amount": 150.0},
            ("2002", "Sales"): {"amount": 100.0},
            ("2002", "R&D"): {"amount": 150.0},
        }

    def test_q1_interpretations_disagree_as_the_paper_warns(self, engine):
        """§2.1: 'Amounts in the Sales Division seem to decrease, increase
        or be the same depending on the different interpretations.'"""
        tcm = engine.execute(Q1.with_mode("tcm")).as_dict()
        v1 = engine.execute(Q1.with_mode("V1")).as_dict()
        v2 = engine.execute(Q1.with_mode("V2")).as_dict()

        def trend(d):
            before = d[("2001", "Sales")]["amount"]
            after = d[("2002", "Sales")]["amount"]
            return (after > before) - (after < before)

        assert trend(tcm) == -1  # decreases 150 -> 100
        assert trend(v1) == 1    # increases 150 -> 200
        assert trend(v2) == 0    # stable 100 -> 100


class TestQ2ResultTables:
    def test_table_8_consistent_time(self, engine):
        d = engine.execute(Q2.with_mode("tcm")).as_dict()
        assert d == {
            ("2002", "Dpt.Jones"): {"amount": 100.0},
            ("2002", "Dpt.Smith"): {"amount": 100.0},
            ("2002", "Dpt.Brian"): {"amount": 50.0},
            ("2003", "Dpt.Bill"): {"amount": 150.0},
            ("2003", "Dpt.Paul"): {"amount": 50.0},
            ("2003", "Dpt.Smith"): {"amount": 110.0},
            ("2003", "Dpt.Brian"): {"amount": 40.0},
        }

    def test_table_9_mapped_on_2002_organization(self, engine):
        d = engine.execute(Q2.with_mode("V2")).as_dict()
        assert d == {
            ("2002", "Dpt.Jones"): {"amount": 100.0},
            ("2002", "Dpt.Smith"): {"amount": 100.0},
            ("2002", "Dpt.Brian"): {"amount": 50.0},
            ("2003", "Dpt.Jones"): {"amount": 200.0},
            ("2003", "Dpt.Smith"): {"amount": 110.0},
            ("2003", "Dpt.Brian"): {"amount": 40.0},
        }

    def test_table_9_confidences(self, engine):
        confs = engine.execute(Q2.with_mode("V2")).confidences()
        assert confs[("2003", "Dpt.Jones")]["amount"] == "em"
        assert confs[("2002", "Dpt.Jones")]["amount"] == "sd"

    def test_table_10_mapped_on_2003_organization(self, engine):
        d = engine.execute(Q2.with_mode("V3")).as_dict()
        assert d == {
            ("2002", "Dpt.Bill"): {"amount": 40.0},
            ("2002", "Dpt.Paul"): {"amount": 60.0},
            ("2002", "Dpt.Smith"): {"amount": 100.0},
            ("2002", "Dpt.Brian"): {"amount": 50.0},
            ("2003", "Dpt.Bill"): {"amount": 150.0},
            ("2003", "Dpt.Paul"): {"amount": 50.0},
            ("2003", "Dpt.Smith"): {"amount": 110.0},
            ("2003", "Dpt.Brian"): {"amount": 40.0},
        }

    def test_table_10_confidences(self, engine):
        """The 40/60 estimates are approximated (am); 2003 rows are sd."""
        confs = engine.execute(Q2.with_mode("V3")).confidences()
        assert confs[("2002", "Dpt.Bill")]["amount"] == "am"
        assert confs[("2002", "Dpt.Paul")]["amount"] == "am"
        assert confs[("2003", "Dpt.Bill")]["amount"] == "sd"

    def test_older_version_less_detailed_but_truthful(self, engine):
        """§2.1's observation: the 2002 presentation is less detailed (one
        Jones row instead of Bill+Paul) but exact; the 2003 presentation is
        more detailed but approximated."""
        v2 = engine.execute(Q2.with_mode("V2"))
        v3 = engine.execute(Q2.with_mode("V3"))
        assert len(v2) < len(v3)
        v2_confs = {c for row in v2.confidences().values() for c in row.values()}
        v3_confs = {c for row in v3.confidences().values() for c in row.values()}
        assert "am" not in v2_confs
        assert "am" in v3_confs


class TestExample1MemberVersions:
    def test_jones_paul_bill_versions(self, case_study):
        org = case_study.org
        jones = org.member("jones")
        assert jones.valid_time == Interval(ym(2001, 1), ym(2002, 12))
        for mvid in ("bill", "paul"):
            assert org.member(mvid).valid_time == Interval(ym(2003, 1), NOW)


class TestExample6Mappings:
    def test_split_mapping_functions(self, case_study):
        rels = {r.target: r for r in case_study.schema.mappings}
        bill = rels["bill"]
        assert bill.source == "jones"
        fwd = bill.measure_map("amount", direction="forward")
        rev = bill.measure_map("amount", direction="reverse")
        assert fwd.apply(100.0) == pytest.approx(40.0)
        assert fwd.confidence.symbol == "am"
        assert rev.apply(150.0) == 150.0
        assert rev.confidence.symbol == "em"


class TestTotalsPreservation:
    def test_exact_modes_preserve_yearly_totals(self, engine, case_study):
        """Identity/split-share mappings conserve the yearly grand total in
        every mode (0.4 + 0.6 = 1), a sanity invariant of the case study."""
        totals_by_mode = {}
        for label in ("tcm", "V1", "V2", "V3"):
            q = Query(group_by=(TimeGroup(YEAR),), mode=label)
            totals_by_mode[label] = engine.execute(q).as_dict()
        for year in ("2001", "2002", "2003"):
            values = {
                label: totals_by_mode[label][(year,)]["amount"]
                for label in totals_by_mode
            }
            assert len({round(v, 6) for v in values.values()}) == 1, (year, values)
