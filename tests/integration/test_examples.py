"""Smoke tests: every shipped example must run end to end.

Each example's ``main()`` is imported and executed with stdout captured;
a handful of landmark lines are checked so a silent regression in any
tier breaks the build.
"""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    spec = importlib.util.spec_from_file_location(name, EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    buffer = io.StringIO()
    saved = sys.modules.get(name)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
        with redirect_stdout(buffer):
            module.main()
    finally:
        if saved is None:
            sys.modules.pop(name, None)
        else:
            sys.modules[name] = saved
    return buffer.getvalue()


class TestQuickstart:
    def test_runs_and_reproduces_tables(self):
        out = run_example("quickstart")
        assert "Dpt.Jones [01/2001 ; 12/2002]" in out
        assert "V3:" in out
        assert "Q = 1.000" in out  # tcm quality
        # Table 5's signature row: 2002 Sales mapped on the 2001 org.
        assert "200 (sd)" in out


class TestRetailCatalog:
    def test_runs_and_maps_across_two_dimensions(self):
        out = run_example("retail_catalog")
        assert "V1: products=" in out
        assert "GameStation Family" in out
        # The 50/50 back-attribution is approximated:
        assert "975 (am)" in out
        # Region totals differ between tcm and V2 for 2021:
        assert "1140 (em)" in out


class TestHealthRegions:
    def test_runs_and_ranks_modes_per_user(self):
        out = run_example("health_regions")
        assert "historian" in out and "-> best mode tcm" in out
        assert "planner" in out
        assert "delta storage" in out.lower()
        assert "saved" in out


class TestBaselineShowdown:
    def test_prints_all_model_verdicts(self):
        out = run_example("baseline_showdown")
        assert "Type 1 (overwrite)" in out
        assert "retention = 0%" in out
        assert "comparability = 0%" in out
        assert "Sales fell" in out and "Sales rose" in out
        assert "held flat" in out


class TestContinuousLoad:
    def test_runs_incremental_lifecycle_with_audit_gate(self):
        out = run_example("continuous_load")
        assert "audit: clean (no findings)" in out
        assert "after the 2003 batch" in out
        assert "modes now: ['tcm', 'V1', 'V2', 'V3', 'V4']" in out
        assert "stranded-facts" in out
        assert "audit gate rejects" in out


class TestMvqlAnalysis:
    def test_runs_the_scripted_session(self):
        out = run_example("mvql_analysis")
        assert "mvql> SHOW MODES" in out
        assert "temporally consistent mode" in out
        assert "Q = 1.000" in out
        assert "2002Q" in out  # quarterly breakdown executed


class TestWarehousePipeline:
    def test_runs_full_architecture(self):
        out = run_example("warehouse_pipeline")
        assert "LoadReport(extracted=12, loaded=10, rejected=2, failed_sources=0)" in out
        assert "mv_fact" in out
        assert "matches the conceptual query engine" in out
        assert "Persisted and reloaded" in out


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "retail_catalog",
        "health_regions",
        "warehouse_pipeline",
        "mvql_analysis",
        "continuous_load",
        "baseline_showdown",
    ],
)
def test_examples_produce_substantial_output(name):
    out = run_example(name)
    assert len(out.splitlines()) > 20
