"""Tests for the ``python -m repro`` CLI."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    status = main(list(argv), out=out)
    return status, out.getvalue()


class TestDemo:
    def test_demo_prints_paper_tables(self):
        status, out = run_cli("demo")
        assert status == 0
        assert "Q1 (Tables 4-6)" in out
        assert "200 (sd)" in out     # Table 5's 2002 Sales
        assert "Q = 1.000" in out    # tcm quality


class TestMvqlCommand:
    def test_single_statement(self):
        status, out = run_cli("mvql", "SELECT amount BY year, org.Division")
        assert status == 0
        assert "Division" in out and "(sd)" in out

    def test_multiple_statements(self):
        status, out = run_cli("mvql", "SHOW MODES", "SHOW LEVELS org")
        assert status == 0
        assert "tcm" in out and "Department" in out

    def test_error_reported_with_nonzero_status(self):
        status, out = run_cli("mvql", "SELECT zzz BY year")
        assert status == 1
        assert "error:" in out

    def test_stdin_mode(self, monkeypatch):
        import sys

        monkeypatch.setattr(sys, "stdin", io.StringIO("SHOW MODES\n\n"))
        status, out = run_cli("mvql")
        assert status == 0
        assert "temporally consistent" in out


class TestOtherCommands:
    def test_audit_clean_case_study(self):
        status, out = run_cli("audit")
        assert status == 0
        assert "clean" in out

    def test_graph_prints_figure_2(self):
        status, out = run_cli("graph")
        assert status == 0
        assert "Dpt.Jones [01/2001 ; 12/2002]" in out

    def test_modes_lists_tmp(self):
        status, out = run_cli("modes")
        assert status == 0
        assert out.startswith("tcm:")
        assert "V3:" in out


class TestParser:
    def test_command_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_module_invocation(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "modes"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "tcm:" in proc.stdout


class TestIntegrityCommand:
    def test_case_study_passes(self):
        status, out = run_cli("integrity")
        assert status == 0
        assert "integrity: OK" in out


class TestRecoverCommand:
    def make_wal(self, tmp_path):
        from repro.core import Interval, Measure, MemberVersion, SUM
        from repro.core import TemporalDimension, TemporalMultidimensionalSchema
        from repro.core import TemporalRelationship
        from repro.robustness import TransactionManager

        d = TemporalDimension("Org")
        d.add_member(MemberVersion("idP1", "P1", Interval(0), level="Division"))
        d.add_member(MemberVersion("idV", "V", Interval(0), level="Department"))
        d.add_relationship(TemporalRelationship("idV", "idP1", Interval(0)))
        schema = TemporalMultidimensionalSchema([d], [Measure("m", SUM)])
        txm = TransactionManager(schema, wal=tmp_path / "demo.wal")
        with txm.transaction():
            txm.evolution.create_member("Org", "idW", "W", 5, parents=["idP1"])
        # a crash leaves an uncommitted transaction in the journal
        txm.begin()
        txm.evolution.create_member("Org", "idLost", "Lost", 6, parents=["idP1"])
        return tmp_path / "demo.wal"

    def test_recover_replays_committed_work(self, tmp_path):
        wal = self.make_wal(tmp_path)
        status, out = run_cli("recover", str(wal))
        assert status == 0
        assert "transactions replayed: 1" in out
        assert "discarded" in out
        assert "integrity: OK" in out

    def test_recover_reports_failure_on_empty_journal(self, tmp_path):
        empty = tmp_path / "empty.wal"
        empty.write_text("")
        status, out = run_cli("recover", str(empty))
        assert status == 2
        assert "recovery failed" in out

    def test_recover_reports_corruption_without_traceback(self, tmp_path):
        wal = self.make_wal(tmp_path)
        lines = wal.read_text().splitlines()
        lines[2] = "GARBAGE-NOT-JSON"
        wal.write_text("\n".join(lines) + "\n")
        status, out = run_cli("recover", str(wal))
        assert status == 2
        assert "recovery failed" in out and "not valid JSON" in out


class TestSnapshotCommand:
    def test_snapshot_reports_version_and_open_count(self):
        status, out = run_cli("snapshot")
        assert status == 0
        assert "snapshot version: 0" in out     # in-memory: no journal clock
        assert "open snapshots: 1" in out
        assert "last checkpoint LSN: none" in out

    def test_snapshot_with_journal_reports_checkpoint_lsn(self, tmp_path):
        wal = tmp_path / "snap.wal"
        status, out = run_cli("snapshot", "--wal", str(wal))
        assert status == 0
        assert "snapshot version: 1" in out     # the initial checkpoint LSN
        assert "last checkpoint LSN: 1" in out
        assert "[snapshot v1]" in out           # the olap caption line
