"""Tests for the ``python -m repro`` CLI."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    status = main(list(argv), out=out)
    return status, out.getvalue()


class TestDemo:
    def test_demo_prints_paper_tables(self):
        status, out = run_cli("demo")
        assert status == 0
        assert "Q1 (Tables 4-6)" in out
        assert "200 (sd)" in out     # Table 5's 2002 Sales
        assert "Q = 1.000" in out    # tcm quality


class TestMvqlCommand:
    def test_single_statement(self):
        status, out = run_cli("mvql", "SELECT amount BY year, org.Division")
        assert status == 0
        assert "Division" in out and "(sd)" in out

    def test_multiple_statements(self):
        status, out = run_cli("mvql", "SHOW MODES", "SHOW LEVELS org")
        assert status == 0
        assert "tcm" in out and "Department" in out

    def test_error_reported_with_nonzero_status(self):
        status, out = run_cli("mvql", "SELECT zzz BY year")
        assert status == 1
        assert "error:" in out

    def test_stdin_mode(self, monkeypatch):
        import sys

        monkeypatch.setattr(sys, "stdin", io.StringIO("SHOW MODES\n\n"))
        status, out = run_cli("mvql")
        assert status == 0
        assert "temporally consistent" in out


class TestOtherCommands:
    def test_audit_clean_case_study(self):
        status, out = run_cli("audit")
        assert status == 0
        assert "clean" in out

    def test_graph_prints_figure_2(self):
        status, out = run_cli("graph")
        assert status == 0
        assert "Dpt.Jones [01/2001 ; 12/2002]" in out

    def test_modes_lists_tmp(self):
        status, out = run_cli("modes")
        assert status == 0
        assert out.startswith("tcm:")
        assert "V3:" in out


class TestParser:
    def test_command_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_module_invocation(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "modes"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "tcm:" in proc.stdout


class TestIntegrityCommand:
    def test_case_study_passes(self):
        status, out = run_cli("integrity")
        assert status == 0
        assert "integrity: OK" in out


class TestRecoverCommand:
    def make_wal(self, tmp_path):
        from repro.core import Interval, Measure, MemberVersion, SUM
        from repro.core import TemporalDimension, TemporalMultidimensionalSchema
        from repro.core import TemporalRelationship
        from repro.robustness import TransactionManager

        d = TemporalDimension("Org")
        d.add_member(MemberVersion("idP1", "P1", Interval(0), level="Division"))
        d.add_member(MemberVersion("idV", "V", Interval(0), level="Department"))
        d.add_relationship(TemporalRelationship("idV", "idP1", Interval(0)))
        schema = TemporalMultidimensionalSchema([d], [Measure("m", SUM)])
        txm = TransactionManager(schema, wal=tmp_path / "demo.wal")
        with txm.transaction():
            txm.evolution.create_member("Org", "idW", "W", 5, parents=["idP1"])
        # a crash leaves an uncommitted transaction in the journal
        txm.begin()
        txm.evolution.create_member("Org", "idLost", "Lost", 6, parents=["idP1"])
        return tmp_path / "demo.wal"

    def test_recover_replays_committed_work(self, tmp_path):
        wal = self.make_wal(tmp_path)
        status, out = run_cli("recover", str(wal))
        assert status == 0
        assert "transactions replayed: 1" in out
        assert "discarded" in out
        assert "integrity: OK" in out

    def test_recover_reports_failure_on_empty_journal(self, tmp_path):
        empty = tmp_path / "empty.wal"
        empty.write_text("")
        status, out = run_cli("recover", str(empty))
        assert status == 2
        assert "recovery failed" in out

    def test_recover_reports_corruption_without_traceback(self, tmp_path):
        wal = self.make_wal(tmp_path)
        lines = wal.read_text().splitlines()
        lines[2] = "GARBAGE-NOT-JSON"
        wal.write_text("\n".join(lines) + "\n")
        status, out = run_cli("recover", str(wal))
        assert status == 2
        assert "recovery failed" in out and "not valid JSON" in out

    def make_warehouse_wal(self, tmp_path):
        from repro.core import Interval, Measure, MemberVersion, SUM
        from repro.core import TemporalDimension, TemporalMultidimensionalSchema
        from repro.robustness import TransactionManager
        from repro.storage import Column, Database, INTEGER, TEXT

        d = TemporalDimension("Org")
        d.add_member(MemberVersion("idP1", "P1", Interval(0)))
        schema = TemporalMultidimensionalSchema([d], [Measure("m", SUM)])
        db = Database("wh")
        db.create_table(
            "dept",
            [Column("id", INTEGER), Column("name", TEXT)],
            primary_key=["id"],
        )
        txm = TransactionManager(schema, wal=tmp_path / "wh.wal", database=db)
        with txm.transaction():
            txm.database.insert("dept", {"id": 1, "name": "sales"})
            txm.database.insert("dept", {"id": 2, "name": "hr"})
        # a crash leaves an uncommitted row write in the journal
        txm.begin()
        txm.database.insert("dept", {"id": 3, "name": "lost"})
        return tmp_path / "wh.wal"

    def test_recover_warehouse_replays_committed_rows(self, tmp_path):
        wal = self.make_warehouse_wal(tmp_path)
        status, out = run_cli("recover", str(wal), "--warehouse")
        assert status == 0
        assert "transactions replayed: 1" in out
        assert "rows inserted: 2" in out
        assert "table dept: 2 rows" in out

    def test_recover_warehouse_reports_failure_on_empty_journal(self, tmp_path):
        empty = tmp_path / "empty.wal"
        empty.write_text("")
        status, out = run_cli("recover", str(empty), "--warehouse")
        assert status == 2
        assert "recovery failed" in out


class TestSnapshotCommand:
    def test_snapshot_reports_version_and_open_count(self):
        status, out = run_cli("snapshot")
        assert status == 0
        assert "snapshot version: 0" in out     # in-memory: no journal clock
        assert "open snapshots: 1" in out
        assert "last checkpoint LSN: none" in out

    def test_snapshot_with_journal_reports_checkpoint_lsn(self, tmp_path):
        wal = tmp_path / "snap.wal"
        status, out = run_cli("snapshot", "--wal", str(wal))
        assert status == 0
        assert "snapshot version: 1" in out     # the initial checkpoint LSN
        assert "last checkpoint LSN: 1" in out
        assert "[snapshot v1]" in out           # the olap caption line


class TestStatsCommand:
    def test_prometheus_dump(self):
        status, out = run_cli("stats")
        assert status == 0
        assert "# TYPE query_rows_scanned counter" in out
        assert 'query_rows_scanned{mode="tcm"}' in out
        assert 'mvql_statements{kind="SelectStatement"} 1' in out

    def test_json_dump(self):
        import json

        status, out = run_cli("stats", "--json")
        assert status == 0
        snapshot = json.loads(out)
        assert snapshot["counters"]['query.executed{mode="tcm"}'] >= 1


class TestProfileCommand:
    STATEMENT = "SELECT amount BY year, org.Division DURING 2001..2002"

    def test_report_sections(self):
        status, out = run_cli("profile", self.STATEMENT)
        assert status == 0
        assert "QUERY PROFILE" in out
        assert "collect_contributions" in out      # per-phase timings
        assert "shard 0" in out                    # per-shard row counts
        assert "per structure version:" in out     # per-version cell counts
        for mode in ("tcm", "V1", "V2", "V3"):
            assert mode in out

    def test_single_shard_skips_shard_section(self):
        status, out = run_cli("profile", self.STATEMENT, "--shards", "1")
        assert status == 0
        assert "shard 0" not in out

    def test_non_select_rejected(self):
        status, out = run_cli("profile", "SHOW MODES")
        assert status == 1
        assert "error:" in out and "SELECT" in out

    def test_compile_error_rejected(self):
        status, out = run_cli("profile", "SELECT zzz BY year")
        assert status == 1
        assert "error:" in out


class TestTraceOut:
    def load_spans(self, path):
        from repro.observability import read_jsonl

        return read_jsonl(path)

    def test_mvql_trace_round_trip(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        status, out = run_cli(
            "mvql",
            "SELECT amount BY year, org.Division",
            "--trace-out",
            str(trace),
        )
        assert status == 0
        assert f"wrote" in out and str(trace) in out
        spans = self.load_spans(trace)
        by_id = {s["span_id"]: s for s in spans}
        statements = [s for s in spans if s["name"] == "mvql.statement"]
        assert len(statements) == 1
        root = statements[0]
        assert root["parent_id"] is None
        # the engine phases nest under query.execute under the statement
        execute = next(s for s in spans if s["name"] == "query.execute")
        assert execute["parent_id"] == root["span_id"]
        phases = [s for s in spans if s["parent_id"] == execute["span_id"]]
        assert [s["name"] for s in phases] == [
            "query.resolve",
            "query.collect_contributions",
            "query.finalize",
        ]
        for span in spans:
            assert span["duration_us"] >= 0
            assert span["start_us"] >= 0
            if span["parent_id"] is not None:
                assert span["parent_id"] in by_id

    def test_profile_trace_round_trip(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        status, out = run_cli(
            "profile",
            "SELECT amount BY year, org.Division",
            "--trace-out",
            str(trace),
        )
        assert status == 0
        spans = self.load_spans(trace)
        names = {s["name"] for s in spans}
        assert "query.execute" in names
        assert "shard.execute" in names
        root = next(s for s in spans if s["name"] == "shard.execute")
        collects = [s for s in spans if s["name"] == "shard.collect"]
        assert collects
        assert all(s["parent_id"] == root["span_id"] for s in collects)


class TestStatsFormat:
    def test_format_json_matches_the_json_alias(self):
        import json

        status, out = run_cli("stats", "--format", "json")
        assert status == 0
        snapshot = json.loads(out)
        assert snapshot["counters"]['query.executed{mode="tcm"}'] >= 1

    def test_format_prometheus_round_trips_label_values(self):
        status, out = run_cli("stats", "--format", "prometheus")
        assert status == 0
        assert 'query_executed{mode="tcm"}' in out
        # Every sample line is parseable: NAME{...} VALUE or NAME VALUE.
        import re

        sample = re.compile(
            r"[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? [0-9.+eE-]+(\.[0-9]+)?\Z"
        )
        for line in out.splitlines():
            if not line or line.startswith("#"):
                continue
            assert sample.match(line), line


class TestLineageCommand:
    STATEMENT = "SELECT amount BY year, org.Division IN MODE V1 DURING 2001..2002"

    def test_full_lineage_dump(self):
        status, out = run_cli("lineage", self.STATEMENT)
        assert status == 0
        assert "cell (2002, Sales)" in out
        assert "⊗cf" in out

    def test_single_cell_explanation(self):
        status, out = run_cli(
            "lineage", self.STATEMENT, "--cell", "2002,Sales"
        )
        assert status == 0
        assert "amount = 200 (sd)" in out
        assert "jones" in out and "smith" in out
        assert "sd ⊗cf sd -> sd" in out

    def test_unknown_cell_reports_error(self):
        status, out = run_cli(
            "lineage", self.STATEMENT, "--cell", "1999,Nowhere"
        )
        assert status == 1
        assert "error:" in out and "no lineage recorded" in out

    def test_compile_error_rejected(self):
        status, out = run_cli("lineage", "SELECT zzz BY year")
        assert status == 1
        assert "error:" in out


class TestDoctorCommand:
    def test_clean_run_passes(self):
        status, out = run_cli("doctor")
        assert status == 0
        assert "doctor: PASS" in out
        assert "integrity: OK" in out

    def test_firing_rule_exits_nonzero(self, tmp_path):
        import json

        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps([
            {"name": "too many queries", "metric": "query.executed",
             "op": ">", "threshold": 0},
        ]))
        status, out = run_cli("doctor", "--rules", str(rules))
        assert status == 1
        assert "doctor: WARN" in out
        assert "too many queries" in out

    def test_fail_severity_rule_exits_two(self, tmp_path):
        import json

        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps([
            {"name": "any query is fatal", "metric": "query.executed",
             "op": ">", "threshold": 0, "severity": "fail"},
        ]))
        status, out = run_cli("doctor", "--rules", str(rules))
        assert status == 2
        assert "doctor: FAIL" in out

    def test_invalid_rules_file_exits_two(self, tmp_path):
        rules = tmp_path / "rules.json"
        rules.write_text("{not json")
        status, out = run_cli("doctor", "--rules", str(rules))
        assert status == 2
        assert "error:" in out

    def test_wal_stats_reported(self, tmp_path):
        from repro.robustness import TransactionManager
        from repro.workloads.case_study import build_case_study

        wal = tmp_path / "doctor.wal"
        txm = TransactionManager(build_case_study().schema, wal=str(wal))
        with txm.transaction():
            pass
        status, out = run_cli("doctor", "--wal", str(wal))
        assert status == 0
        assert "wal:" in out and "open_transactions: 0" in out


class TestTailCommand:
    def make_wal(self, tmp_path):
        from repro.core import ym
        from repro.robustness import TransactionManager
        from repro.workloads.case_study import build_case_study

        wal = tmp_path / "tail.wal"
        txm = TransactionManager(build_case_study().schema, wal=wal)
        for n in range(2):
            with txm.transaction():
                txm.editor.insert(
                    "org", f"idT{n}", f"T{n}", ym(2003, 6),
                    level="Department", parents=["sales"],
                )
        # a torn transaction must stay invisible to the tailer
        txm.begin()
        txm.editor.insert(
            "org", "idLost", "Lost", ym(2003, 7),
            level="Department", parents=["sales"],
        )
        return wal

    def test_tail_prints_committed_events_only(self, tmp_path):
        wal = self.make_wal(tmp_path)
        status, out = run_cli("tail", str(wal))
        assert status == 0
        assert "Insert" in out and "idT0" in out and "idT1" in out
        assert "idLost" not in out
        assert "events (cursor lsn" in out

    def test_from_lsn_resumes_without_replay(self, tmp_path):
        wal = self.make_wal(tmp_path)
        status, out = run_cli("tail", str(wal))
        cursor = int(out.rsplit("cursor lsn ", 1)[1].rstrip(")\n"))
        status, resumed = run_cli("tail", str(wal), "--from-lsn", str(cursor))
        assert status == 0
        assert resumed.startswith("0 events")

    def test_kind_filter(self, tmp_path):
        wal = self.make_wal(tmp_path)
        status, out = run_cli("tail", str(wal), "--kinds", "fact")
        assert status == 0
        assert "Insert" not in out
        status, out = run_cli("tail", str(wal), "--kinds", "bogus")
        assert status == 2
        assert "error:" in out and "bogus" in out

    def test_missing_journal_fails(self, tmp_path):
        status, out = run_cli("tail", str(tmp_path / "nope.wal"))
        assert status == 2
        assert "error:" in out and "no journal" in out


class TestAuditLogCommand:
    def write_trail(self, tmp_path):
        from repro.observability import AuditEvent, AuditLog

        trail = tmp_path / "audit.jsonl"
        log = AuditLog(trail)
        log.record(AuditEvent("auth", tenant="acme", session="acme-1"))
        log.record(AuditEvent("evolve", tenant="ops", session="ops-1", lsn=7))
        log.record(
            AuditEvent("rejected", tenant="acme", session="acme-1", ok=False)
        )
        return trail

    def test_reads_back_the_trail(self, tmp_path):
        trail = self.write_trail(tmp_path)
        status, out = run_cli("audit", "--log", str(trail))
        assert status == 0
        assert "3 audit entries" in out
        assert "tenant=acme" in out and "lsn=7" in out and "FAILED" in out

    def test_tenant_filter(self, tmp_path):
        trail = self.write_trail(tmp_path)
        status, out = run_cli("audit", "--log", str(trail), "--tenant", "ops")
        assert status == 0
        assert "1 audit entries" in out and "tenant=ops" in out

    def test_missing_trail_fails(self, tmp_path):
        status, out = run_cli("audit", "--log", str(tmp_path / "nope.jsonl"))
        assert status == 2
        assert "error:" in out

    def test_corrupt_trail_fails(self, tmp_path):
        trail = self.write_trail(tmp_path)
        lines = trail.read_text().splitlines()
        lines[0] = "NOT-JSON"
        trail.write_text("\n".join(lines) + "\n")
        status, out = run_cli("audit", "--log", str(trail))
        assert status == 2
        assert "error:" in out

    def test_doctor_cross_checks_the_trail(self, tmp_path):
        from repro.observability import AuditLog
        from repro.robustness import TransactionManager
        from repro.workloads.case_study import build_case_study

        wal = tmp_path / "doctor.wal"
        txm = TransactionManager(build_case_study().schema, wal=wal)
        with txm.transaction():
            pass
        from repro.observability import AuditEvent

        trail = tmp_path / "audit.jsonl"
        AuditLog(trail).record(
            AuditEvent("evolve", tenant="ops", session="s", lsn=999)
        )
        status, out = run_cli(
            "doctor", "--wal", str(wal), "--audit-log", str(trail)
        )
        assert status == 1
        assert "LSN divergence" in out


class TestTraceFormats:
    STATEMENT = "SELECT amount BY year, org.Division"

    def test_mvql_otlp_round_trip(self, tmp_path):
        from repro.observability import read_otlp_json

        trace = tmp_path / "trace.otlp.json"
        status, out = run_cli(
            "mvql", self.STATEMENT,
            "--trace-out", str(trace), "--trace-format", "otlp",
        )
        assert status == 0
        assert "OTLP" in out
        spans = read_otlp_json(trace)
        ids = {s["spanId"] for s in spans}
        root = next(s for s in spans if s["name"] == "mvql.statement")
        assert root["parentSpanId"] == ""
        for span in spans:
            if span["parentSpanId"]:
                assert span["parentSpanId"] in ids
            assert span["traceId"] == root["traceId"]

    def test_profile_otlp_round_trip(self, tmp_path):
        from repro.observability import read_otlp_json

        trace = tmp_path / "trace.otlp.json"
        status, out = run_cli(
            "profile", self.STATEMENT,
            "--trace-out", str(trace), "--trace-format", "otlp",
        )
        assert status == 0
        spans = read_otlp_json(trace)
        names = {s["name"] for s in spans}
        assert "query.execute" in names and "shard.execute" in names

    def test_trace_sample_zero_writes_no_spans(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        status, out = run_cli(
            "mvql", self.STATEMENT,
            "--trace-out", str(trace), "--trace-sample", "0.0",
        )
        assert status == 0
        from repro.observability import read_jsonl

        assert read_jsonl(trace) == []


class TestUsageCommand:
    def test_text_report_covers_both_tenants(self):
        status, out = run_cli("usage")
        assert status == 0
        assert "per-tenant usage" in out
        assert "tenant acme:" in out and "tenant ops:" in out
        assert "rows_scanned=" in out and "wire_bytes=" in out
        assert "top 5 statements by rows_scanned:" in out

    def test_tenant_filter(self):
        status, out = run_cli("usage", "--tenant", "acme")
        assert status == 0
        assert "tenant acme:" in out
        assert "tenant ops:" not in out

    def test_json_report(self):
        import json

        status, out = run_cli("usage", "--format", "json", "--top", "2")
        assert status == 0
        report = json.loads(out)
        assert set(report["totals"]) == {"acme", "ops"}
        assert report["totals"]["acme"]["rows_scanned"] > 0
        assert len(report["records"]) <= 2


class TestDebugBundleCommand:
    def test_bundle_round_trips(self, tmp_path):
        from repro.observability import read_manifest, read_otlp_json

        target = tmp_path / "bundle"
        status, out = run_cli("debug-bundle", "--out", str(target))
        assert status == 0
        assert f"debug bundle: {target}" in out
        manifest = read_manifest(target)
        assert manifest["files"]["spans.otlp.json"]["entries"] > 0
        spans = read_otlp_json(target / "spans.otlp.json")
        assert {s["name"] for s in spans} >= {"query.execute"}
        assert "sha256" in out


class TestDoctorUsageSection:
    def test_usage_section_reports_real_deltas(self):
        status, out = run_cli("doctor")
        assert status == 0
        assert "usage:" in out
        assert "tenant demo:" in out and "rows_scanned=" in out

    def test_fail_dumps_a_bundle(self, tmp_path):
        import json

        from repro.observability import read_manifest

        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps([
            {"name": "any query is fatal", "metric": "query.executed",
             "op": ">", "threshold": 0, "severity": "fail"},
        ]))
        target = tmp_path / "postmortem"
        status, out = run_cli(
            "doctor", "--rules", str(rules), "--bundle-dir", str(target)
        )
        assert status == 2
        assert "flight recorder" in out
        assert read_manifest(target)["files"]["spans.otlp.json"]["entries"] > 0


class TestProfileCacheFlag:
    STATEMENT = "SELECT amount BY year, org.Division DURING 2001..2002"

    def test_cache_line_in_report(self):
        status, out = run_cli("profile", self.STATEMENT, "--cache")
        assert status == 0
        assert "cache: hits=0 misses=1 bypassed=0" in out

    def test_no_cache_line_without_flag(self):
        status, out = run_cli("profile", self.STATEMENT)
        assert status == 0
        assert "cache:" not in out
