"""Seeded stress tests: the full evolution-operation mix, end to end.

Every seed builds a workload exercising *all six* simple operations
(splits, merges, reclassifications, transformations, creations,
deletions), infers the MultiVersion fact table and checks the global
invariants that must survive any history:

* the schema validates (Definitions 2, 3, 5, 7);
* the tcm slice is the consistent fact table with ``sd`` everywhere;
* structure versions tile history without overlap;
* every consistent fact is either presented in a mode or explicitly
  reported unmapped — never silently dropped;
* the audit's error findings agree with the inference's unmapped set.
"""

import pytest

from repro.core import audit_schema
from repro.workloads.generator import WorkloadConfig, generate_workload

SEEDS = [1, 7, 23, 99, 1234]

FULL_MIX = dict(
    n_years=4,
    n_departments=10,
    splits_per_year=1,
    merges_per_year=1,
    reclassifications_per_year=1,
    transforms_per_year=1,
    creations_per_year=1,
    deletions_per_year=1,
)


@pytest.fixture(params=SEEDS, scope="module")
def workload(request):
    return generate_workload(WorkloadConfig(seed=request.param, **FULL_MIX))


class TestFullMixInvariants:
    def test_schema_validates(self, workload):
        workload.schema.validate()

    def test_all_operation_kinds_occurred(self, workload):
        kinds = {kind for _, kind, _ in workload.events}
        assert {"split", "merge", "reclassify", "transform", "create", "delete"} <= kinds

    def test_tcm_slice_is_source_data(self, workload):
        mvft = workload.schema.multiversion_facts()
        rows = mvft.slice("tcm")
        assert len(rows) == len(workload.schema.facts)
        assert all(r.confidence("amount").symbol == "sd" for r in rows)

    def test_structure_versions_tile_history(self, workload):
        versions = workload.schema.structure_versions()
        assert versions, "a multi-year workload must have versions"
        for a, b in zip(versions, versions[1:]):
            assert a.valid_time.meets(b.valid_time)

    def test_every_fact_presented_or_reported_unmapped(self, workload):
        mvft = workload.schema.multiversion_facts()
        facts = list(workload.schema.facts)
        unmapped = {
            (id(u.fact), u.mode) for u in mvft.unmapped
        }
        for mode in mvft.modes.version_modes:
            presented_sources = set()
            for row in mvft.slice(mode.label):
                presented_sources.update(p for p in row.provenance)
            # Count: every fact either contributed somewhere in this mode
            # or appears in the unmapped set for this mode.
            for fact in facts:
                is_unmapped = (id(fact), mode.label) in unmapped
                # A fact contributes iff its own member routed; verify via
                # the route search the builder used.
                source = fact.coordinate("org")
                routes = workload.schema.mappings.routes(
                    source, mode.version.leaf_ids("org"), measures=["amount"]
                )
                assert bool(routes) != is_unmapped, (
                    fact,
                    mode.label,
                )

    def test_audit_errors_match_unmapped_facts(self, workload):
        mvft = workload.schema.multiversion_facts()
        report = audit_schema(workload.schema)
        stranded = report.by_code("stranded-facts")
        total_stranded = sum(
            int(f.message.split()[0]) for f in stranded
        )
        assert total_stranded == len(mvft.unmapped)

    def test_unknown_values_only_from_unknown_mappings(self, workload):
        """Any None value in a version mode must be tagged uk."""
        mvft = workload.schema.multiversion_facts()
        for mode in mvft.modes.labels:
            for row in mvft.slice(mode):
                if row.value("amount") is None:
                    assert row.confidence("amount").symbol == "uk"
