"""docs/metrics.md must catalog every metric the code can emit.

Extracts every metric-name literal from ``src/repro`` (the first string
argument of a ``counter(`` / ``gauge(`` / ``histogram(`` call, including
multi-line calls) and asserts each appears in the catalog — so adding an
instrument without documenting it fails the build.
"""

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]

INSTRUMENT = re.compile(r'(?:counter|gauge|histogram)\(\s*"([a-z_.]+)"')


def emitted_metric_names() -> set[str]:
    names: set[str] = set()
    for path in (ROOT / "src" / "repro").rglob("*.py"):
        names.update(INSTRUMENT.findall(path.read_text()))
    return names


class TestMetricsCatalog:
    def test_every_emitted_metric_is_documented(self):
        catalog = (ROOT / "docs" / "metrics.md").read_text()
        missing = {
            name for name in emitted_metric_names()
            if f"`{name}`" not in catalog
        }
        assert not missing, f"undocumented metrics: {sorted(missing)}"

    def test_the_extraction_actually_finds_the_surface(self):
        # Guard the guard: if the regex rots, this floor trips first.
        names = emitted_metric_names()
        assert len(names) >= 40
        assert {
            "query.rows_scanned",
            "query.cache_hits",
            "server.statement_seconds",
            "wal.appends",
        } <= names

    def test_documented_names_are_not_stale(self):
        # Every dotted name in a catalog table row must still be emitted
        # somewhere (prose references to families like ``export.push``
        # are fine — only table rows are checked).
        catalog = (ROOT / "docs" / "metrics.md").read_text()
        emitted = emitted_metric_names()
        rows = re.findall(r"^\| `([a-z_.]+)` \|", catalog, re.MULTILINE)
        stale = [name for name in rows if name not in emitted]
        assert not stale, f"catalog rows without emitters: {stale}"
