"""The full case study through the §4.2 *logical* adaptation.

The paper's prototype cannot move a member without re-versioning it (FK
hierarchies), so Smith's 2002 reclassification becomes Exclude + Insert +
identity-sd Associate.  The Q1/Q2 result tables must come out *identical*
to the conceptual model's — the adaptation changes bookkeeping, not
semantics.
"""

import pytest

from repro.core import (
    EvolutionManager,
    Interval,
    LevelGroup,
    Measure,
    MemberVersion,
    NOW,
    Query,
    QueryEngine,
    SchemaEditor,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
    TimeGroup,
    YEAR,
    ym,
)
from repro.logical import logical_reclassify
from repro.workloads.case_study import ORG, fact_instant


@pytest.fixture(scope="module")
def logical_engine():
    """The case study where Smith's move uses the §4.2 rewrite."""
    org = TemporalDimension(ORG, "Organization")
    start = ym(2001, 1)
    org.add_member(MemberVersion("sales", "Sales", Interval(start, NOW), level="Division"))
    org.add_member(MemberVersion("rd", "R&D", Interval(start, NOW), level="Division"))
    for mvid, name in (
        ("jones", "Dpt.Jones"), ("smith", "Dpt.Smith"), ("brian", "Dpt.Brian")
    ):
        org.add_member(
            MemberVersion(mvid, name, Interval(start, NOW), level="Department")
        )
    for mvid, parent in (("jones", "sales"), ("smith", "sales"), ("brian", "rd")):
        org.add_relationship(
            TemporalRelationship(mvid, parent, Interval(start, NOW))
        )
    schema = TemporalMultidimensionalSchema([org], [Measure("amount", SUM)])

    editor = SchemaEditor(schema)
    created = logical_reclassify(
        editor, ORG, "smith", ym(2002, 1),
        old_parents=["sales"], new_parents=["rd"],
    )
    (smith_old, smith_new), = created  # only Smith re-versioned (leaf)

    manager = EvolutionManager(schema)
    manager.split_member(
        ORG, "jones", {"bill": ("Dpt.Bill", 0.4), "paul": ("Dpt.Paul", 0.6)},
        ym(2003, 1),
    )

    table3 = [
        (2001, "jones", 100.0), (2001, smith_old, 50.0), (2001, "brian", 100.0),
        (2002, "jones", 100.0), (2002, smith_new, 100.0), (2002, "brian", 50.0),
        (2003, "bill", 150.0), (2003, "paul", 50.0),
        (2003, smith_new, 110.0), (2003, "brian", 40.0),
    ]
    for year, dept, amount in table3:
        schema.add_fact({ORG: dept}, fact_instant(year), amount=amount)
    schema.validate()
    return QueryEngine(schema.multiversion_facts())


Q1 = Query(
    group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")),
    time_range=Interval(ym(2001, 1), ym(2002, 12)),
)
Q2 = Query(
    group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Department")),
    time_range=Interval(ym(2002, 1), ym(2003, 12)),
)


class TestLogicalEncodingStructure:
    def test_smith_has_two_member_versions(self, logical_engine):
        schema = logical_engine._schema
        versions = schema.dimension(ORG).versions_of("Dpt.Smith")
        assert len(versions) == 2
        assert versions[0].valid_time == Interval(ym(2001, 1), ym(2001, 12))
        assert versions[1].valid_time == Interval(ym(2002, 1), NOW)

    def test_three_structure_versions_still_inferred(self, logical_engine):
        schema = logical_engine._schema
        assert [v.vsid for v in schema.structure_versions()] == ["V1", "V2", "V3"]


class TestResultEquivalence:
    def test_q1_tables_4_5_6(self, logical_engine, engine):
        for mode in ("tcm", "V1", "V2"):
            logical = logical_engine.execute(Q1.with_mode(mode)).as_dict()
            conceptual = engine.execute(Q1.with_mode(mode)).as_dict()
            assert logical == conceptual, mode

    def test_q2_tables_8_9_10(self, logical_engine, engine):
        for mode in ("tcm", "V2", "V3"):
            logical = logical_engine.execute(Q2.with_mode(mode)).as_dict()
            conceptual = engine.execute(Q2.with_mode(mode)).as_dict()
            assert logical == conceptual, mode

    def test_confidences_stay_sd_across_the_rewrite(self, logical_engine):
        """Reclassified data is still source data: the identity-sd link
        keeps the mapped cells at sd in version modes (Table 5 semantics)."""
        confs = logical_engine.execute(Q1.with_mode("V1")).confidences()
        assert confs[("2002", "Sales")]["amount"] == "sd"
