"""Overlapping member versions (Definition 1's note).

"A Member may have several valid Member Versions for a given time (when
valid times overlap).  Therefore, there is no need of accurate history
partitions (as was needed in Type Two Slowly Changing Dimensions of
Kimball)."

These tests model a department that runs under two concurrent versions
for a transition quarter (the old team winding down while the new one
ramps up) and verify the whole pipeline copes: snapshots, structure
versions, fact recording on both versions, queries and quality.
"""

import pytest

from repro.core import (
    Interval,
    LevelGroup,
    Measure,
    MemberVersion,
    NOW,
    Query,
    QueryEngine,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
    TimeGroup,
    YEAR,
    ym,
)


@pytest.fixture(scope="module")
def overlap_schema():
    org = TemporalDimension("org")
    start = ym(2001, 1)
    org.add_member(MemberVersion("div", "Division", Interval(start, NOW), level="Division"))
    # Old version runs through 06/2002; new version starts 04/2002:
    # three months of overlap.
    org.add_member(
        MemberVersion(
            "ops_v1", "Dpt.Ops", Interval(start, ym(2002, 6)), level="Department"
        )
    )
    org.add_member(
        MemberVersion("ops_v2", "Dpt.Ops", Interval(ym(2002, 4), NOW), level="Department")
    )
    org.add_relationship(
        TemporalRelationship("ops_v1", "div", Interval(start, ym(2002, 6)))
    )
    org.add_relationship(
        TemporalRelationship("ops_v2", "div", Interval(ym(2002, 4), NOW))
    )
    schema = TemporalMultidimensionalSchema([org], [Measure("amount", SUM)])
    schema.add_fact({"org": "ops_v1"}, ym(2002, 5), amount=30.0)  # winding down
    schema.add_fact({"org": "ops_v2"}, ym(2002, 5), amount=70.0)  # ramping up
    schema.add_fact({"org": "ops_v2"}, ym(2002, 9), amount=100.0)
    schema.validate()
    return schema


class TestOverlapStructure:
    def test_both_versions_valid_in_the_overlap(self, overlap_schema):
        snap = overlap_schema.dimension("org").at(ym(2002, 5))
        assert "ops_v1" in snap and "ops_v2" in snap

    def test_structure_versions_cut_at_both_boundaries(self, overlap_schema):
        spans = [v.valid_time for v in overlap_schema.structure_versions()]
        assert Interval(ym(2002, 4), ym(2002, 6)) in spans  # the overlap window

    def test_facts_recordable_on_both_concurrent_versions(self, overlap_schema):
        rows = overlap_schema.facts.rows_at(ym(2002, 5))
        assert {r.coordinate("org") for r in rows} == {"ops_v1", "ops_v2"}


class TestOverlapQueries:
    def test_tcm_groups_by_member_name_merging_versions(self, overlap_schema):
        engine = QueryEngine(overlap_schema.multiversion_facts())
        result = engine.execute(
            Query(group_by=(TimeGroup(YEAR), LevelGroup("org", "Department")))
        ).as_dict()
        # Both versions are named Dpt.Ops: one row, values folded.
        assert result[("2002", "Dpt.Ops")]["amount"] == 200.0

    def test_division_rollup_includes_both(self, overlap_schema):
        engine = QueryEngine(overlap_schema.multiversion_facts())
        result = engine.execute(
            Query(group_by=(LevelGroup("org", "Division"),))
        ).as_dict()
        assert result[("Division",)]["amount"] == 200.0

    def test_overlap_mode_presents_both_versions_as_source(self, overlap_schema):
        mvft = overlap_schema.multiversion_facts()
        overlap_mode = next(
            v.vsid
            for v in overlap_schema.structure_versions()
            if v.valid_time == Interval(ym(2002, 4), ym(2002, 6))
        )
        engine = QueryEngine(mvft)
        confs = engine.execute(
            Query(
                mode=overlap_mode,
                group_by=(TimeGroup(YEAR), LevelGroup("org", "Department")),
            )
        ).confidences()
        assert confs[("2002", "Dpt.Ops")]["amount"] == "sd"
