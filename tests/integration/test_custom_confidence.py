"""A designer-defined confidence range, end to end (Definition 6).

"This aggregate function can either be defined by a function, in case of
quantitative Confidence Factors, or by a truth table, if Confidence
Factors are given in a qualitative way" — and Example 5's range is just
one possibility.  This test extends the range with a fifth factor ``es``
(*estimated source*: source data that was itself an estimate), wires a
custom truth table through the schema, and checks it flows through
mapping composition, MultiVersion inference, queries and the quality
factor.
"""

import itertools

import pytest

from repro.core import (
    AM,
    CANONICAL_FACTORS,
    ConfidenceFactor,
    EM,
    EvolutionManager,
    Interval,
    LevelGroup,
    Measure,
    MemberVersion,
    Query,
    QueryEngine,
    SD,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
    TimeGroup,
    TruthTableAggregator,
    UK,
    YEAR,
    quality_factor,
)

ES = ConfidenceFactor("es", rank=2, code=5, description="estimated source data")
# Rank 2 puts es on par with am: an estimate is an estimate wherever it
# was made.  The truth table treats es ⊗ am = am (approximation wins the
# tie for display purposes) and uk still absorbs.

FACTORS = (SD, EM, ES, AM, UK)


def build_truth_table():
    order = {0: SD, 1: EM, 2: AM, 3: UK}
    table = {}
    for a, b in itertools.product(FACTORS, repeat=2):
        worst_rank = max(a.rank, b.rank)
        if worst_rank == 2:
            # the es/am tie: es survives only when both sides are es
            out = ES if (a is ES and b is ES) else AM
            if {a, b} <= {ES, SD, EM} and (a is ES or b is ES):
                out = ES
        else:
            out = order[worst_rank]
        table[(a.symbol, b.symbol)] = out
    return table


@pytest.fixture(scope="module")
def custom_engine():
    aggregator = TruthTableAggregator(build_truth_table())
    d = TemporalDimension("org")
    d.add_member(MemberVersion("div", "Division", Interval(0), level="Division"))
    for mvid in ("a", "b"):
        d.add_member(
            MemberVersion(mvid, mvid.upper(), Interval(0), level="Department")
        )
        d.add_relationship(TemporalRelationship(mvid, "div", Interval(0)))
    schema = TemporalMultidimensionalSchema(
        [d], [Measure("amount", SUM)], cf_aggregator=aggregator
    )
    manager = EvolutionManager(schema)
    # 'a' is merged into a successor with an *estimated-source* back share.
    manager.merge_members(
        "org", ["a", "b"], "ab", "AB", 10,
        reverse_shares={"a": 0.5, "b": 0.5},
        confidence=ES,
    )
    schema.add_fact({"org": "a"}, 5, amount=10.0)
    schema.add_fact({"org": "b"}, 5, amount=20.0)
    schema.add_fact({"org": "ab"}, 15, amount=50.0)
    return QueryEngine(schema.multiversion_facts())


class TestCustomRangeFlows:
    def test_custom_factor_survives_inference(self, custom_engine):
        """The back-mapped cells carry es, not am."""
        v1 = custom_engine._mvft.modes.version_modes[0].label
        result = custom_engine.execute(
            Query(
                mode=v1,
                group_by=(TimeGroup(YEAR), LevelGroup("org", "Department")),
            )
        )
        confs = result.confidences()
        year = str(15 // 12)
        assert confs[(year, "A")]["amount"] == "es"
        assert confs[(year, "B")]["amount"] == "es"

    def test_custom_truth_table_drives_aggregation(self, custom_engine):
        """Division rollup mixes sd (old facts) with es (mapped): es."""
        v1 = custom_engine._mvft.modes.version_modes[0].label
        result = custom_engine.execute(
            Query(mode=v1, group_by=(LevelGroup("org", "Division"),))
        )
        assert result.confidences()[("Division",)]["amount"] == "es"

    def test_quality_with_custom_weights(self, custom_engine):
        v1 = custom_engine._mvft.modes.version_modes[0].label
        result = custom_engine.execute(
            Query(
                mode=v1,
                group_by=(TimeGroup(YEAR), LevelGroup("org", "Department")),
            )
        )
        weights = {"sd": 10, "em": 8, "es": 6, "am": 5, "uk": 0}
        q = quality_factor(result, weights)
        assert 0.0 < q < 1.0

    def test_missing_custom_weight_rejected(self, custom_engine):
        from repro.core import QualityError

        v1 = custom_engine._mvft.modes.version_modes[0].label
        result = custom_engine.execute(
            Query(mode=v1, group_by=(LevelGroup("org", "Department"),))
        )
        with pytest.raises(QualityError):
            quality_factor(result, {f.symbol: 5 for f in CANONICAL_FACTORS})

    def test_tie_semantics_of_the_custom_table(self):
        aggregator = TruthTableAggregator(build_truth_table())
        assert aggregator.combine(ES, ES) is ES
        assert aggregator.combine(ES, SD) is ES
        assert aggregator.combine(ES, AM) is AM
        assert aggregator.combine(ES, UK) is UK
