"""Per-measure mapping functions on the §5.2 two-measure case study.

Table 12's split attributes 60 % of *turnover* but 80 % of *profit* to
Dpt.Paul — one mapping relationship, different functions per measure.
These tests drive queries over both measures at once and check each
follows its own factor.
"""

import pytest

from repro.core import (
    Interval,
    LevelGroup,
    Query,
    QueryEngine,
    TimeGroup,
    YEAR,
    ym,
)
from repro.workloads.case_study import ORG


@pytest.fixture(scope="module")
def tm_engine(two_measure_study):
    return QueryEngine(two_measure_study.schema.multiversion_facts())


Q2 = Query(
    group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Department")),
    time_range=Interval(ym(2002, 1), ym(2002, 12)),
    mode="V3",
)


class TestPerMeasureSplitFactors:
    def test_turnover_splits_60_40(self, tm_engine):
        d = tm_engine.execute(Q2).as_dict()
        assert d[("2002", "Dpt.Bill")]["turnover"] == pytest.approx(40.0)
        assert d[("2002", "Dpt.Paul")]["turnover"] == pytest.approx(60.0)

    def test_profit_splits_80_20(self, tm_engine):
        """Jones's 2002 profit is 25: Bill gets 5 (20 %), Paul 20 (80 %)."""
        d = tm_engine.execute(Q2).as_dict()
        assert d[("2002", "Dpt.Bill")]["profit"] == pytest.approx(5.0)
        assert d[("2002", "Dpt.Paul")]["profit"] == pytest.approx(20.0)

    def test_both_measures_tagged_am(self, tm_engine):
        confs = tm_engine.execute(Q2).confidences()
        for dept in ("Dpt.Bill", "Dpt.Paul"):
            assert confs[("2002", dept)]["turnover"] == "am"
            assert confs[("2002", dept)]["profit"] == "am"

    def test_measures_conserved_separately(self, tm_engine):
        """0.6+0.4 and 0.8+0.2 both sum to 1: each measure's 2002 total
        survives the mapping unchanged."""
        totals = tm_engine.execute(
            Query(
                group_by=(TimeGroup(YEAR),),
                time_range=Interval(ym(2002, 1), ym(2002, 12)),
                mode="V3",
            )
        ).as_dict()
        assert totals[("2002",)]["turnover"] == pytest.approx(250.0)
        assert totals[("2002",)]["profit"] == pytest.approx(60.0)


class TestReverseDirectionPerMeasure:
    def test_merge_back_is_identity_for_both_measures(self, tm_engine):
        """Bill's and Paul's 2003 figures report exactly into Jones."""
        d = tm_engine.execute(
            Query(
                group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Department")),
                time_range=Interval(ym(2003, 1), ym(2003, 12)),
                mode="V2",
            )
        ).as_dict()
        assert d[("2003", "Dpt.Jones")]["turnover"] == pytest.approx(200.0)
        assert d[("2003", "Dpt.Jones")]["profit"] == pytest.approx(40.0)

    def test_reverse_confidence_is_em(self, tm_engine):
        confs = tm_engine.execute(
            Query(
                group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Department")),
                time_range=Interval(ym(2003, 1), ym(2003, 12)),
                mode="V2",
            )
        ).confidences()
        assert confs[("2003", "Dpt.Jones")]["turnover"] == "em"
        assert confs[("2003", "Dpt.Jones")]["profit"] == "em"


class TestSelectiveMeasureQueries:
    def test_single_measure_projection(self, tm_engine):
        table = tm_engine.execute(
            Query(
                group_by=(TimeGroup(YEAR),),
                measures=("profit",),
            )
        )
        assert table.measures == ["profit"]
        row = table.rows[0]
        with pytest.raises(Exception):
            row.value("turnover")
