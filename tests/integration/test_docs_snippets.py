"""The documentation's code snippets must actually run.

Extracts the fenced ``python`` blocks from README.md and docs/*.md and
executes them in order within one namespace per file.  A snippet that
drifts from the API fails the build instead of misleading a reader.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]

FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: Path) -> list[str]:
    return FENCE.findall(path.read_text())


def run_blocks(path: Path) -> dict:
    namespace: dict = {"dimensions": None, "measures": None}
    for block in python_blocks(path):
        if "dimensions, measures" in block or "Measure(\"latency\", P95())" in block:
            # extending.md's schema line uses placeholder variables; give
            # them real values first.
            namespace = _with_placeholders(namespace)
        exec(compile(block, str(path), "exec"), namespace)
    return namespace


def _with_placeholders(namespace: dict) -> dict:
    from repro.core import Interval, Measure, MemberVersion, SUM, TemporalDimension

    d = TemporalDimension("org")
    d.add_member(MemberVersion("a", "A", Interval(0)))
    namespace["dimensions"] = [d]
    namespace["measures"] = [Measure("amount", SUM)]
    return namespace


class TestReadme:
    def test_quickstart_snippet_runs(self, capsys):
        namespace = run_blocks(ROOT / "README.md")
        out = capsys.readouterr().out
        assert "--- tcm" in out
        assert "(sd)" in out
        # And the engine it built answers Table 5's signature number:
        assert "200 (sd)" in out


class TestDocsModel:
    def test_model_walkthrough_runs(self, capsys):
        namespace = run_blocks(ROOT / "docs" / "model.md")
        out = capsys.readouterr().out
        assert "V1" in out and "V2" in out  # structure versions printed

    def test_model_doc_exists_and_mentions_definitions(self):
        text = (ROOT / "docs" / "model.md").read_text()
        for definition in ("Definition 1", "Definition 9", "Definition 11"):
            assert definition in text


class TestDocsExtending:
    def test_extending_snippets_run(self):
        namespace = run_blocks(ROOT / "docs" / "extending.md")
        # the custom factor and aggregate defined in the doc work:
        agg = namespace["TruthTableAggregator"](namespace["table"])
        assert agg.combine(namespace["SD"], namespace["ES"]).symbol == "es"
        from repro.core import ym

        semester = namespace["SEMESTER"]
        assert semester.label(semester.bucket(ym(2002, 9))) == "2002H2"

    def test_extending_doc_covers_every_knob(self):
        text = (ROOT / "docs" / "extending.md").read_text()
        for topic in (
            "confidence ranges",
            "mapping functions",
            "granularities",
            "aggregates",
            "Audit checks",
        ):
            assert topic in text


class TestDocsRobustness:
    def test_robustness_snippets_run(self, tmp_path, monkeypatch, capsys):
        # the snippets journal to relative paths — run them in a sandbox
        monkeypatch.chdir(tmp_path)
        from repro.core import (
            Interval,
            Measure,
            MemberVersion,
            SUM,
            TemporalDimension,
            TemporalMultidimensionalSchema,
            TemporalRelationship,
        )

        d = TemporalDimension("Org")
        d.add_member(MemberVersion("idP1", "P1", Interval(0), level="Division"))
        for mvid in ("idV1", "idV2"):
            d.add_member(
                MemberVersion(mvid, mvid[2:], Interval(0), level="Department")
            )
            d.add_relationship(TemporalRelationship(mvid, "idP1", Interval(0)))
        schema = TemporalMultidimensionalSchema([d], [Measure("m", SUM)])
        namespace: dict = {"schema": schema, "tf": 10}
        path = ROOT / "docs" / "robustness.md"
        for block in python_blocks(path):
            exec(compile(block, str(path), "exec"), namespace)
        out = capsys.readouterr().out
        assert "transactions replayed" in out  # report.to_text() was printed

    def test_robustness_doc_covers_the_catalog(self):
        text = (ROOT / "docs" / "robustness.md").read_text()
        from repro.robustness import FAULT_POINTS

        for point in FAULT_POINTS:
            assert point in text


class TestDocsConcurrency:
    def test_concurrency_snippets_run(self, capsys):
        namespace = run_blocks(ROOT / "docs" / "concurrency.md")
        out = capsys.readouterr().out
        assert "snapshot v" in out          # snapshot_caption printed
        assert "conflict on ('org',)" in out
        # the walkthrough proved isolation and determinism inline
        assert namespace["after"] == namespace["before"]

    def test_concurrency_doc_covers_the_package(self):
        text = (ROOT / "docs" / "concurrency.md").read_text()
        for topic in (
            "SnapshotManager",
            "SnapshotCursor",
            "WriteConflictError",
            "ShardedExecutor",
            "first-committer-wins",
            "repro snapshot",
        ):
            assert topic in text


class TestDocsObservability:
    def test_observability_snippets_run(self, capsys):
        namespace = run_blocks(ROOT / "docs" / "observability.md")
        out = capsys.readouterr().out
        assert "etl.nightly" in out                  # tree_text printed
        assert "# TYPE query_rows_scanned" in out    # prometheus dump
        assert "rows scanned: 10" in out    # the tcm slice of the case study
        assert "QUERY PROFILE" in out                # profiler report
        assert "per structure version:" in out
        assert "traceparent: 00-" in out             # wire propagation
        assert "acme bill:" in out                   # usage metering
        assert "bundle files:" in out                # flight recorder dump
        profile = namespace["profile"]
        assert profile.shards and profile.modes

    def test_observability_doc_covers_the_surface(self):
        text = (ROOT / "docs" / "observability.md").read_text()
        for topic in (
            "Tracer",
            "MetricsRegistry",
            "profile_query",
            "--trace-out",
            "NULL_TRACER",
            "runtime.instrumented",
            "ChangeStream",
            "EventBus",
            "publish_commits",
            "SpanPusher",
            "read_push_file",
            "repro tail",
            "format_traceparent",
            "UsageMeter",
            "LabelledMetrics",
            "FlightRecorder",
            "read_manifest",
            "repro usage",
            "repro debug-bundle",
            "metrics.md",
        ):
            assert topic in text


class TestDocsCaching:
    def test_caching_walkthrough_runs(self, capsys):
        namespace = run_blocks(ROOT / "docs" / "caching.md")
        out = capsys.readouterr().out
        assert "hits=1 misses=1" in out
        assert "policy namespace: open" in out
        assert "before write: 150.0" in out
        assert "after write: 190.0" in out
        assert "cursors share: True" in out
        assert "unrestricted namespace: True" in out
        assert "scoped: True" in out
        assert "residency stayed under budget: True" in out

    def test_caching_doc_covers_the_surface(self):
        text = (ROOT / "docs" / "caching.md").read_text()
        for topic in (
            "VersionedResultCache",
            "snapshot_version",
            "structure_version",
            "policy_digest",
            "query_digest",
            "CLOCK",
            "repro cache stats",
            "repro doctor",
            "BENCH_cache.json",
        ):
            assert topic in text


class TestDocsServer:
    def test_server_walkthrough_runs(self, capsys):
        run_blocks(ROOT / "docs" / "server.md")
        out = capsys.readouterr().out
        assert "serving on port" in out
        assert "pinned to version 0" in out
        assert "('2001', 'Sales') {'amount': 150.0}" in out
        assert "2002 x Sales = 100.0" in out
        assert "next page at offset 2" in out
        assert "shed with code 'rate_limited'" in out    # quota hit
        assert "ops sees divisions: ['R&D', 'Sales']" in out  # no RLS leak-over
        assert "status=ok" in out
        assert "ready=True doctor=pass integrity_ok=True" in out
        assert "drained cleanly: True" in out
        assert "auth ops True" in out                   # audit trail read back
        assert "drain None True" in out
        assert "root: client.request" in out            # one connected trace
        assert "metered tenants: ['acme', 'ops']" in out

    def test_server_doc_covers_the_surface(self):
        text = (ROOT / "docs" / "server.md").read_text()
        for topic in (
            "WarehouseClient",
            "serve_background",
            "repro serve",
            "repro query",
            "rate_limited",
            "shutting_down",
            "first-committer-wins",
            "AS-OF",
            "--format json",
            "audit_log",
            "repro audit --log",
            "repro tail",
            "--audit-log",
            "traceparent",
            "RemoteTimeoutError",
            "usage",
            "--usage-log",
        ):
            assert topic in text
