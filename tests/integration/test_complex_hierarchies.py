"""The paper's genericity claim (§2.3): by not imposing any explicit
schema, the model handles *non-onto*, *non-covering* and *multiple*
hierarchies [Pedersen et al.].  These integration tests exercise each
shape through the full pipeline — schema, structure versions, MultiVersion
inference, query engine.
"""

import pytest

from repro.core import (
    Interval,
    LevelGroup,
    Measure,
    MemberVersion,
    NOW,
    Query,
    QueryEngine,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
    TimeGroup,
    YEAR,
    ym,
)

T = ym(2001, 6)


def schema_for(dimension: TemporalDimension) -> TemporalMultidimensionalSchema:
    return TemporalMultidimensionalSchema([dimension], [Measure("amount", SUM)])


class TestNonOntoHierarchy:
    """Non-onto: a parent level member with no children — it can still
    carry facts directly (it is a leaf member version)."""

    def build(self):
        d = TemporalDimension("org")
        d.add_member(MemberVersion("div1", "Div-1", Interval(0), level="Division"))
        d.add_member(MemberVersion("div2", "Div-2", Interval(0), level="Division"))
        d.add_member(MemberVersion("a", "Dept-A", Interval(0), level="Department"))
        d.add_relationship(TemporalRelationship("a", "div1", Interval(0)))
        schema = schema_for(d)
        schema.add_fact({"org": "a"}, T, amount=10.0)
        schema.add_fact({"org": "div2"}, T, amount=5.0)  # childless division
        return schema

    def test_childless_division_is_a_valid_fact_target(self):
        schema = self.build()
        schema.validate()

    def test_division_grouping_includes_direct_facts(self):
        schema = self.build()
        engine = QueryEngine(schema.multiversion_facts())
        result = engine.execute(
            Query(group_by=(LevelGroup("org", "Division"),))
        ).as_dict()
        assert result[("Div-1",)]["amount"] == 10.0
        assert result[("Div-2",)]["amount"] == 5.0

    def test_structure_version_keeps_childless_leaf(self):
        schema = self.build()
        (v1,) = schema.structure_versions()
        assert "div2" in v1.leaf_ids("org")


class TestNonCoveringHierarchy:
    """Non-covering: a leaf attached directly to the top, skipping the
    middle level.  Grouping at the skipped level puts it under ``(none)``;
    grouping at the top level still counts it."""

    def build(self):
        d = TemporalDimension("org")
        d.add_member(MemberVersion("all", "All", Interval(0), level="Total"))
        d.add_member(MemberVersion("g", "Group-G", Interval(0), level="Group"))
        d.add_member(MemberVersion("x", "Leaf-X", Interval(0), level="Leaf"))
        d.add_member(MemberVersion("y", "Leaf-Y", Interval(0), level="Leaf"))
        d.add_relationship(TemporalRelationship("g", "all", Interval(0)))
        d.add_relationship(TemporalRelationship("x", "g", Interval(0)))
        d.add_relationship(TemporalRelationship("y", "all", Interval(0)))  # skips Group
        schema = schema_for(d)
        schema.add_fact({"org": "x"}, T, amount=7.0)
        schema.add_fact({"org": "y"}, T, amount=3.0)
        return schema

    def test_top_level_total_covers_everything(self):
        schema = self.build()
        engine = QueryEngine(schema.multiversion_facts())
        result = engine.execute(
            Query(group_by=(LevelGroup("org", "Total"),))
        ).as_dict()
        assert result[("All",)]["amount"] == 10.0

    def test_skipped_level_groups_under_none(self):
        schema = self.build()
        engine = QueryEngine(schema.multiversion_facts())
        result = engine.execute(
            Query(group_by=(LevelGroup("org", "Group"),))
        ).as_dict()
        assert result[("Group-G",)]["amount"] == 7.0
        assert result[(None,)]["amount"] == 3.0


class TestMultipleHierarchies:
    """Multiple hierarchies: one leaf rolls up into two parents (e.g. a
    department reporting to both a geographic and a functional unit).
    Facts contribute to both rollup paths."""

    def build(self):
        d = TemporalDimension("org")
        d.add_member(MemberVersion("geo", "Geo-North", Interval(0), level="Unit"))
        d.add_member(MemberVersion("fun", "Fn-Research", Interval(0), level="Unit"))
        d.add_member(MemberVersion("lab", "Lab", Interval(0), level="Team"))
        d.add_member(MemberVersion("shop", "Shop", Interval(0), level="Team"))
        d.add_relationship(TemporalRelationship("lab", "geo", Interval(0)))
        d.add_relationship(TemporalRelationship("lab", "fun", Interval(0)))
        d.add_relationship(TemporalRelationship("shop", "geo", Interval(0)))
        schema = schema_for(d)
        schema.add_fact({"org": "lab"}, T, amount=12.0)
        schema.add_fact({"org": "shop"}, T, amount=8.0)
        return schema

    def test_snapshot_reports_both_parents(self):
        schema = self.build()
        snap = schema.dimension("org").at(T)
        assert snap.parents("lab") == ["fun", "geo"]

    def test_fact_contributes_to_both_rollups(self):
        schema = self.build()
        engine = QueryEngine(schema.multiversion_facts())
        result = engine.execute(
            Query(group_by=(LevelGroup("org", "Unit"),))
        ).as_dict()
        assert result[("Geo-North",)]["amount"] == 20.0
        assert result[("Fn-Research",)]["amount"] == 12.0

    def test_multiple_hierarchy_survives_structure_versioning(self):
        schema = self.build()
        (v1,) = schema.structure_versions()
        snap = v1.dimension("org").at(v1.valid_time.start)
        assert snap.parents("lab") == ["fun", "geo"]


class TestEvolvingComplexHierarchy:
    """A non-covering hierarchy that *becomes* covering: the direct leaf
    is reclassified under a group mid-history.  Levels are inferred per
    instant (Definition 4), so the change is just another evolution."""

    def build(self):
        from repro.core import EvolutionManager

        d = TemporalDimension("org")
        d.add_member(MemberVersion("all", "All", Interval(0), level="Total"))
        d.add_member(MemberVersion("g", "Group-G", Interval(0), level="Group"))
        d.add_member(MemberVersion("y", "Leaf-Y", Interval(0), level="Leaf"))
        d.add_relationship(TemporalRelationship("g", "all", Interval(0)))
        d.add_relationship(TemporalRelationship("y", "all", Interval(0)))
        schema = schema_for(d)
        manager = EvolutionManager(schema)
        manager.reclassify_member(
            "org", "y", 100, old_parents=["all"], new_parents=["g"]
        )
        schema.add_fact({"org": "y"}, 50, amount=3.0)
        schema.add_fact({"org": "y"}, 150, amount=4.0)
        return schema

    def test_two_structure_versions(self):
        schema = self.build()
        assert len(schema.structure_versions()) == 2

    def test_tcm_grouping_follows_the_change(self):
        schema = self.build()
        engine = QueryEngine(schema.multiversion_facts())
        result = engine.execute(
            Query(group_by=(TimeGroup(YEAR), LevelGroup("org", "Group")))
        ).as_dict()
        # t=50 (year 4): not covered by Group -> (none); t=150 (year 12): G.
        assert result[("4", None)]["amount"] == 3.0
        assert result[("12", "Group-G")]["amount"] == 4.0

    def test_version_modes_disagree_on_coverage(self):
        schema = self.build()
        engine = QueryEngine(schema.multiversion_facts())
        v1, v2 = [v.vsid for v in schema.structure_versions()]
        q = Query(group_by=(LevelGroup("org", "Group"),))
        in_v1 = engine.execute(q.with_mode(v1)).as_dict()
        in_v2 = engine.execute(q.with_mode(v2)).as_dict()
        assert in_v1[(None,)]["amount"] == 7.0       # never under a group
        assert in_v2[("Group-G",)]["amount"] == 7.0  # always under G
