"""FaultInjector determinism, retry backoff, and ETL graceful degradation."""

import pytest

from repro.robustness import (
    FaultInjector,
    InjectedFault,
    RetryExhaustedError,
    RetryPolicy,
)
from repro.warehouse import ETLPipeline, FactMapping, OperationalSource

from .conftest import build_schema


class TestFaultInjector:
    def test_at_call_trips_exactly_once(self):
        inj = FaultInjector()
        inj.arm("db.insert", at_call=3)
        inj.fire("db.insert")
        inj.fire("db.insert")
        with pytest.raises(InjectedFault) as e:
            inj.fire("db.insert")
        assert e.value.point == "db.insert" and e.value.count == 3
        inj.fire("db.insert")  # plan exhausted, passes again
        assert inj.calls("db.insert") == 4
        assert inj.trip_log == [("db.insert", 3)]

    def test_times_bounds_probability_plans(self):
        inj = FaultInjector(seed=42)
        inj.arm("etl.extract", probability=1.0, times=2)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                inj.fire("etl.extract")
        inj.fire("etl.extract")  # third call: plan exhausted

    def test_same_seed_same_trips(self):
        def trace(seed):
            inj = FaultInjector(seed=seed)
            inj.arm("wal.append", probability=0.3, times=100)
            hits = []
            for i in range(50):
                try:
                    inj.fire("wal.append")
                except InjectedFault:
                    hits.append(i)
            return hits

        assert trace(11) == trace(11)
        assert trace(11) != trace(12)

    def test_rearming_resets_the_call_counter(self):
        inj = FaultInjector()
        inj.arm("db.insert", at_call=1)
        with pytest.raises(InjectedFault):
            inj.fire("db.insert")
        inj.arm("db.insert", at_call=1)
        with pytest.raises(InjectedFault):
            inj.fire("db.insert")

    def test_custom_exception_type(self):
        inj = FaultInjector()
        inj.arm("etl.extract", at_call=1, exception=ConnectionError)
        with pytest.raises(ConnectionError):
            inj.fire("etl.extract")

    def test_disarm_and_arm_validation(self):
        inj = FaultInjector()
        inj.arm("db.insert", at_call=1)
        inj.disarm("db.insert")
        inj.fire("db.insert")  # no longer armed
        with pytest.raises(ValueError):
            inj.arm("db.insert")  # neither at_call nor probability
        with pytest.raises(ValueError):
            inj.arm("db.insert", at_call=1, probability=0.5)  # both
        with pytest.raises(ValueError):
            inj.arm("db.insert", at_call=0)
        with pytest.raises(ValueError):
            inj.arm("db.insert", probability=1.5)


class TestRetryPolicy:
    def test_backoff_schedule_is_exponential_and_capped(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=1.0, multiplier=2.0, max_delay=5.0,
            sleep=lambda _s: None,
        )
        assert policy.backoff_schedule() == [1.0, 2.0, 4.0, 5.0]

    def test_succeeds_after_transient_failures(self):
        sleeps = []
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.1, multiplier=2.0, sleep=sleeps.append
        )
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise ConnectionError("transient")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert attempts["n"] == 3
        assert sleeps == [0.1, 0.2]

    def test_exhaustion_chains_the_last_error(self):
        policy = RetryPolicy.no_sleep(max_attempts=3)

        def always_fails():
            raise ConnectionError("down")

        with pytest.raises(RetryExhaustedError) as e:
            policy.call(always_fails)
        assert e.value.attempts == 3
        assert isinstance(e.value.__cause__, ConnectionError)

    def test_non_retryable_exceptions_propagate_immediately(self):
        policy = RetryPolicy.no_sleep(max_attempts=5, retry_on=(ConnectionError,))
        calls = {"n": 0}

        def fails():
            calls["n"] += 1
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.call(fails)
        assert calls["n"] == 1

    def test_jitter_is_seeded_and_deterministic(self):
        def delays(seed):
            out = []
            policy = RetryPolicy(
                max_attempts=4, base_delay=1.0, jitter=0.5, seed=seed,
                sleep=out.append,
            )
            with pytest.raises(RetryExhaustedError):
                policy.call(lambda: (_ for _ in ()).throw(OSError("x")))
            return out

        a, b = delays(5), delays(5)
        assert a == b
        assert all(base <= d for base, d in zip([1.0, 2.0, 4.0], a))

    def test_wrap_preserves_behaviour(self):
        policy = RetryPolicy.no_sleep(max_attempts=2)
        wrapped = policy.wrap(lambda x: x * 2)
        assert wrapped(21) == 42


class FlakySource(OperationalSource):
    """Extraction fails ``failures`` times, then succeeds."""

    def __init__(self, name, records, failures):
        super().__init__(name, records)
        self.failures = failures
        self.attempts = 0

    def extract(self):
        self.attempts += 1
        if self.attempts <= self.failures:
            raise ConnectionError(f"{self.name} unreachable")
        return super().extract()


def make_pipeline(schema, **kwargs):
    mapping = FactMapping(
        lambda r: ({"Org": r["dept"]}, r["t"], {"m": r["m"]})
    )
    return ETLPipeline(schema, mapping=mapping, **kwargs)


class TestETLDegradation:
    def test_failed_source_is_reported_and_load_continues(self, schema):
        pipeline = make_pipeline(schema)
        report = pipeline.run(
            [
                FlakySource("legacy", [{"dept": "idV", "t": 3, "m": 1.0}], 99),
                OperationalSource("good", [{"dept": "idV1", "t": 3, "m": 2.0}]),
            ]
        )
        assert report.loaded == 1
        assert not report.complete
        assert report.failed_source_count == 1
        assert report.failed_sources[0][0] == "legacy"
        assert "ConnectionError" in report.failed_sources[0][1]

    def test_retry_recovers_a_flaky_source(self, schema):
        source = FlakySource("legacy", [{"dept": "idV", "t": 3, "m": 1.0}], 2)
        pipeline = make_pipeline(schema, retry=RetryPolicy.no_sleep(max_attempts=3))
        report = pipeline.run([source])
        assert report.complete
        assert report.loaded == 1
        assert source.attempts == 3

    def test_retry_exhaustion_degrades_gracefully(self, schema):
        source = FlakySource("legacy", [{"dept": "idV", "t": 3, "m": 1.0}], 5)
        pipeline = make_pipeline(schema, retry=RetryPolicy.no_sleep(max_attempts=3))
        report = pipeline.run([source])
        assert not report.complete
        # the detail names the *root* failure, not the retry wrapper,
        # plus how many attempts were burned before giving up
        assert "ConnectionError" in report.failed_sources[0][1]
        assert "after 3 attempts" in report.failed_sources[0][1]
        assert source.attempts == 3

    def test_injected_extraction_fault_hits_one_source(self, schema):
        inj = FaultInjector()
        inj.arm("etl.extract", at_call=2)
        pipeline = make_pipeline(schema, fault_injector=inj)
        report = pipeline.run(
            [
                OperationalSource("s1", [{"dept": "idV", "t": 3, "m": 1.0}]),
                OperationalSource("s2", [{"dept": "idV1", "t": 3, "m": 2.0}]),
                OperationalSource("s3", [{"dept": "idV2", "t": 3, "m": 3.0}]),
            ]
        )
        assert report.loaded == 2
        assert [name for name, _ in report.failed_sources] == ["s2"]
        assert "InjectedFault" in report.failed_sources[0][1]
