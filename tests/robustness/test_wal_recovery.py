"""Write-ahead journal format and replay-based crash recovery."""

import json

import pytest

from repro.core import UK
from repro.core.mapping import MappingRelationship, MeasureMap, UnknownMapping
from repro.robustness import (
    FaultInjector,
    InjectedFault,
    RecoveryError,
    TransactionManager,
    WALError,
    WriteAheadJournal,
    recover_schema,
)

from .conftest import build_schema, fingerprint


def merge(ev):
    return ev.merge_members(
        "Org",
        ["idV1", "idV2"],
        "idV12",
        "V12",
        10,
        reverse_shares={"idV1": 0.5, "idV2": None},
    )


@pytest.fixture()
def wal_path(tmp_path):
    return tmp_path / "evolutions.wal"


class TestJournalFormat:
    def test_fresh_manager_writes_initial_checkpoint(self, schema, wal_path):
        TransactionManager(schema, wal=wal_path)
        records = WriteAheadJournal(wal_path).records()
        assert [r["kind"] for r in records] == ["checkpoint"]
        assert records[0]["lsn"] == 1

    def test_committed_transaction_record_sequence(self, schema, wal_path):
        txm = TransactionManager(schema, wal=wal_path)
        with txm.transaction():
            merge(txm.evolution)
        kinds = [r["kind"] for r in txm.wal.records()]
        assert kinds == ["checkpoint", "begin", "op", "op", "op", "op", "op", "commit"]
        ops = [r["op"] for r in txm.wal.records() if r["kind"] == "op"]
        assert ops == ["Exclude", "Exclude", "Insert", "Associate", "Associate"]

    def test_rollback_writes_abort_record(self, schema, wal_path):
        txm = TransactionManager(schema, wal=wal_path)
        txm.begin()
        txm.evolution.create_member("Org", "idX", "X", 5, parents=["idP1"])
        txm.rollback()
        kinds = [r["kind"] for r in txm.wal.records()]
        assert kinds[-1] == "abort"

    def test_lsns_are_monotonic_and_continue_across_reopen(self, schema, wal_path):
        txm = TransactionManager(schema, wal=wal_path)
        with txm.transaction():
            txm.evolution.create_member("Org", "idX", "X", 5, parents=["idP1"])
        txm.wal.close()
        reopened = WriteAheadJournal(wal_path)
        lsns = [r["lsn"] for r in reopened.records()]
        assert lsns == sorted(lsns) and len(set(lsns)) == len(lsns)
        new_lsn = reopened.append("commit", txid=999)
        assert new_lsn == lsns[-1] + 1

    def test_torn_final_line_is_dropped(self, schema, wal_path):
        txm = TransactionManager(schema, wal=wal_path)
        with txm.transaction():
            txm.evolution.create_member("Org", "idX", "X", 5, parents=["idP1"])
        txm.wal.close()
        with open(wal_path, "a", encoding="utf-8") as f:
            f.write('{"lsn": 99, "format": 1, "kind": "com')  # crash mid-append
        records = WriteAheadJournal(wal_path).records()
        assert all(r["lsn"] != 99 for r in records)
        assert records[-1]["kind"] == "commit"

    def test_corruption_before_the_tail_raises(self, schema, wal_path):
        txm = TransactionManager(schema, wal=wal_path)
        with txm.transaction():
            txm.evolution.create_member("Org", "idX", "X", 5, parents=["idP1"])
        txm.wal.close()
        lines = wal_path.read_text().splitlines()
        lines[1] = "garbage"
        wal_path.write_text("\n".join(lines) + "\n")
        with pytest.raises(WALError):
            WriteAheadJournal(wal_path).records()

    def test_unknown_record_kind_raises(self, wal_path):
        wal_path.write_text(
            json.dumps({"lsn": 1, "format": 1, "kind": "mystery"}) + "\n" * 2
        )
        with pytest.raises(WALError):
            WriteAheadJournal(wal_path).records()


class TestRecovery:
    def test_recovery_restores_committed_state(self, schema, wal_path):
        txm = TransactionManager(schema, wal=wal_path)
        with txm.transaction():
            merge(txm.evolution)
        with txm.transaction():
            txm.add_fact({"Org": "idV"}, 3, {"m": 7.0})
        committed = fingerprint(schema)

        recovered, report = recover_schema(wal_path)
        assert fingerprint(recovered) == committed
        assert report.transactions_replayed == 2
        assert report.transactions_discarded == 0
        assert report.operators_replayed == 5
        assert report.facts_replayed == 1
        assert report.integrity_violations == 0

    def test_crash_mid_transaction_recovers_to_last_commit(self, schema, wal_path):
        txm = TransactionManager(schema, wal=wal_path)
        with txm.transaction():
            merge(txm.evolution)
        committed = fingerprint(schema)
        # simulated crash: operators journaled, no commit record, process gone
        txm.begin()
        txm.evolution.create_member("Org", "idX", "X", 12, parents=["idP1"])
        del txm

        recovered, report = recover_schema(wal_path)
        assert fingerprint(recovered) == committed
        assert "idX" not in recovered.dimension("Org")
        assert report.transactions_discarded == 1

    def test_crash_during_commit_append_discards_transaction(self, schema, wal_path):
        injector = FaultInjector(seed=3)
        txm = TransactionManager(schema, wal=wal_path, fault_injector=injector)
        with txm.transaction():
            txm.evolution.create_member("Org", "idA", "A", 5, parents=["idP1"])
        committed = fingerprint(schema)
        # the commit record itself never reaches the disk: arming resets the
        # call counter, so appends count begin=1, op=2, commit=3
        injector.arm("wal.append", at_call=3)
        with pytest.raises(InjectedFault):
            with txm.transaction():
                txm.evolution.create_member("Org", "idB", "B", 6, parents=["idP1"])
        assert fingerprint(schema) == committed  # in-memory rollback worked

        recovered, report = recover_schema(wal_path)
        assert fingerprint(recovered) == committed
        assert "idB" not in recovered.dimension("Org")

    def test_recovery_from_later_checkpoint(self, schema, wal_path):
        txm = TransactionManager(schema, wal=wal_path)
        with txm.transaction():
            merge(txm.evolution)
        txm.checkpoint()
        with txm.transaction():
            txm.evolution.create_member("Org", "idY", "Y", 15, parents=["idP1"])
        recovered, report = recover_schema(wal_path)
        assert report.checkpoint_lsn > 1
        assert report.operators_replayed == 1  # only the post-checkpoint insert
        assert fingerprint(recovered) == fingerprint(schema)

    def test_recovery_without_checkpoint_fails(self, wal_path):
        wal = WriteAheadJournal(wal_path)
        wal.begin(1)
        wal.commit(1)
        wal.close()
        with pytest.raises(RecoveryError):
            recover_schema(wal_path)

    def test_reclassify_and_transform_round_trip(self, schema, wal_path):
        txm = TransactionManager(schema, wal=wal_path)
        with txm.transaction():
            txm.evolution.create_member("Org", "idP2", "P2", 0, level="Division")
            txm.evolution.reclassify_member(
                "Org", "idV1", 8, old_parents=["idP1"], new_parents=["idP2"]
            )
        with txm.transaction():
            txm.evolution.transform_member("Org", "idV2", "idV2b", "V2b", 9)
        recovered, _report = recover_schema(wal_path)
        assert fingerprint(recovered) == fingerprint(schema)
        snap = recovered.dimension("Org").at(9)
        assert snap.parents("idV1") == ["idP2"]

    def test_unknown_mapping_functions_survive_the_journal(self, schema, wal_path):
        txm = TransactionManager(schema, wal=wal_path)
        with txm.transaction():
            txm.evolution.delete_member("Org", "idV1", 10)
            txm.evolution.create_member("Org", "idW", "W", 10, parents=["idP1"])
            txm.editor.associate(
                MappingRelationship(
                    source="idV1",
                    target="idW",
                    forward={"m": MeasureMap(UnknownMapping(), UK)},
                    reverse={"m": MeasureMap(UnknownMapping(), UK)},
                )
            )
        recovered, _ = recover_schema(wal_path)
        assert fingerprint(recovered) == fingerprint(schema)
        assert len(recovered.mappings) == 1
