"""Point-in-time recovery: checksums, archives, AS-OF undo replay, backups."""

import io
import json
import random
import re
import warnings

import pytest

from repro.cli import main as cli_main
from repro.robustness import (
    FaultInjector,
    InjectedFault,
    RecoveryError,
    TransactionError,
    TransactionManager,
    WALError,
    WriteAheadJournal,
    backup_journal,
    materialize_as_of,
    materialize_schema_as_of,
    open_as_of,
    recover_schema,
    recover_to,
    recover_warehouse,
    restore_backup,
    restore_points,
)
from repro.robustness.wal import manifest_path, read_chain, sweep_journal
from repro.storage import Column, Database, INTEGER, TEXT

from .conftest import build_schema, fingerprint


def db_fingerprint(db):
    """Canonical serialization — byte-identity is compared on this."""
    return json.dumps(db.dump(), sort_keys=True)


def make_db(fault_injector=None):
    db = Database("wh", fault_injector=fault_injector)
    db.create_table(
        "dept",
        [Column("id", INTEGER), Column("name", TEXT)],
        primary_key=["id"],
    )
    return db


def managed(wal_path, *, durable=False, injector=None, **wal_kwargs):
    """A TransactionManager over a fresh one-table warehouse."""
    wal = WriteAheadJournal(
        wal_path, durable=durable, fault_injector=injector, **wal_kwargs
    )
    return TransactionManager(
        build_schema(), wal=wal, database=make_db(injector), fault_injector=injector
    )


def grow_history(txm, *, txns=6, seed=3, compact_after=None, rng=None, base=100):
    """Commit ``txns`` insert/update/delete transactions; returns commit LSNs.

    ``compact_after`` (a transaction index) checkpoints and compacts the
    journal right after that commit, so later targets sit across an
    archive boundary.
    """
    rng = rng if rng is not None else random.Random(seed)
    commits = []
    for i in range(txns):
        with txm.transaction() as txn:
            txm.database.insert("dept", {"id": base + i, "name": f"d{i}"})
            if i >= 2 and rng.random() < 0.5:
                victim = base + rng.randrange(i)
                txm.database.update(
                    "dept", lambda r, v=victim: r["id"] == v, {"name": f"u{i}"}
                )
            if i >= 3 and rng.random() < 0.3:
                victim = base + rng.randrange(i)
                txm.database.delete("dept", lambda r, v=victim: r["id"] == v)
        commits.append(txn.commit_lsn)
        if compact_after is not None and i == compact_after:
            txm.wal.truncate_before(txm.checkpoint())
    return commits


def flip_crc_digit(path):
    """Flip one digit of the first stored record checksum in ``path``."""
    data = bytearray(path.read_bytes())
    match = re.search(rb'"crc":(\d)', bytes(data))
    offset = match.start(1)
    data[offset] = ord("1") if data[offset : offset + 1] != b"1" else ord("2")
    path.write_bytes(bytes(data))


@pytest.fixture()
def wal_path(tmp_path):
    return tmp_path / "warehouse.wal"


class TestRestorePoints:
    def test_restore_point_is_journaled_and_resolvable(self, wal_path):
        txm = managed(wal_path)
        with txm.transaction():
            txm.database.insert("dept", {"id": 1, "name": "sales"})
        lsn = txm.create_restore_point("before-reorg")
        assert txm.wal.records()[-1]["kind"] == "restore_point"
        assert restore_points(txm.wal) == {"before-reorg": lsn}
        txm.wal.close()
        assert restore_points(wal_path) == {"before-reorg": lsn}

    def test_same_name_resolves_to_latest(self, wal_path):
        txm = managed(wal_path)
        first = txm.create_restore_point("nightly")
        second = txm.create_restore_point("nightly")
        assert first < second
        assert restore_points(txm.wal)["nightly"] == second
        txm.wal.close()

    def test_restore_point_name_must_be_a_nonempty_string(self, wal_path):
        txm = managed(wal_path)
        with pytest.raises(WALError):
            txm.wal.restore_point("")
        with pytest.raises(WALError):
            txm.wal.restore_point(42)
        txm.wal.close()

    def test_restore_point_refused_inside_a_transaction(self, wal_path):
        txm = managed(wal_path)
        with pytest.raises(TransactionError):
            with txm.transaction():
                txm.create_restore_point("mid-txn")
        txm.wal.close()

    def test_restore_point_needs_a_journal(self):
        txm = TransactionManager(build_schema())
        with pytest.raises(TransactionError, match="journal"):
            txm.create_restore_point("nope")


class TestChecksums:
    def test_every_record_carries_a_crc(self, wal_path):
        txm = managed(wal_path)
        grow_history(txm, txns=2)
        assert all("crc" in r for r in txm.wal.records())
        txm.wal.close()

    def test_flipped_byte_is_detected_on_replay(self, wal_path):
        txm = managed(wal_path)
        grow_history(txm, txns=2)
        txm.wal.close()
        flip_crc_digit(wal_path)
        with pytest.raises(WALError, match="checksum"):
            WriteAheadJournal(wal_path).records()
        with pytest.raises(WALError, match="checksum"):
            recover_warehouse(wal_path)

    def test_quarantine_policy_keeps_the_valid_prefix(self, wal_path):
        txm = managed(wal_path)
        grow_history(txm, txns=3)
        total = len(txm.wal.records())
        txm.wal.close()
        # damage a record in the second half of the journal
        lines = wal_path.read_text(encoding="utf-8").splitlines()
        bad_index = total - 4
        lines[bad_index] = lines[bad_index].replace('"crc":', '"crc":9', 1)
        wal_path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        reopened = WriteAheadJournal(wal_path, corruption_policy="quarantine")
        kept = reopened.records()
        assert len(kept) == bad_index
        assert reopened.quarantined_records == total - bad_index
        quarantine = wal_path.with_name(wal_path.name + ".quarantine")
        assert quarantine.exists()
        assert len(quarantine.read_text(encoding="utf-8").splitlines()) == (
            total - bad_index
        )
        # the surviving prefix stays appendable and replayable
        reopened.append("restore_point", name="after-quarantine")
        assert reopened.records()[-1]["kind"] == "restore_point"
        reopened.close()

    def test_checksum_false_writes_legacy_records(self, wal_path):
        wal = WriteAheadJournal(wal_path, checksum=False)
        txid = wal.next_txid()
        wal.begin(txid)
        wal.commit(txid)
        wal.close()
        lines = wal_path.read_text(encoding="utf-8").splitlines()
        assert all('"crc"' not in line for line in lines)
        # crc-less records verify fine under the default strict reader
        assert [r["kind"] for r in WriteAheadJournal(wal_path).records()] == [
            "begin",
            "commit",
        ]

    def test_bad_corruption_policy_is_rejected(self, wal_path):
        with pytest.raises(WALError, match="corruption policy"):
            WriteAheadJournal(wal_path, corruption_policy="ignore")


class TestArchiving:
    def test_compaction_archives_instead_of_destroying(self, wal_path):
        txm = managed(wal_path)
        grow_history(txm, txns=5, compact_after=2)
        live_first = txm.wal.records()[0]["lsn"]
        segs = sorted(wal_path.parent.glob(wal_path.name + ".*.seg"))
        assert len(segs) == 1
        manifest = json.loads(manifest_path(wal_path).read_text(encoding="utf-8"))
        assert [s["name"] for s in manifest["segments"]] == [segs[0].name]
        chain = read_chain(wal_path)
        lsns = [r["lsn"] for r in chain]
        assert lsns == sorted(lsns) and len(set(lsns)) == len(lsns)
        assert lsns[0] == 1  # history starts at the very first record
        assert any(r["lsn"] < live_first for r in chain)
        txm.wal.close()

    def test_second_compaction_appends_a_numbered_segment(self, wal_path):
        txm = managed(wal_path)
        grow_history(txm, txns=3, compact_after=0)
        txm.wal.truncate_before(txm.checkpoint())
        names = [s.name for s in sorted(wal_path.parent.glob("*.seg"))]
        assert names == [f"{wal_path.name}.0001.seg", f"{wal_path.name}.0002.seg"]
        lsns = [r["lsn"] for r in read_chain(wal_path)]
        assert lsns == sorted(lsns) and len(set(lsns)) == len(lsns)
        txm.wal.close()

    def test_unarchived_compaction_refuses_to_destroy_restore_points(
        self, wal_path
    ):
        txm = managed(wal_path, archive=False)
        txm.create_restore_point("keep-me")
        grow_history(txm, txns=2)
        lsn = txm.checkpoint()
        with pytest.raises(WALError, match="keep-me"):
            txm.wal.truncate_before(lsn)
        txm.wal.close()

    def test_unarchived_compaction_warns_when_dml_history_is_lost(self, wal_path):
        txm = managed(wal_path, archive=False)
        grow_history(txm, txns=2)
        lsn = txm.checkpoint()
        with pytest.warns(UserWarning, match="point-in-time"):
            txm.wal.truncate_before(lsn)
        assert not list(wal_path.parent.glob("*.seg"))
        txm.wal.close()

    def test_crash_during_rotation_is_retryable_without_duplicates(self, wal_path):
        injector = FaultInjector(seed=11)
        txm = managed(wal_path, injector=injector)
        grow_history(txm, txns=3)
        before = txm.wal.records()
        lsn = txm.checkpoint()
        injector.arm("wal.archive", at_call=1)
        with pytest.raises(InjectedFault):
            txm.wal.truncate_before(lsn)
        # the live journal is untouched by the failed rotation
        assert [r["lsn"] for r in txm.wal.records()][: len(before)] == [
            r["lsn"] for r in before
        ]
        assert txm.wal.truncate_before(lsn) > 0
        lsns = [r["lsn"] for r in read_chain(wal_path)]
        assert lsns == sorted(lsns) and len(set(lsns)) == len(lsns)
        assert lsns[0] == 1
        txm.wal.close()


class TestMaterializeAsOf:
    def test_undo_matches_forward_replay_at_every_commit(self, wal_path):
        txm = managed(wal_path)
        commits = grow_history(txm, txns=6, compact_after=2)
        for lsn in commits:
            forward, _ = recover_warehouse(
                txm.wal, up_to_lsn=lsn, use_archives=True
            )
            undone, report = materialize_as_of(txm.wal, lsn)
            assert db_fingerprint(undone) == db_fingerprint(forward), lsn
            assert report.target_lsn == lsn
        txm.wal.close()

    def test_report_counts_what_was_undone(self, wal_path):
        txm = managed(wal_path)
        with txm.transaction() as txn:
            txm.database.insert("dept", {"id": 1, "name": "sales"})
        target = txn.commit_lsn
        with txm.transaction():
            txm.database.insert("dept", {"id": 2, "name": "hr"})
            txm.database.update("dept", lambda r: r["id"] == 1, {"name": "S"})
            txm.database.delete("dept", lambda r: r["id"] == 2)
        _, report = materialize_as_of(txm.wal, target)
        assert report.inserts_undone == 1
        assert report.updates_undone == 1
        assert report.deletes_undone == 1
        assert "undone" in report.to_text()
        txm.wal.close()

    def test_tables_created_after_target_are_dropped(self, wal_path):
        txm = managed(wal_path)
        commits = grow_history(txm, txns=2)
        txm.database.db.create_table(
            "late", [Column("id", INTEGER)], primary_key=["id"]
        )
        with txm.transaction():
            txm.database.insert("late", {"id": 1})
        historical, report = materialize_as_of(txm.wal, commits[-1])
        assert "late" not in historical.table_names
        assert report.tables_dropped == 1
        txm.wal.close()

    def test_schema_as_of_matches_forward_replay(self, wal_path):
        txm = managed(wal_path)
        with txm.transaction() as txn:
            txm.evolution.create_member("Org", "idX", "X", 5, parents=["idP1"])
        target = txn.commit_lsn
        with txm.transaction():
            txm.evolution.create_member("Org", "idY", "Y", 6, parents=["idP1"])
        historical, _ = materialize_schema_as_of(txm.wal, target)
        forward, _ = recover_schema(txm.wal, up_to_lsn=target, use_archives=True)
        assert fingerprint(historical) == fingerprint(forward)
        member_ids = set(historical.dimensions["Org"].members)
        assert "idX" in member_ids and "idY" not in member_ids
        txm.wal.close()

    def test_unknown_targets_are_rejected(self, wal_path):
        txm = managed(wal_path)
        grow_history(txm, txns=2)
        head = txm.wal.last_lsn
        with pytest.raises(RecoveryError, match="restore point"):
            materialize_as_of(txm.wal, "no-such-point")
        with pytest.raises(RecoveryError):
            materialize_as_of(txm.wal, head + 10)
        with pytest.raises(RecoveryError):
            materialize_as_of(txm.wal, True)
        txm.wal.close()


class TestForwardUndoProperty:
    """Randomised histories: undo replay must equal forward replay, always."""

    @pytest.mark.parametrize("seed", range(5))
    def test_random_history_round_trips_at_every_commit(self, tmp_path, seed):
        wal_path = tmp_path / f"prop-{seed}.wal"
        rng = random.Random(seed)
        txm = managed(wal_path)
        commits = grow_history(
            txm, txns=8, compact_after=rng.randrange(1, 6), rng=rng
        )
        if rng.random() < 0.5:
            txm.create_restore_point("prop")
        for lsn in commits:
            forward, _ = recover_warehouse(
                txm.wal, up_to_lsn=lsn, use_archives=True
            )
            undone, _ = materialize_as_of(txm.wal, lsn)
            assert db_fingerprint(undone) == db_fingerprint(forward), (seed, lsn)
        txm.wal.close()


class TestRecoverTo:
    def test_rewind_truncates_forward_history(self, wal_path):
        txm = managed(wal_path)
        commits = grow_history(txm, txns=5)
        expected, _ = materialize_as_of(txm.wal, commits[2])
        txm.wal.close()
        report = recover_to(wal_path, commits[2])
        assert report.target_lsn == commits[2]
        assert report.records_dropped > 0
        assert db_fingerprint(report.database) == db_fingerprint(expected)
        # the journal itself was rewound: plain recovery lands there too
        recovered, _ = recover_warehouse(wal_path)
        assert db_fingerprint(recovered) == db_fingerprint(expected)
        assert WriteAheadJournal(wal_path).last_lsn <= commits[2]

    def test_rewind_to_a_restore_point_by_name(self, wal_path):
        txm = managed(wal_path)
        grow_history(txm, txns=2)
        point = txm.create_restore_point("golden")
        grow_history(txm, txns=2, base=200)
        txm.wal.close()
        report = recover_to(wal_path, "golden")
        assert report.restore_point == "golden"
        assert report.target_lsn == point
        assert "golden" in report.to_text()

    def test_rewind_across_a_compaction_boundary_prunes_archives(self, wal_path):
        txm = managed(wal_path)
        commits = grow_history(txm, txns=6, compact_after=3)
        expected, _ = materialize_as_of(txm.wal, commits[1])
        txm.wal.close()
        report = recover_to(wal_path, commits[1])
        assert db_fingerprint(report.database) == db_fingerprint(expected)
        # every surviving archived record predates the rewound live journal
        live_first = read_chain(wal_path)[0]["lsn"]
        chain_lsns = [r["lsn"] for r in read_chain(wal_path)]
        assert chain_lsns == sorted(chain_lsns)
        assert all(lsn <= commits[1] for lsn in chain_lsns)
        assert report.segments_dropped + report.segments_trimmed >= 1
        assert live_first == 1 or live_first <= commits[1]

    def test_open_journal_is_refused(self, wal_path):
        txm = managed(wal_path)
        commits = grow_history(txm, txns=2)
        with pytest.raises(WALError, match="close"):
            recover_to(txm.wal, commits[0])
        txm.wal.close()

    def test_crash_during_rewind_leaves_the_journal_intact(self, wal_path):
        injector = FaultInjector(seed=3)
        txm = managed(wal_path)
        commits = grow_history(txm, txns=4)
        txm.wal.close()
        before = wal_path.read_bytes()
        injector.arm("wal.truncate", at_call=1)
        with pytest.raises(InjectedFault):
            recover_to(wal_path, commits[1], fault_injector=injector)
        assert wal_path.read_bytes() == before
        # disarmed, the retry goes through
        report = recover_to(wal_path, commits[1], fault_injector=injector)
        assert report.target_lsn == commits[1]


class TestBackupRestore:
    def test_round_trip_recovers_byte_identically(self, wal_path, tmp_path):
        txm = managed(wal_path)
        grow_history(txm, txns=5, compact_after=2)
        expected = db_fingerprint(txm.database.db)
        report = backup_journal(txm.wal, tmp_path / "bk")
        assert report.files >= 3  # journal + manifest + segment
        txm.wal.close()
        restore_backup(tmp_path / "bk", tmp_path / "restored.wal")
        recovered, _ = recover_warehouse(tmp_path / "restored.wal")
        assert db_fingerprint(recovered) == expected
        # archives travelled with the journal: full-history AS-OF works
        chain = read_chain(tmp_path / "restored.wal")
        assert chain[0]["lsn"] == 1

    def test_backup_refuses_an_existing_destination(self, wal_path, tmp_path):
        txm = managed(wal_path)
        (tmp_path / "bk").mkdir()
        with pytest.raises(WALError, match="exists"):
            backup_journal(txm.wal, tmp_path / "bk")
        txm.wal.close()

    def test_restore_refuses_an_existing_journal(self, wal_path, tmp_path):
        txm = managed(wal_path)
        backup_journal(txm.wal, tmp_path / "bk")
        txm.wal.close()
        with pytest.raises(WALError):
            restore_backup(tmp_path / "bk", wal_path)

    def test_tampered_backup_is_detected_before_any_write(self, wal_path, tmp_path):
        txm = managed(wal_path)
        grow_history(txm, txns=3)
        backup_journal(txm.wal, tmp_path / "bk")
        txm.wal.close()
        flip_crc_digit(tmp_path / "bk" / wal_path.name)
        with pytest.raises(WALError, match="checksum"):
            restore_backup(tmp_path / "bk", tmp_path / "restored.wal")
        assert not (tmp_path / "restored.wal").exists()

    def test_crash_during_copy_leaves_no_destination(self, wal_path, tmp_path):
        injector = FaultInjector(seed=9)
        txm = managed(wal_path)
        grow_history(txm, txns=3)
        injector.arm("backup.copy", at_call=1)
        with pytest.raises(InjectedFault):
            backup_journal(txm.wal, tmp_path / "bk", fault_injector=injector)
        assert not (tmp_path / "bk").exists()
        # disarmed, the retry succeeds from scratch
        report = backup_journal(txm.wal, tmp_path / "bk", fault_injector=injector)
        assert (tmp_path / "bk" / "backup.json").exists()
        assert report.files >= 1
        txm.wal.close()


class TestPitrCrashMatrix:
    """One fault per run at every PITR fault point, buffered and durable.

    Whatever single fault interrupts archiving, undo replay or a backup
    copy, recovery of the journal must still land byte-identically on the
    last committed state — the fault never corrupts durable history.
    """

    POINTS = ["wal.archive", "pitr.undo", "backup.copy"]

    @pytest.mark.parametrize("durable", [False, True], ids=["buffered", "durable"])
    @pytest.mark.parametrize("point", POINTS)
    def test_single_fault_preserves_committed_history(
        self, wal_path, tmp_path, point, durable
    ):
        injector = FaultInjector(seed=17)
        txm = managed(wal_path, durable=durable, injector=injector)
        commits = grow_history(txm, txns=4)
        committed = db_fingerprint(txm.database.db)
        target = commits[1]
        expected_asof = db_fingerprint(materialize_as_of(txm.wal, target)[0])

        injector.arm(point, at_call=1)
        with pytest.raises(InjectedFault):
            if point == "wal.archive":
                txm.wal.truncate_before(txm.checkpoint())
            elif point == "pitr.undo":
                materialize_as_of(txm.wal, target, fault_injector=injector)
            else:
                backup_journal(txm.wal, tmp_path / "bk", fault_injector=injector)
        txm.wal.close()  # hard crash right after the fault

        recovered, _ = recover_warehouse(wal_path)
        assert db_fingerprint(recovered) == committed
        # AS-OF still materializes the same historical state after the crash
        undone, _ = materialize_as_of(wal_path, target)
        assert db_fingerprint(undone) == expected_asof


class TestDoctorSweep:
    def _history(self, wal_path, *, compact=True):
        txm = managed(wal_path)
        grow_history(txm, txns=4, compact_after=1 if compact else None)
        txm.wal.close()

    def test_clean_journal_sweeps_clean(self, wal_path):
        self._history(wal_path)
        sweep = sweep_journal(wal_path)
        assert sweep["problems"] == []
        assert sweep["checksum_failures"] == 0
        assert sweep["archive_segments"] == 1
        assert sweep["archived_records"] > 0

    def test_checksum_tamper_fails_the_doctor(self, wal_path):
        self._history(wal_path, compact=False)
        flip_crc_digit(wal_path)
        sweep = sweep_journal(wal_path)
        assert sweep["checksum_failures"] == 1
        assert any(sev == "fail" for sev, _ in sweep["problems"])
        out = io.StringIO()
        assert cli_main(["doctor", "--wal", str(wal_path)], out=out) == 2
        assert "checksum mismatch" in out.getvalue()

    def test_missing_segment_warns(self, wal_path):
        self._history(wal_path)
        next(wal_path.parent.glob("*.seg")).unlink()
        sweep = sweep_journal(wal_path)
        assert [sev for sev, _ in sweep["problems"]] == ["warn"]
        out = io.StringIO()
        assert cli_main(["doctor", "--wal", str(wal_path)], out=out) == 1
        assert "missing" in out.getvalue()

    def test_stray_segment_warns(self, wal_path):
        self._history(wal_path, compact=False)
        stray = wal_path.with_name(wal_path.name + ".0009.seg")
        stray.write_text("", encoding="utf-8")
        sweep = sweep_journal(wal_path)
        assert [sev for sev, _ in sweep["problems"]] == ["warn"]
        assert "not named by the manifest" in sweep["problems"][0][1]

    def test_doctor_publishes_sweep_metrics(self, wal_path):
        from repro.observability import MetricsRegistry, run_doctor

        self._history(wal_path)
        flip_crc_digit(wal_path)
        metrics = MetricsRegistry()
        report = run_doctor(metrics=metrics, wal_path=wal_path)
        assert report.exit_code == 2
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["wal.checksum_failures"] == 1
        assert snapshot["gauges"]["wal.archive_segments"] == 1
        assert report.wal_stats["checksum_failures"] == 1


class TestAsOfQuerySurface:
    def _history_with_point(self, wal_path):
        txm = managed(wal_path)
        with txm.transaction():
            txm.evolution.create_member("Org", "idX", "X", 5, parents=["idP1"])
        point = txm.create_restore_point("before-y")
        with txm.transaction():
            txm.evolution.create_member("Org", "idY", "Y", 6, parents=["idP1"])
        return txm, point

    def test_snapshot_mirrors_the_cursor_surface(self, wal_path):
        txm, point = self._history_with_point(wal_path)
        snapshot = open_as_of(txm.wal, "before-y")
        assert snapshot.lsn == point
        assert snapshot.version == point
        member_ids = set(snapshot.schema.dimensions["Org"].members)
        assert "idX" in member_ids and "idY" not in member_ids
        assert snapshot.mvft is snapshot.mvft  # cached
        text = snapshot.mvql_session().execute_to_text("SHOW MODES")
        assert "tcm" in text
        assert snapshot.cube().modes
        txm.wal.close()

    def test_mvql_session_as_of_classmethod(self, wal_path):
        from repro.mvql import MVQLSession

        txm, _ = self._history_with_point(wal_path)
        txm.wal.close()
        session = MVQLSession.as_of(wal_path, "before-y")
        assert "tcm" in session.execute_to_text("SHOW MODES")

    def test_cube_from_warehouse_as_of(self, wal_path):
        from repro.olap import Cube

        txm, _ = self._history_with_point(wal_path)
        txm.wal.close()
        cube = Cube.from_warehouse(wal_path, as_of="before-y")
        assert "tcm" in cube.modes
        member_ids = set(cube.schema.dimensions["Org"].members)
        assert "idX" in member_ids and "idY" not in member_ids

    def test_snapshot_manager_opens_as_of_cursors(self, wal_path):
        from repro.concurrency import SnapshotManager

        txm, point = self._history_with_point(wal_path)
        manager = SnapshotManager(txm)
        snapshot = manager.open_as_of_cursor("before-y")
        assert snapshot.version == point < manager.version
        txm.wal.close()

    def test_snapshot_manager_without_wal_refuses(self):
        from repro.concurrency import SnapshotManager
        from repro.concurrency.errors import SnapshotError

        manager = SnapshotManager(TransactionManager(build_schema()))
        with pytest.raises(SnapshotError, match="journal"):
            manager.open_as_of_cursor()


class TestCli:
    def _history(self, wal_path):
        txm = managed(wal_path)
        grow_history(txm, txns=3)
        txm.create_restore_point("golden")
        grow_history(txm, txns=2, base=200)
        txm.wal.close()

    def test_recover_to_flag(self, wal_path):
        self._history(wal_path)
        out = io.StringIO()
        assert cli_main(["recover", str(wal_path), "--to", "golden"], out=out) == 0
        assert "restore point 'golden'" in out.getvalue()
        assert "table dept" in out.getvalue()

    def test_recover_to_unknown_target_exits_2(self, wal_path):
        self._history(wal_path)
        out = io.StringIO()
        assert cli_main(["recover", str(wal_path), "--to", "nope"], out=out) == 2
        assert "failed" in out.getvalue()

    def test_backup_restore_asof_round_trip(self, wal_path, tmp_path):
        self._history(wal_path)
        out = io.StringIO()
        assert (
            cli_main(["backup", str(wal_path), str(tmp_path / "bk")], out=out) == 0
        )
        assert "backup:" in out.getvalue()
        out = io.StringIO()
        restored = tmp_path / "restored.wal"
        assert (
            cli_main(["restore", str(tmp_path / "bk"), str(restored)], out=out)
            == 0
        )
        out = io.StringIO()
        assert (
            cli_main(
                ["asof", str(restored), "SHOW MODES", "--at", "golden"], out=out
            )
            == 0
        )
        assert "tcm" in out.getvalue()
