"""Transactional evolution: all-or-nothing compound operations."""

import pytest

from repro.core import EvolutionManager, OperatorError, UnknownMemberVersionError
from repro.robustness import (
    FaultInjector,
    InjectedFault,
    TransactionError,
    TransactionManager,
)

from .conftest import build_schema, fingerprint


def merge(ev: EvolutionManager):
    return ev.merge_members(
        "Org",
        ["idV1", "idV2"],
        "idV12",
        "V12",
        10,
        reverse_shares={"idV1": 0.5, "idV2": None},
    )


class TestLifecycle:
    def test_commit_applies_compound_operation(self, schema):
        txm = TransactionManager(schema)
        with txm.transaction():
            result = merge(txm.evolution)
        assert [r.operator for r in result.records] == [
            "Exclude", "Exclude", "Insert", "Associate", "Associate",
        ]
        assert "idV12" in schema.dimension("Org")
        assert txm.committed == 1 and txm.rolled_back == 0

    def test_operator_outside_transaction_is_rejected(self, schema):
        txm = TransactionManager(schema)
        with pytest.raises(TransactionError):
            txm.evolution.create_member("Org", "idX", "X", 5, parents=["idP1"])
        assert "idX" not in schema.dimension("Org")

    def test_nested_begin_is_rejected(self, schema):
        txm = TransactionManager(schema)
        txm.begin()
        with pytest.raises(TransactionError):
            txm.begin()
        txm.rollback()

    def test_commit_without_transaction_is_rejected(self, schema):
        txm = TransactionManager(schema)
        with pytest.raises(TransactionError):
            txm.commit()
        with pytest.raises(TransactionError):
            txm.rollback()

    def test_execute_helper_commits(self, schema):
        txm = TransactionManager(schema)
        result = txm.execute(merge)
        assert result.operation == "merge"
        assert "idV12" in schema.dimension("Org")


class TestRollback:
    def test_explicit_rollback_restores_fingerprint(self, schema):
        before = fingerprint(schema)
        txm = TransactionManager(schema)
        txm.begin()
        merge(txm.evolution)
        assert fingerprint(schema) != before
        txm.rollback()
        assert fingerprint(schema) == before

    def test_rollback_truncates_operator_journal(self, schema):
        txm = TransactionManager(schema)
        txm.begin()
        merge(txm.evolution)
        assert len(txm.editor.journal) == 5
        txm.rollback()
        assert txm.editor.journal == []

    def test_domain_error_mid_sequence_rolls_back_everything(self, schema):
        before = fingerprint(schema)
        txm = TransactionManager(schema)
        with pytest.raises(UnknownMemberVersionError):
            with txm.transaction():
                # The merge succeeds, then the next operation references a
                # member that does not exist — everything must unwind.
                merge(txm.evolution)
                txm.evolution.create_member(
                    "Org", "idZ", "Z", 11, parents=["idNOPE"]
                )
        assert fingerprint(schema) == before
        assert txm.rolled_back == 1

    def test_rolled_back_facts_are_removed(self, schema):
        before = fingerprint(schema)
        txm = TransactionManager(schema)
        txm.begin()
        txm.add_fact({"Org": "idV"}, 3, {"m": 7.0})
        assert len(schema.facts) == 1
        txm.rollback()
        assert len(schema.facts) == 0
        assert fingerprint(schema) == before

    def test_committed_facts_survive(self, schema):
        txm = TransactionManager(schema)
        with txm.transaction():
            txm.add_fact({"Org": "idV"}, 3, {"m": 7.0})
        assert len(schema.facts) == 1

    def test_statement_failure_keeps_transaction_usable(self, schema):
        """A rejected operator leaves no trace and the txn stays open."""
        txm = TransactionManager(schema)
        txm.begin()
        with pytest.raises(OperatorError):
            txm.evolution.merge_members("Org", ["idV1"], "idX", "X", 10)
        # the transaction is still active and can do real work
        merge(txm.evolution)
        txm.commit()
        assert "idV12" in schema.dimension("Org")


FAULT_SCHEDULE = [
    ("txn.op.pre", 1),
    ("txn.op.pre", 2),
    ("txn.op.pre", 3),
    ("txn.op.pre", 4),
    ("txn.op.pre", 5),
    ("txn.op.post", 1),
    ("txn.op.post", 3),
    ("txn.op.post", 5),
    ("txn.commit", 1),
]


class TestFaultAtEveryPoint:
    """Acceptance: a compound operation aborted at *any* injected fault
    point leaves the schema byte-identical to its pre-transaction state."""

    @pytest.mark.parametrize("point,at_call", FAULT_SCHEDULE)
    def test_merge_aborted_at_fault_point_is_invisible(self, point, at_call):
        schema = build_schema()
        before = fingerprint(schema)
        injector = FaultInjector(seed=1234)
        injector.arm(point, at_call=at_call)
        txm = TransactionManager(schema, fault_injector=injector)
        with pytest.raises(InjectedFault):
            with txm.transaction():
                merge(txm.evolution)
        assert injector.trip_log == [(point, at_call)]
        assert fingerprint(schema) == before
        assert txm.editor.journal == []

    def test_seeded_probability_faults_are_deterministic(self):
        def run(seed):
            injector = FaultInjector(seed=seed)
            injector.arm("txn.op.pre", probability=0.5, times=100)
            schema = build_schema()
            txm = TransactionManager(schema, fault_injector=injector)
            outcomes = []
            for i in range(6):
                try:
                    with txm.transaction():
                        txm.evolution.create_member(
                            "Org", f"id{i}", f"M{i}", 5, parents=["idP1"]
                        )
                    outcomes.append("ok")
                except InjectedFault:
                    outcomes.append("fault")
            return outcomes

        assert run(7) == run(7)
        assert "fault" in run(7) and "ok" in run(7)


class TestTransactionalDatabase:
    def make(self, schema):
        from repro.storage import Column, Database, ForeignKey, INTEGER, TEXT

        db = Database("wh")
        db.create_table(
            "dim", [Column("id", TEXT)], primary_key=["id"]
        )
        db.create_table(
            "fact",
            [Column("id", TEXT), Column("t", INTEGER)],
            foreign_keys=[ForeignKey(("id",), "dim", ("id",))],
        )
        return TransactionManager(schema, database=db), db

    def test_inserts_roll_back(self, schema):
        txm, db = self.make(schema)
        txm.begin()
        txm.database.insert("dim", {"id": "a"})
        txm.database.insert("fact", {"id": "a", "t": 1})
        assert db.total_rows() == 2
        txm.rollback()
        assert db.total_rows() == 0

    def test_updates_restore_pre_images(self, schema):
        txm, db = self.make(schema)
        db.insert("dim", {"id": "a"})
        txm.begin()
        txm.database.update("dim", lambda r: r["id"] == "a", {"id": "b"})
        assert db.table("dim").find(id="b")
        txm.rollback()
        assert db.table("dim").find(id="a")
        assert not db.table("dim").find(id="b")

    def test_deletes_restore_rows(self, schema):
        txm, db = self.make(schema)
        db.insert("dim", {"id": "a"})
        txm.begin()
        assert txm.database.delete("dim", lambda r: True) == 1
        assert db.total_rows() == 0
        txm.rollback()
        assert db.table("dim").find(id="a")

    def test_commit_keeps_rows(self, schema):
        txm, db = self.make(schema)
        with txm.transaction():
            txm.database.insert("dim", {"id": "a"})
        assert db.total_rows() == 1

    def test_mixed_schema_and_db_rollback(self, schema):
        txm, db = self.make(schema)
        before = fingerprint(schema)
        txm.begin()
        merge(txm.evolution)
        txm.database.insert("dim", {"id": "idV12"})
        txm.rollback()
        assert fingerprint(schema) == before
        assert db.total_rows() == 0
