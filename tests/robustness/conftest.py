"""Shared fixtures for the robustness tests."""

import json

import pytest

from repro.core import (
    Interval,
    Measure,
    MemberVersion,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
)
from repro.core.serialization import schema_to_dict


def build_schema():
    """A small Table-11-style schema: one division, three departments."""
    d = TemporalDimension("Org")
    d.add_member(MemberVersion("idP1", "P1", Interval(0), level="Division"))
    for mvid in ("idV", "idV1", "idV2"):
        d.add_member(MemberVersion(mvid, mvid[2:], Interval(0), level="Department"))
        d.add_relationship(TemporalRelationship(mvid, "idP1", Interval(0)))
    return TemporalMultidimensionalSchema([d], [Measure("m", SUM)])


def fingerprint(schema):
    """A canonical serialization — byte-identity is compared on this."""
    return json.dumps(schema_to_dict(schema), sort_keys=True)


@pytest.fixture()
def schema():
    return build_schema()
