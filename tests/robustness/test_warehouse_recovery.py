"""Relational journaling, warehouse recovery, and the crash matrix."""

import json

import pytest

from repro.robustness import (
    FaultInjector,
    InjectedFault,
    RecoveryError,
    TransactionManager,
    WALError,
    WriteAheadJournal,
    recover_schema,
    recover_warehouse,
)
from repro.storage import (
    INTEGER,
    TEXT,
    Column,
    Database,
    ForeignKey,
    database_from_dict,
    table_schema_from_dict,
    table_schema_to_dict,
)

from .conftest import build_schema, fingerprint


def db_fingerprint(db):
    """Canonical serialization — byte-identity is compared on this."""
    return json.dumps(db.dump(), sort_keys=True)


def make_warehouse(fault_injector=None):
    """A two-table star fragment: emp.dept_id → dept.id, one secondary index."""
    db = Database("wh", fault_injector=fault_injector)
    db.create_table(
        "dept",
        [Column("id", INTEGER), Column("name", TEXT)],
        primary_key=["id"],
    )
    db.create_table(
        "emp",
        [
            Column("id", INTEGER),
            Column("dept_id", INTEGER),
            Column("name", TEXT, nullable=True),
        ],
        primary_key=["id"],
        foreign_keys=[ForeignKey(("dept_id",), "dept", ("id",))],
    )
    db.table("emp").create_index(("dept_id",))
    return db


@pytest.fixture()
def wal_path(tmp_path):
    return tmp_path / "warehouse.wal"


class TestSerializationRoundTrips:
    def test_table_schema_round_trip(self):
        schema = make_warehouse().table("emp").schema
        payload = table_schema_to_dict(schema)
        json.dumps(payload)  # must be JSON-serializable as-is
        assert table_schema_from_dict(payload) == schema
        assert table_schema_to_dict(table_schema_from_dict(payload)) == payload

    def test_database_dump_round_trip_preserves_rids(self):
        db = make_warehouse()
        db.insert("dept", {"id": 1, "name": "sales"})
        db.insert("dept", {"id": 2, "name": "hr"})
        db.insert("emp", {"id": 10, "dept_id": 1, "name": None})
        db.table("dept").delete(lambda r: r["id"] == 1)  # leaves a hole
        rebuilt = database_from_dict(db.dump())
        assert db_fingerprint(rebuilt) == db_fingerprint(db)
        # rid stability: the surviving dept row kept its slot
        assert rebuilt.table("dept").row(1) == {"id": 2, "name": "hr"}
        # secondary indexes came back too
        assert rebuilt.table("emp").index_specs() == db.table("emp").index_specs()


class TestTornTailRepair:
    def _journal_with_commit(self, wal_path):
        wal = WriteAheadJournal(wal_path)
        txid = wal.next_txid()
        wal.begin(txid)
        wal.dml(txid, "row.insert", "dept", 0, row={"id": 1, "name": "sales"})
        wal.commit(txid)
        wal.close()
        return wal

    def test_append_after_torn_tail_does_not_corrupt(self, wal_path):
        self._journal_with_commit(wal_path)
        with open(wal_path, "a", encoding="utf-8") as f:
            f.write('{"lsn": 99, "format": 1, "kind": "com')  # crash mid-append
        # The regression: reopening for append used to concatenate the next
        # record onto the torn fragment, turning a recoverable torn tail
        # into mid-file corruption that records() rejects wholesale.
        reopened = WriteAheadJournal(wal_path)
        txid = reopened.next_txid()
        reopened.begin(txid)
        reopened.commit(txid)
        records = reopened.records()
        kinds = [r["kind"] for r in records]
        assert kinds == ["begin", "dml", "commit", "begin", "commit"]
        lsns = [r["lsn"] for r in records]
        assert lsns == sorted(lsns) and len(set(lsns)) == len(lsns)
        reopened.close()

    def test_bytes_reflect_truncated_size_not_raw_size(self, wal_path):
        self._journal_with_commit(wal_path)
        durable_size = wal_path.stat().st_size
        with open(wal_path, "a", encoding="utf-8") as f:
            f.write('{"torn')
        reopened = WriteAheadJournal(wal_path)
        assert reopened.size_bytes == durable_size
        assert wal_path.stat().st_size == durable_size
        reopened.close()

    def test_valid_final_line_missing_newline_is_kept(self, wal_path):
        self._journal_with_commit(wal_path)
        with open(wal_path, "rb+") as f:
            f.seek(-1, 2)
            f.truncate()  # drop just the trailing newline
        reopened = WriteAheadJournal(wal_path)
        assert [r["kind"] for r in reopened.records()] == ["begin", "dml", "commit"]
        reopened.close()

    def test_terminated_garbage_mid_file_still_raises(self, wal_path):
        wal = self._journal_with_commit(wal_path)
        valid = json.dumps(
            {"lsn": wal.last_lsn + 1, "format": 1, "kind": "abort", "txid": 9}
        )
        with open(wal_path, "a", encoding="utf-8") as f:
            f.write("this is not json\n" + valid + "\n")
        # garbage *mid-file* (a terminated line followed by a valid record)
        # is corruption, not a torn tail — tail repair must not mask it
        with pytest.raises(WALError):
            WriteAheadJournal(wal_path).records()


class TestTruncateResilience:
    def test_truncate_fault_leaves_journal_usable(self, schema, wal_path):
        injector = FaultInjector(seed=5)
        txm = TransactionManager(schema, wal=wal_path, fault_injector=injector)
        with txm.transaction():
            txm.evolution.create_member("Org", "idX", "X", 5, parents=["idP1"])
        lsn = txm.checkpoint()
        before = txm.wal.records()
        injector.arm("wal.truncate", at_call=1)
        with pytest.raises(InjectedFault):
            txm.wal.truncate_before(lsn)
        # the handle was reopened: the journal accepts appends and still
        # reads back the untruncated record sequence
        assert txm.wal.records() == before
        txm.wal.append("commit", txid=999)
        assert txm.wal.records()[-1]["kind"] == "commit"
        assert not list(wal_path.parent.glob("*.compact"))
        # disarmed, compaction goes through
        assert txm.wal.truncate_before(lsn) > 0
        assert txm.wal.records()[0]["lsn"] == lsn
        txm.wal.close()

    def test_append_after_close_raises_walerror(self, wal_path):
        wal = WriteAheadJournal(wal_path)
        wal.close()
        with pytest.raises(WALError):
            wal.append("begin", txid=1)


def managed(schema, wal_path, *, durable=False, injector=None):
    """A TransactionManager over a fresh warehouse, like production wiring."""
    db = make_warehouse(fault_injector=injector)
    wal = WriteAheadJournal(wal_path, durable=durable, fault_injector=injector)
    txm = TransactionManager(
        schema, wal=wal, database=db, fault_injector=injector
    )
    return txm


class TestWarehouseJournaling:
    def test_checkpointed_tables_need_no_catalog_record(self, schema, wal_path):
        txm = managed(schema, wal_path)
        with txm.transaction():
            txm.database.insert("dept", {"id": 1, "name": "sales"})
            txm.database.insert("dept", {"id": 2, "name": "hr"})
        kinds = [r["kind"] for r in txm.wal.records()]
        assert kinds == ["checkpoint", "begin", "dml", "dml", "commit"]
        txm.wal.close()

    def test_catalog_precedes_first_dml_of_a_new_table(self, schema, wal_path):
        txm = managed(schema, wal_path)
        # created after the checkpoint: the dump does not describe it
        txm.database.db.create_table(
            "region", [Column("id", INTEGER)], primary_key=["id"]
        )
        with txm.transaction():
            txm.database.insert("region", {"id": 1})
            txm.database.insert("region", {"id": 2})
        kinds = [r["kind"] for r in txm.wal.records()]
        assert kinds == ["checkpoint", "begin", "catalog", "dml", "dml", "commit"]
        catalog = next(r for r in txm.wal.records() if r["kind"] == "catalog")
        assert catalog["table"]["name"] == "region"
        txm.wal.close()
        recovered, report = recover_warehouse(wal_path)
        assert report.tables_created == 1
        assert len(recovered.table("region")) == 2

    def test_checkpoint_embeds_database_dump(self, schema, wal_path):
        txm = managed(schema, wal_path)
        checkpoint = txm.wal.records()[0]
        assert checkpoint["database"]["name"] == "wh"
        assert {t["schema"]["name"] for t in checkpoint["database"]["tables"]} == {
            "dept",
            "emp",
        }
        txm.wal.close()

    def test_dml_records_carry_pre_and_post_images(self, schema, wal_path):
        txm = managed(schema, wal_path)
        with txm.transaction():
            txm.database.insert("dept", {"id": 1, "name": "sales"})
        with txm.transaction():
            txm.database.update("dept", lambda r: r["id"] == 1, {"name": "Sales"})
            txm.database.delete("dept", lambda r: r["id"] == 1)
        dml = [r for r in txm.wal.records() if r["kind"] == "dml"]
        assert [r["action"] for r in dml] == [
            "row.insert",
            "row.update",
            "row.delete",
        ]
        assert dml[0]["row"] == {"id": 1, "name": "sales"}
        assert dml[1]["pre"] == {"id": 1, "name": "sales"}
        assert dml[1]["row"] == {"id": 1, "name": "Sales"}
        assert dml[2]["pre"] == {"id": 1, "name": "Sales"}
        assert "row" not in dml[2]
        txm.wal.close()

    def test_failed_insert_many_leaves_no_dml_records(self, schema, wal_path):
        injector = FaultInjector(seed=7)
        txm = managed(schema, wal_path, injector=injector)
        with txm.transaction():
            txm.database.insert("dept", {"id": 1, "name": "sales"})
            injector.arm("db.insert_many.row", at_call=2)
            with pytest.raises(InjectedFault):
                txm.database.insert_many(
                    "emp",
                    [{"id": 10, "dept_id": 1}, {"id": 11, "dept_id": 1}],
                )
        # the statement rolled back before journaling: no emp dml records,
        # so recovery cannot replay rows the statement peeled off
        tables = [r["table"] for r in txm.wal.records() if r["kind"] == "dml"]
        assert tables == ["dept"]
        txm.wal.close()
        recovered, _ = recover_warehouse(wal_path)
        assert len(recovered.table("emp")) == 0
        assert len(recovered.table("dept")) == 1

    def test_rolled_back_catalog_is_reemitted_by_next_transaction(
        self, schema, wal_path
    ):
        txm = managed(schema, wal_path)
        txm.database.db.create_table(
            "region", [Column("id", INTEGER)], primary_key=["id"]
        )
        try:
            with txm.transaction():
                txm.database.insert("region", {"id": 1})
                raise RuntimeError("abort")
        except RuntimeError:
            pass
        with txm.transaction():
            txm.database.insert("region", {"id": 1})
        catalogs = [r for r in txm.wal.records() if r["kind"] == "catalog"]
        assert len(catalogs) == 2  # once under the aborted txid, once again
        txm.wal.close()
        recovered, report = recover_warehouse(wal_path)
        assert report.transactions_discarded == 1
        assert len(recovered.table("region")) == 1


class TestRecoverWarehouse:
    def test_recovers_committed_state_byte_identically(self, schema, wal_path):
        txm = managed(schema, wal_path)
        db = txm.database
        with txm.transaction():
            db.insert("dept", {"id": 1, "name": "sales"})
            db.insert_many(
                "emp",
                [{"id": 10, "dept_id": 1}, {"id": 11, "dept_id": 1}],
            )
        with txm.transaction():
            db.update("emp", lambda r: r["id"] == 10, {"name": "Ada"})
            db.delete("emp", lambda r: r["id"] == 11)
        expected = db_fingerprint(db.db)
        txm.wal.close()
        recovered, report = recover_warehouse(wal_path)
        assert db_fingerprint(recovered) == expected
        assert report.transactions_replayed == 2
        assert report.rows_inserted == 3
        assert report.rows_updated == 1
        assert report.rows_deleted == 1

    def test_uncommitted_transaction_is_discarded(self, schema, wal_path):
        txm = managed(schema, wal_path)
        with txm.transaction():
            txm.database.insert("dept", {"id": 1, "name": "sales"})
        expected = db_fingerprint(txm.database.db)
        txm.begin()
        txm.database.insert("dept", {"id": 2, "name": "hr"})
        txm.wal.close()  # crash: no commit, no rollback
        recovered, report = recover_warehouse(wal_path)
        assert db_fingerprint(recovered) == expected
        assert report.transactions_discarded == 1

    def test_recovery_replays_from_compacted_checkpoint(self, schema, wal_path):
        txm = managed(schema, wal_path)
        with txm.transaction():
            txm.database.insert("dept", {"id": 1, "name": "sales"})
        lsn = txm.checkpoint()
        txm.wal.truncate_before(lsn)
        with txm.transaction():
            txm.database.insert("dept", {"id": 2, "name": "hr"})
        expected = db_fingerprint(txm.database.db)
        txm.wal.close()
        recovered, report = recover_warehouse(wal_path)
        assert db_fingerprint(recovered) == expected
        assert report.tables_restored == 2  # from the checkpoint dump
        assert report.rows_inserted == 1  # only the post-checkpoint insert

    def test_schema_recovery_counts_skipped_warehouse_records(
        self, schema, wal_path
    ):
        txm = managed(schema, wal_path)
        with txm.transaction():
            txm.database.insert("dept", {"id": 1, "name": "sales"})
            txm.database.insert("dept", {"id": 2, "name": "hr"})
        txm.wal.close()
        _, report = recover_schema(wal_path)
        assert report.warehouse_records_skipped == 2  # the two dml records
        assert "recover_warehouse" in report.to_text()

    def test_verify_rejects_dangling_foreign_keys(self, schema, wal_path):
        txm = managed(schema, wal_path)
        with txm.transaction():
            txm.database.insert("dept", {"id": 1, "name": "sales"})
            txm.database.insert("emp", {"id": 10, "dept_id": 1, "name": None})
        # hand-journal a committed delete of the parent row: the journal is
        # now self-inconsistent and verification must refuse it
        txid = txm.wal.next_txid()
        txm.wal.begin(txid)
        txm.wal.dml(txid, "row.delete", "dept", 0)
        txm.wal.commit(txid)
        txm.wal.close()
        with pytest.raises(RecoveryError, match="foreign key"):
            recover_warehouse(wal_path)
        recovered, _ = recover_warehouse(wal_path, verify=False)
        assert len(recovered.table("dept")) == 0

    def test_journal_without_checkpoint_is_rejected(self, wal_path):
        wal = WriteAheadJournal(wal_path)
        txid = wal.next_txid()
        wal.begin(txid)
        wal.commit(txid)
        wal.close()
        with pytest.raises(RecoveryError, match="checkpoint"):
            recover_warehouse(wal_path)

    def test_missing_journal_is_rejected(self, tmp_path):
        with pytest.raises(RecoveryError):
            recover_warehouse(tmp_path / "absent.wal")


class TestCrashMatrix:
    """One fault per run, at every relational fault point, durable and not.

    The property under test: whatever single fault interrupts transaction
    2, recovery lands byte-identically on the state transaction 1
    committed — for the schema *and* the warehouse together.
    """

    POINTS = [
        "wal.append",
        "wal.dml",
        "txn.commit",
        "db.insert",
        "db.insert_many.row",
    ]

    @pytest.mark.parametrize("durable", [False, True], ids=["buffered", "durable"])
    @pytest.mark.parametrize("point", POINTS)
    def test_single_fault_recovers_to_last_commit(self, wal_path, point, durable):
        schema = build_schema()
        injector = FaultInjector(seed=13)
        txm = managed(schema, wal_path, durable=durable, injector=injector)
        db = txm.database

        # transaction 1: schema evolution and relational writes commit
        with txm.transaction():
            txm.evolution.create_member("Org", "idX", "X", 5, parents=["idP1"])
            db.insert("dept", {"id": 1, "name": "sales"})
            db.insert_many(
                "emp",
                [{"id": 10, "dept_id": 1}, {"id": 11, "dept_id": 1}],
            )
        committed_schema = fingerprint(schema)
        committed_db = db_fingerprint(db.db)

        # transaction 2: same workload shape, with one armed fault
        injector.arm(point, at_call=1)
        with pytest.raises(InjectedFault):
            txm.begin()
            txm.evolution.create_member("Org", "idY", "Y", 6, parents=["idP1"])
            db.insert("dept", {"id": 2, "name": "hr"})
            db.insert_many(
                "emp",
                [{"id": 12, "dept_id": 2}, {"id": 13, "dept_id": 2}],
            )
            db.update("emp", lambda r: r["id"] == 12, {"name": "Bo"})
            db.delete("emp", lambda r: r["id"] == 13)
            txm.commit()
        txm.wal.close()  # hard crash: no rollback, no abort record

        recovered_schema, schema_report = recover_schema(wal_path)
        recovered_db, db_report = recover_warehouse(wal_path)
        assert fingerprint(recovered_schema) == committed_schema
        assert db_fingerprint(recovered_db) == committed_db
        assert schema_report.transactions_replayed == 1
        assert db_report.transactions_replayed == 1

    def test_fault_after_durability_point_keeps_the_transaction(self, wal_path):
        # txn.commit.durable fires after the commit record: the transaction
        # IS durable, so recovery must include it.
        schema = build_schema()
        injector = FaultInjector(seed=13)
        txm = managed(schema, wal_path, injector=injector)
        db = txm.database
        injector.arm("txn.commit.durable", at_call=1)
        with pytest.raises(InjectedFault):
            txm.begin()
            db.insert("dept", {"id": 1, "name": "sales"})
            txm.commit()
        txm.wal.close()
        recovered, report = recover_warehouse(wal_path)
        assert report.transactions_replayed == 1
        assert len(recovered.table("dept")) == 1
