"""Tests for the robustness subsystem (transactions, WAL, recovery, faults)."""
