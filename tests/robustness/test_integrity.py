"""IntegrityChecker: every invariant violation is detected, none invented.

The corruptions below are built through internals on purpose — the public
operator surface refuses to create them, which is exactly why recovery and
monitoring need a sweep-everything checker.
"""

import pytest

from repro.core import (
    Interval,
    Measure,
    MemberVersion,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
)
from repro.core.confidence import ConfidenceFactor, EM
from repro.core.facts import FactRow
from repro.core.mapping import IdentityMapping, MappingRelationship, MeasureMap
from repro.robustness import IntegrityChecker

from .conftest import build_schema


def check(schema):
    return IntegrityChecker(schema).run()


class TestCleanSchemas:
    def test_fixture_schema_is_clean(self, schema):
        report = check(schema)
        assert report.ok
        assert report.by_code() == {}
        assert report.to_text() == "integrity: OK (0 violations)"

    def test_case_study_is_clean(self):
        from repro.workloads.case_study import build_case_study

        report = check(build_case_study().schema)
        assert report.ok

    def test_schema_stays_clean_after_evolution(self, schema):
        from repro.robustness import TransactionManager

        txm = TransactionManager(schema)
        with txm.transaction():
            txm.evolution.merge_members(
                "Org", ["idV1", "idV2"], "idV12", "V12", 10,
                reverse_shares={"idV1": 0.5, "idV2": None},
            )
        assert check(schema).ok


class TestIntervalAndRelationship:
    def test_non_interval_valid_time_is_flagged(self, schema):
        dim = schema.dimension("Org")
        object.__setattr__(dim.member("idV"), "valid_time", (5, 2))
        report = check(schema)
        assert not report.ok
        assert report.by_code()["interval"] >= 1
        assert any(v.subject == "Org/idV" for v in report.violations)

    def test_relationship_with_bad_interval_is_flagged(self, schema):
        dim = schema.dimension("Org")
        object.__setattr__(dim._relationships[0], "valid_time", "not-an-interval")
        report = check(schema)
        assert "interval" in report.by_code()

    def test_relationship_to_missing_member_is_flagged(self, schema):
        dim = schema.dimension("Org")
        dim._relationships.append(
            TemporalRelationship("idV", "ghost", Interval(0))
        )
        report = check(schema)
        assert any(
            v.code == "relationship" and "missing member" in v.message
            for v in report.violations
        )

    def test_definition_2_escape_is_flagged(self, schema):
        dim = schema.dimension("Org")
        dim.add_member(
            MemberVersion("idLate", "Late", Interval(5), level="Department")
        )
        # relationship valid from 0, but the child only exists from 5
        dim._relationships.append(
            TemporalRelationship("idLate", "idP1", Interval(0))
        )
        report = check(schema)
        assert any(
            v.code == "relationship" and "Definition 2" in v.message
            for v in report.violations
        )


class TestAcyclicity:
    def test_cycle_in_some_structure_version_is_flagged(self, schema):
        dim = schema.dimension("Org")
        # idV -> idP1 already exists; closing the loop breaks every D(t)
        dim._relationships.append(
            TemporalRelationship("idP1", "idV", Interval(0))
        )
        report = check(schema)
        assert report.by_code().get("acyclicity", 0) >= 1


class TestFacts:
    def _smuggle(self, schema, coordinates, t, values=None):
        schema.facts._rows.append(
            FactRow(coordinates=coordinates, t=t, values=values or {"m": 1.0})
        )

    def test_unknown_member_coordinate(self, schema):
        self._smuggle(schema, {"Org": "ghost"}, 3)
        report = check(schema)
        assert any(
            v.code == "fact" and "unknown member" in v.message
            for v in report.violations
        )

    def test_member_not_valid_at_t(self, schema):
        dim = schema.dimension("Org")
        dim.add_member(
            MemberVersion("idOld", "Old", Interval(0, 5), level="Department")
        )
        self._smuggle(schema, {"Org": "idOld"}, 10)
        report = check(schema)
        assert any(
            v.code == "fact" and "not valid at t=10" in v.message
            for v in report.violations
        )

    def test_non_leaf_member_violates_definition_5(self, schema):
        self._smuggle(schema, {"Org": "idP1"}, 3)  # idP1 has children at 3
        report = check(schema)
        assert any(
            v.code == "fact" and "Definition 5" in v.message
            for v in report.violations
        )

    def test_missing_coordinate_is_flagged(self, schema):
        self._smuggle(schema, {}, 3)
        report = check(schema)
        assert any(v.code == "fact" for v in report.violations)


class TestMappings:
    def test_measure_totality_is_enforced(self, schema):
        schema.mappings.add(MappingRelationship(source="idV1", target="idV2"))
        report = check(schema)
        totality = [
            v for v in report.violations
            if v.code == "mapping" and "confidence totality" in v.message
        ]
        assert len(totality) == 2  # forward and reverse both miss "m"

    def test_non_canonical_confidence_is_flagged(self, schema):
        bogus = MeasureMap(IdentityMapping(), ConfidenceFactor("zz", 9, 9))
        schema.mappings.add(
            MappingRelationship(
                source="idV1", target="idV2",
                forward={"m": bogus},
                reverse={"m": MeasureMap(IdentityMapping(), EM)},
            )
        )
        report = check(schema)
        assert any(
            v.code == "mapping" and "non-canonical" in v.message
            for v in report.violations
        )

    def test_unknown_endpoint_is_flagged(self, schema):
        schema.mappings.add(
            MappingRelationship(
                source="idV1", target="ghost",
                forward={"m": MeasureMap(IdentityMapping(), EM)},
                reverse={"m": MeasureMap(IdentityMapping(), EM)},
            )
        )
        report = check(schema)
        assert any(
            v.code == "mapping" and "not a member version" in v.message
            for v in report.violations
        )

    def test_cross_dimension_mapping_is_flagged(self):
        d1 = TemporalDimension("Org")
        d1.add_member(MemberVersion("idA", "A", Interval(0), level="L"))
        d2 = TemporalDimension("Geo")
        d2.add_member(MemberVersion("idB", "B", Interval(0), level="L"))
        schema = TemporalMultidimensionalSchema([d1, d2], [Measure("m", SUM)])
        schema.mappings.add(
            MappingRelationship(
                source="idA", target="idB",
                forward={"m": MeasureMap(IdentityMapping(), EM)},
                reverse={"m": MeasureMap(IdentityMapping(), EM)},
            )
        )
        report = check(schema)
        assert any(
            v.code == "mapping" and "different dimensions" in v.message
            for v in report.violations
        )


class TestMVidUniqueness:
    def test_duplicate_mvid_across_dimensions_is_flagged(self):
        d1 = TemporalDimension("Org")
        d1.add_member(MemberVersion("idA", "A", Interval(0), level="L"))
        d2 = TemporalDimension("Geo")
        d2.add_member(MemberVersion("idB", "B", Interval(0), level="L"))
        schema = TemporalMultidimensionalSchema([d1, d2], [Measure("m", SUM)])
        d2.add_member(MemberVersion("idA", "A again", Interval(0), level="L"))
        report = check(schema)
        assert any(v.code == "mvid" for v in report.violations)


class TestReport:
    def test_to_text_lists_every_violation(self, schema):
        dim = schema.dimension("Org")
        dim._relationships.append(
            TemporalRelationship("idV", "ghost", Interval(0))
        )
        schema.facts._rows.append(
            FactRow(coordinates={"Org": "ghost"}, t=3, values={"m": 1.0})
        )
        report = check(schema)
        text = report.to_text()
        assert "violation(s)" in text
        assert text.count("\n") == len(report.violations)
