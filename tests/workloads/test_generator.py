"""Tests for the synthetic workload generator."""

import pytest

from repro.workloads.generator import WorkloadConfig, generate_workload


class TestDeterminism:
    def test_same_seed_same_workload(self):
        a = generate_workload(WorkloadConfig(seed=11))
        b = generate_workload(WorkloadConfig(seed=11))
        assert a.events == b.events
        assert [
            (r.coordinates["org"], r.t, r.value("amount")) for r in a.schema.facts
        ] == [(r.coordinates["org"], r.t, r.value("amount")) for r in b.schema.facts]

    def test_different_seed_different_workload(self):
        a = generate_workload(WorkloadConfig(seed=11))
        b = generate_workload(WorkloadConfig(seed=12))
        assert a.events != b.events or list(a.schema.facts) != list(b.schema.facts)


class TestStructure:
    def test_generated_schema_validates(self):
        wl = generate_workload(WorkloadConfig(seed=5, n_years=4))
        wl.schema.validate()

    def test_event_mix_respects_config(self):
        cfg = WorkloadConfig(
            seed=5,
            n_years=3,
            splits_per_year=2,
            merges_per_year=1,
            reclassifications_per_year=0,
            transforms_per_year=1,
            creations_per_year=1,
            deletions_per_year=1,
        )
        wl = generate_workload(cfg)
        kinds = [kind for _, kind, _ in wl.events]
        assert kinds.count("split") == 4  # 2 per year × 2 evolution years
        assert kinds.count("merge") == 2
        assert kinds.count("create") == 2
        assert kinds.count("delete") == 2
        assert kinds.count("transform") == 2

    def test_structure_version_count_grows_with_years(self):
        short = generate_workload(WorkloadConfig(seed=5, n_years=2))
        long = generate_workload(WorkloadConfig(seed=5, n_years=6))
        assert len(long.schema.structure_versions()) > len(
            short.schema.structure_versions()
        )

    def test_facts_cover_every_year(self):
        cfg = WorkloadConfig(seed=5, n_years=4, start_year=2010)
        wl = generate_workload(cfg)
        years = {t // 12 for t in (r.t for r in wl.schema.facts)}
        assert years == {2010, 2011, 2012, 2013}

    def test_multiple_facts_per_year_use_distinct_months(self):
        cfg = WorkloadConfig(seed=5, n_years=2, facts_per_department_per_year=3)
        wl = generate_workload(cfg)
        months = {t % 12 for t in (r.t for r in wl.schema.facts)}
        assert len(months) == 3

    def test_amounts_within_bounds(self):
        cfg = WorkloadConfig(seed=5, amount_low=50.0, amount_high=60.0)
        wl = generate_workload(cfg)
        for row in wl.schema.facts:
            assert 50.0 <= row.value("amount") <= 60.0

    def test_mvft_buildable_end_to_end(self):
        wl = generate_workload(WorkloadConfig(seed=5, n_years=3))
        mvft = wl.schema.multiversion_facts()
        assert len(mvft.slice("tcm")) == len(wl.schema.facts)

    def test_deletions_produce_unmapped_facts(self):
        cfg = WorkloadConfig(
            seed=5,
            n_years=3,
            splits_per_year=0,
            merges_per_year=0,
            reclassifications_per_year=0,
            deletions_per_year=2,
        )
        wl = generate_workload(cfg)
        mvft = wl.schema.multiversion_facts()
        assert len(mvft.unmapped) > 0


class TestTwoDimWorkload:
    def test_deterministic(self):
        from repro.workloads import TwoDimWorkloadConfig, generate_two_dim_workload

        a = generate_two_dim_workload(TwoDimWorkloadConfig(seed=4))
        b = generate_two_dim_workload(TwoDimWorkloadConfig(seed=4))
        assert a.events == b.events
        assert len(a.schema.facts) == len(b.schema.facts)

    def test_schema_validates_and_builds_mvft(self):
        from repro.workloads import TwoDimWorkloadConfig, generate_two_dim_workload

        wl = generate_two_dim_workload(TwoDimWorkloadConfig(seed=4))
        wl.schema.validate()
        mvft = wl.schema.multiversion_facts()
        assert len(mvft.slice("tcm")) == len(wl.schema.facts)

    def test_facts_are_two_dimensional(self):
        from repro.workloads import TwoDimWorkloadConfig, generate_two_dim_workload

        wl = generate_two_dim_workload(TwoDimWorkloadConfig(seed=4))
        row = next(iter(wl.schema.facts))
        assert set(row.coordinates) == {"product", "store"}

    def test_cross_dimension_totals_preserved_in_exact_modes(self):
        from repro.workloads import TwoDimWorkloadConfig, generate_two_dim_workload

        wl = generate_two_dim_workload(TwoDimWorkloadConfig(seed=4))
        mvft = wl.schema.multiversion_facts()
        source_total = wl.schema.facts.total("amount")
        blocked = {u.mode for u in mvft.unmapped}
        for label in mvft.modes.labels:
            if label in blocked:
                continue
            rows = mvft.slice(label)
            if any(r.value("amount") is None for r in rows):
                continue
            total = sum(r.value("amount") for r in rows)
            assert total == pytest.approx(source_total, rel=1e-9)

    def test_both_dimensions_evolve(self):
        from repro.workloads import TwoDimWorkloadConfig, generate_two_dim_workload

        wl = generate_two_dim_workload(TwoDimWorkloadConfig(seed=1))
        kinds = {kind for _, kind, _ in wl.events}
        assert "product-split" in kinds or "product-merge" in kinds
        assert "store-reclassify" in kinds
