"""Tenant isolation of the shared result cache.

Server sessions pinned to the same snapshot share one
:class:`~repro.cache.VersionedResultCache` — that is the point of
warehouse-wide caching — but every key a secured session writes carries
its RLS policy digest, so two tenants with different row visibility can
never observe each other's cells, even when they issue the *same*
statement against the *same* version.
"""

from repro.cache import NO_POLICY, policy_digest
from repro.concurrency import SnapshotManager
from repro.robustness import TransactionManager
from repro.server.auth import TenantConfig
from repro.server.rls import RLSRule
from repro.server.session import ServerSession
from repro.workloads.case_study import ORG, build_case_study

STATEMENT = "SELECT amount BY year, org.Division"


def make_manager():
    return SnapshotManager(TransactionManager(build_case_study().schema))


def tenant(name, division):
    return TenantConfig(
        tenant=name,
        api_key=f"{name}-key",
        rls=(RLSRule(dimension=ORG, level="Division", values=(division,)),),
    )


def rows_of(payload):
    return {(row["group"][0], row["group"][1]) for row in payload["page"]}


class TestTenantIsolation:
    def test_same_snapshot_same_statement_disjoint_entries(self):
        manager = make_manager()
        sales = ServerSession(tenant("sales_co", "Sales"), manager)
        rd = ServerSession(tenant("rd_co", "R&D"), manager)
        assert sales.version == rd.version  # same pinned snapshot

        sales_rows = rows_of(sales.execute(STATEMENT))
        rd_rows = rows_of(rd.execute(STATEMENT))
        assert {div for _, div in sales_rows} == {"Sales"}
        assert {div for _, div in rd_rows} == {"R&D"}

        # the shared store holds entries for both tenants, scoped apart
        cache = manager.result_cache
        digests = {key.policy_digest for key in cache.keys()}
        assert policy_digest(sales.policy) in digests
        assert policy_digest(rd.policy) in digests
        assert policy_digest(sales.policy) != policy_digest(rd.policy)

        # re-running each statement is a pure hit — served from the
        # tenant's own entries, with the same scoped rows
        hits_before = cache.stats()["hits"]
        assert rows_of(sales.execute(STATEMENT)) == sales_rows
        assert rows_of(rd.execute(STATEMENT)) == rd_rows
        assert cache.stats()["hits"] > hits_before

    def test_equal_scope_tenants_do_share(self):
        # sharing is per-policy, not per-tenant-name: two tenants with an
        # identical policy digest may legitimately serve each other
        manager = make_manager()
        a = ServerSession(tenant("acme_a", "Sales"), manager)
        b = ServerSession(tenant("acme_b", "Sales"), manager)
        a.execute(STATEMENT)
        hits_before = manager.result_cache.stats()["hits"]
        b.execute(STATEMENT)
        assert manager.result_cache.stats()["hits"] > hits_before

    def test_unrestricted_tenant_keys_under_the_open_sentinel(self):
        manager = make_manager()
        ops = ServerSession(
            TenantConfig(tenant="ops", api_key="ops-key", can_write=True),
            manager,
        )
        ops.execute(STATEMENT)
        digests = {key.policy_digest for key in manager.result_cache.keys()}
        assert digests == {NO_POLICY}

    def test_pivot_surface_is_scoped_too(self):
        manager = make_manager()
        sales = ServerSession(tenant("sales_co", "Sales"), manager)
        rd = ServerSession(tenant("rd_co", "R&D"), manager)
        sales_view = sales.pivot(
            mode="tcm", rows="year", cols="org.Division", measure="amount"
        )
        rd_view = rd.pivot(
            mode="tcm", rows="year", cols="org.Division", measure="amount"
        )
        assert sales_view["cols"] == ["Sales"]
        assert rd_view["cols"] == ["R&D"]
        # every cached entry carries one of the two tenant digests
        digests = {key.policy_digest for key in manager.result_cache.keys()}
        assert NO_POLICY not in digests
