"""Seeded-random correctness property: cached results are byte-identical
to the uncached engine — across schema evolutions, AS-OF snapshots and
sharded execution.

Each leg runs every random query twice through a cache-wired reader (the
first run populates, the second hits) and compares both renderings
against a fresh engine with no cache at all.  ``to_text()`` equality is
deliberate: it covers column order, row order, cell values *and*
confidence annotations byte for byte.
"""

import random

import pytest

from repro.cache import VersionedResultCache
from repro.concurrency import SnapshotManager
from repro.concurrency.sharding import ShardedExecutor
from repro.core.chronology import Interval, MONTH, QUARTER, YEAR, ym
from repro.core.errors import FactValidityError, QueryError
from repro.core.query import LevelFilter, LevelGroup, Query, QueryEngine, TimeGroup
from repro.robustness import TransactionManager, WriteAheadJournal
from repro.workloads.case_study import ORG, build_case_study
from repro.workloads.generator import WorkloadConfig, generate_workload

LEVELS = ("Division", "Department")
GRANULARITIES = (YEAR, QUARTER, MONTH)


def random_query(rng: random.Random, mvft, division_names) -> Query:
    mode = rng.choice(mvft.modes.labels)
    gran = rng.choice(GRANULARITIES)
    level = rng.choice(LEVELS)
    roll = rng.random()
    if roll < 0.4:
        group_by = (TimeGroup(gran), LevelGroup(ORG, level))
    elif roll < 0.8:
        group_by = (LevelGroup(ORG, level), TimeGroup(gran))
    else:
        group_by = (LevelGroup(ORG, level),)
    time_range = None
    if rng.random() < 0.3:
        start = ym(2000 + rng.randrange(2), 1)
        time_range = Interval(start, ym(2002 + rng.randrange(2), 1))
    filters = ()
    if rng.random() < 0.3 and division_names:
        k = rng.randrange(1, len(division_names) + 1)
        filters = (
            LevelFilter(ORG, "Division", tuple(rng.sample(division_names, k))),
        )
    return Query(
        mode=mode, group_by=group_by, time_range=time_range, level_filters=filters
    )


def division_names_of(schema, t) -> list[str]:
    snap = schema.dimension(ORG).at(t)
    return sorted(
        snap.member(mvid).name for mvid in snap.levels().get("Division", ())
    )


def check_queries(rng, cached_runner, mvft, schema, shared, n=15):
    """Every random query: cached == cached-again == fresh-uncached."""
    names = division_names_of(schema, ym(2001, 6))
    for _ in range(n):
        query = random_query(rng, mvft, names)
        baseline = QueryEngine(mvft)  # no cache, same frozen table
        try:
            expected = baseline.execute(query).to_text()
        except QueryError:
            with pytest.raises(QueryError):
                cached_runner.execute(query)
            continue
        assert cached_runner.execute(query).to_text() == expected
        assert cached_runner.execute(query).to_text() == expected  # hit path
    assert shared.stats()["hits"] > 0


class TestCachedEqualsUncached:
    def test_across_evolution_epochs(self):
        workload = generate_workload(
            WorkloadConfig(seed=11, n_years=3, n_departments=8)
        )
        schema = workload.schema
        shared = VersionedResultCache()
        rng = random.Random(2024)
        for epoch in range(3):
            mvft = schema.multiversion_facts()
            engine = QueryEngine(mvft, cache=shared)
            check_queries(rng, engine, mvft, schema, shared)
            # evolve between epochs: one new member + one late fact, so
            # the next epoch queries a genuinely different structure
            t = ym(2003 + epoch, 1)
            workload.manager.create_member(
                ORG,
                f"cache_epoch{epoch}",
                f"CacheEpoch{epoch}",
                t,
                parents=["div0"],
                level="Department",
            )
            try:
                schema.add_fact(
                    {ORG: f"cache_epoch{epoch}"}, ym(2003 + epoch, 6), amount=7.5
                )
            except FactValidityError:  # pragma: no cover - defensive
                pass

    def test_across_asof_snapshots(self, tmp_path):
        study = build_case_study()
        wal = WriteAheadJournal(tmp_path / "cache.wal")
        txm = TransactionManager(study.schema, wal=wal)
        targets = []
        for i in range(2):
            with txm.transaction() as txn:
                txm.editor.insert(
                    ORG,
                    f"asof{i}",
                    f"AsOf{i}",
                    ym(2003, 6 + i),
                    level="Department",
                    parents=["sales"],
                )
            targets.append(txn.commit_lsn)
        manager = SnapshotManager(txm)
        shared = manager.result_cache
        rng = random.Random(99)
        for target in targets:
            snapshot = manager.open_as_of_cursor(target)
            engine = QueryEngine(snapshot.mvft, cache=shared)
            check_queries(rng, engine, snapshot.mvft, snapshot.schema, shared)

    def test_sharded_execution_shares_the_cache(self):
        workload = generate_workload(
            WorkloadConfig(seed=5, n_years=3, n_departments=10)
        )
        mvft = workload.schema.multiversion_facts()
        shared = VersionedResultCache()
        sharded = ShardedExecutor(mvft, shards=3, cache=shared)
        rng = random.Random(7)
        check_queries(rng, sharded, mvft, workload.schema, shared)
        # a result computed serially serves the sharded path and back
        serial = QueryEngine(mvft, cache=shared)
        query = Query(
            mode="tcm", group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division"))
        )
        assert serial.execute(query) is sharded.execute(query)
