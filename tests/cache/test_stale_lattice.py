"""Regression tests for the headline bug: a pivot issued *after* a write
on the same ``Cube`` must reflect the write.

The MultiVersion fact table is frozen at inference time, and the old
eagerly-materialized lattice froze its nodes at construction on top of
that — so ``pivot → write → pivot`` on a cube over a live schema served
pre-write totals from both the lattice path and the engine path.  The
cube now re-checks the schema's version token on every pivot and
re-infers when stale; the lattice is a lazy cache-backed view, so its
nodes can never outlive the versions they were computed against.
"""

from repro.core.chronology import YEAR, ym
from repro.core.operations import EvolutionManager
from repro.observability import MetricsRegistry
from repro.olap.cube import Cube, LevelAxis, TimeAxis
from repro.workloads.case_study import ORG, build_case_study, fact_instant


def pivot(cube):
    return cube.pivot("tcm", TimeAxis(YEAR), LevelAxis(ORG, "Division"), "amount")


class TestPivotAfterWrite:
    def test_pivot_reflects_fact_inserted_after_materialization(self):
        study = build_case_study()
        cube = Cube(study.schema.multiversion_facts(), materialize=True)
        assert pivot(cube).cell("2001", "Sales").value == 150.0
        study.schema.add_fact({ORG: "jones"}, fact_instant(2001), amount=40.0)
        assert pivot(cube).cell("2001", "Sales").value == 190.0

    def test_pivot_reflects_many_inserts(self):
        study = build_case_study()
        cube = Cube(study.schema.multiversion_facts(), materialize=True)
        assert pivot(cube).cell("2003", "Sales").value == 200.0
        for month in (7, 8, 9):
            study.schema.add_fact(
                {ORG: "bill"}, ym(2003, month), amount=10.0
            )
        assert pivot(cube).cell("2003", "Sales").value == 230.0

    def test_pivot_reflects_reclassify_after_materialization(self):
        study = build_case_study()
        cube = Cube(study.schema.multiversion_facts(), materialize=True)
        before = pivot(cube)
        assert before.cell("2003", "R&D").value == 150.0
        # move bill Sales -> R&D mid-2003, then record a fact under the
        # new structure: the same cube must aggregate it under R&D
        manager = EvolutionManager(study.schema)
        manager.reclassify_member(
            ORG, "bill", ym(2003, 7), old_parents=["sales"], new_parents=["rd"]
        )
        study.schema.add_fact({ORG: "bill"}, ym(2003, 9), amount=60.0)
        after = pivot(cube)
        assert after.cell("2003", "R&D").value == 210.0
        assert after.cell("2003", "Sales").value == 200.0

    def test_unmaterialized_cube_engine_path_also_refreshes(self):
        # the bug was not lattice-only: the engine reads the frozen MVFT too
        study = build_case_study()
        cube = Cube(study.schema.multiversion_facts())
        assert pivot(cube).cell("2001", "Sales").value == 150.0
        study.schema.add_fact({ORG: "jones"}, fact_instant(2001), amount=40.0)
        assert pivot(cube).cell("2001", "Sales").value == 190.0

    def test_rebuilds_are_counted_and_stop_when_quiet(self):
        study = build_case_study()
        metrics = MetricsRegistry()
        cube = Cube(
            study.schema.multiversion_facts(), materialize=True, metrics=metrics
        )
        pivot(cube)
        pivot(cube)  # no write in between: no rebuild
        counters = metrics.snapshot()["counters"]
        assert "olap.mvft_rebuilds" not in counters
        study.schema.add_fact({ORG: "jones"}, fact_instant(2001), amount=40.0)
        pivot(cube)
        pivot(cube)  # still only one rebuild for one write
        counters = metrics.snapshot()["counters"]
        assert counters["olap.mvft_rebuilds"] == 1

    def test_standalone_lattice_refreshes_too(self):
        from repro.olap.aggregates import AggregateLattice

        study = build_case_study()
        lattice = AggregateLattice(study.schema.multiversion_facts())
        node = lattice.totals("tcm", YEAR, ORG, "Division", "amount")
        assert node[("2001", "Sales")][0] == 150.0
        study.schema.add_fact({ORG: "jones"}, fact_instant(2001), amount=40.0)
        node = lattice.totals("tcm", YEAR, ORG, "Division", "amount")
        assert node[("2001", "Sales")][0] == 190.0
