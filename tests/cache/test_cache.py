"""Unit tests for :mod:`repro.cache` — digests, keys, eviction, accounting."""

import pytest

from repro.cache import (
    NO_POLICY,
    CacheKey,
    VersionedResultCache,
    estimate_cost,
    policy_digest,
    query_digest,
)
from repro.core.chronology import Interval, YEAR, QUARTER, ym
from repro.core.query import LevelFilter, LevelGroup, Query, TimeGroup
from repro.observability import MetricsRegistry
from repro.server.rls import RLSPolicy, RLSRule
from repro.workloads.case_study import ORG, build_case_study


def q(**kwargs):
    defaults = dict(
        mode="tcm", group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division"))
    )
    defaults.update(kwargs)
    return Query(**defaults)


class TestQueryDigest:
    def test_identical_plans_share_a_digest(self):
        assert query_digest(q()) == query_digest(q())

    def test_group_by_order_is_significant(self):
        # group order shapes the result (row/column roles swap)
        flipped = q(group_by=(LevelGroup(ORG, "Division"), TimeGroup(YEAR)))
        assert query_digest(q()) != query_digest(flipped)

    def test_measure_order_is_significant(self):
        assert query_digest(q(measures=("a", "b"))) != query_digest(
            q(measures=("b", "a"))
        )

    def test_mode_granularity_and_window_are_significant(self):
        base = query_digest(q())
        assert query_digest(q(mode="V1")) != base
        assert (
            query_digest(q(group_by=(TimeGroup(QUARTER), LevelGroup(ORG, "Division"))))
            != base
        )
        assert (
            query_digest(q(time_range=Interval(ym(2001, 1), ym(2002, 1)))) != base
        )

    def test_filters_are_order_insensitive(self):
        f1 = LevelFilter(ORG, "Division", ("Sales",))
        f2 = LevelFilter(ORG, "Department", ("Jones", "Smith"))
        f2_flipped = LevelFilter(ORG, "Department", ("Smith", "Jones"))
        assert query_digest(q(level_filters=(f1, f2))) == query_digest(
            q(level_filters=(f2_flipped, f1))
        )
        # ...but the filters themselves are significant
        assert query_digest(q(level_filters=(f1,))) != query_digest(q())

    def test_coordinate_filter_is_uncacheable(self):
        assert query_digest(q(coordinate_filter=lambda c, t: True)) is None


class TestPolicyDigest:
    def test_no_policy_sentinel(self):
        assert policy_digest(None) == NO_POLICY
        assert policy_digest([]) == NO_POLICY
        assert policy_digest(RLSPolicy(())) == NO_POLICY

    def test_rule_order_is_insensitive(self):
        a = RLSRule(dimension=ORG, level="Division", values=("Sales",))
        b = RLSRule(dimension=ORG, level="Department", values=("Jones", "Smith"))
        b_flipped = RLSRule(
            dimension=ORG, level="Department", values=("Smith", "Jones")
        )
        assert policy_digest(RLSPolicy((a, b))) == policy_digest(
            RLSPolicy((b_flipped, a))
        )

    def test_different_scopes_differ(self):
        sales = RLSPolicy((RLSRule(ORG, "Division", ("Sales",)),))
        rd = RLSPolicy((RLSRule(ORG, "Division", ("R&D",)),))
        assert policy_digest(sales) != policy_digest(rd)
        assert policy_digest(sales) != NO_POLICY


class TestKeyFor:
    def test_key_binds_both_versions_and_policy(self):
        study = build_case_study()
        mvft = study.schema.multiversion_facts()
        cache = VersionedResultCache()
        key = cache.key_for(mvft, q())
        assert isinstance(key, CacheKey)
        assert key.structure_version == mvft.schema_token
        assert key.policy_digest == NO_POLICY
        assert cache.key_for(mvft, q(), "rls-abc").policy_digest == "rls-abc"
        # a write bumps the structure token: the rebuilt table keys differently
        from repro.workloads.case_study import fact_instant

        study.schema.add_fact({ORG: "jones"}, fact_instant(2001), amount=1.0)
        rebuilt = study.schema.multiversion_facts()
        assert cache.key_for(rebuilt, q()) != key

    def test_uncacheable_plans_key_to_none(self):
        study = build_case_study()
        mvft = study.schema.multiversion_facts()
        cache = VersionedResultCache()
        assert cache.key_for(mvft, q(coordinate_filter=lambda c, t: True)) is None
        assert cache.get(None) is None
        assert cache.put(None, object()) is False


def key(n: int) -> CacheKey:
    return CacheKey(1, 1, NO_POLICY, f"digest-{n}")


class TestEviction:
    def test_clock_gives_referenced_entries_a_second_chance(self):
        cache = VersionedResultCache(100, policy="clock")
        cache.put(key(1), "a", cost=40)
        cache.put(key(2), "b", cost=40)
        assert cache.get(key(1)) == "a"  # sets entry 1's reference bit
        cache.put(key(3), "c", cost=40)  # over budget: hand skips 1, evicts 2
        assert cache.get(key(1)) == "a"
        assert cache.get(key(2)) is None
        assert cache.get(key(3)) == "c"
        assert cache.stats()["evictions"] == 1

    def test_lru_evicts_least_recently_used(self):
        cache = VersionedResultCache(100, policy="lru")
        cache.put(key(1), "a", cost=40)
        cache.put(key(2), "b", cost=40)
        assert cache.get(key(1)) == "a"  # 2 is now least recently used
        cache.put(key(3), "c", cost=40)
        assert cache.get(key(1)) == "a"
        assert cache.get(key(2)) is None
        assert cache.get(key(3)) == "c"

    def test_oversize_values_are_rejected_not_flushed(self):
        cache = VersionedResultCache(100)
        cache.put(key(1), "a", cost=40)
        assert cache.put(key(2), "big", cost=400) is False
        assert cache.get(key(1)) == "a"
        assert cache.stats()["rejected"] == 1

    def test_byte_accounting_tracks_residency(self):
        cache = VersionedResultCache(100)
        cache.put(key(1), "a", cost=30)
        cache.put(key(2), "b", cost=30)
        assert cache.bytes_used == 60
        cache.put(key(1), "a2", cost=50)  # same-key overwrite adjusts cost
        assert cache.bytes_used == 80
        cache.clear()
        assert cache.bytes_used == 0
        assert len(cache) == 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            VersionedResultCache(policy="fifo")


class TestCostEstimate:
    def test_costs_grow_with_content(self):
        small = estimate_cost({"rows": list(range(5))})
        large = estimate_cost({"rows": list(range(500))})
        assert 0 < small < large

    def test_shared_objects_count_once(self):
        shared = list(range(100))
        assert estimate_cost([shared, shared]) < 2 * estimate_cost([shared])


class TestMetrics:
    def test_hit_miss_eviction_and_bytes_instrumented(self):
        metrics = MetricsRegistry()
        cache = VersionedResultCache(100, metrics=metrics)
        cache.get(key(1))  # miss
        cache.put(key(1), "a", cost=40)
        cache.get(key(1))  # hit
        cache.put(key(2), "b", cost=40)
        cache.put(key(3), "c", cost=40)  # forces one eviction
        snap = metrics.snapshot()
        assert snap["counters"]["cache.misses"] == 1
        assert snap["counters"]["cache.hits"] == 1
        assert snap["counters"]["cache.evictions"] == 1
        assert snap["gauges"]["cache.bytes"] == 80.0
        assert snap["gauges"]["cache.entries"] == 2.0
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
