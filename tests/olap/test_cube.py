"""Tests for the OLAP cube, its operators and the front end."""

import pytest

from repro.core import Interval, QueryError, ym
from repro.core.chronology import MONTH, YEAR
from repro.olap import (
    AggregateLattice,
    Cube,
    LevelAxis,
    TimeAxis,
    dice,
    drill_down,
    grid_quality,
    quality_report,
    render_dimension_graph,
    render_view,
    roll_up,
    rotate,
    slice_view,
    switch_mode,
    time_window,
)
from repro.workloads.case_study import ORG

Q2_RANGE = Interval(ym(2002, 1), ym(2003, 12))


@pytest.fixture(scope="module")
def cube(mvft):
    return Cube(mvft)


@pytest.fixture(scope="module")
def dept_view(cube):
    return cube.pivot(
        "V3", TimeAxis(), LevelAxis(ORG, "Department"), "amount", time_range=Q2_RANGE
    )


class TestPivot:
    def test_grid_matches_table_10(self, dept_view):
        assert dept_view.rows == ["2002", "2003"]
        assert dept_view.cols == ["Dpt.Bill", "Dpt.Brian", "Dpt.Paul", "Dpt.Smith"]
        assert dept_view.cell("2002", "Dpt.Bill").value == 40.0
        assert dept_view.cell("2002", "Dpt.Bill").confidence.symbol == "am"
        assert dept_view.cell("2003", "Dpt.Bill").value == 150.0

    def test_empty_cell(self, cube):
        view = cube.pivot("tcm", TimeAxis(), LevelAxis(ORG, "Department"), "amount")
        cell = view.cell("2003", "Dpt.Jones")
        assert cell.empty and cell.value is None

    def test_identical_axes_rejected(self, cube):
        axis = LevelAxis(ORG, "Department")
        with pytest.raises(QueryError):
            cube.pivot("tcm", axis, axis, "amount")

    def test_modes_and_axes_discovery(self, cube):
        assert cube.modes == ["tcm", "V1", "V2", "V3"]
        names = {a.level for a in cube.level_axes()}
        assert names == {"Division", "Department"}


class TestOperators:
    def test_roll_up_to_division(self, cube, dept_view):
        up = roll_up(cube, dept_view, on="cols")
        assert up.cols == ["R&D", "Sales"]
        assert up.cell("2002", "Sales").value == 100.0
        assert up.time_range == Q2_RANGE  # window preserved

    def test_drill_down_back(self, cube, dept_view):
        up = roll_up(cube, dept_view, on="cols")
        down = drill_down(cube, up, on="cols")
        assert down.cols == dept_view.cols

    def test_roll_up_beyond_top_rejected(self, cube, dept_view):
        up = roll_up(cube, dept_view, on="cols")
        with pytest.raises(QueryError):
            roll_up(cube, up, on="cols")

    def test_roll_up_time_axis_rejected(self, cube, dept_view):
        with pytest.raises(QueryError):
            roll_up(cube, dept_view, on="rows")

    def test_bad_axis_selector_rejected(self, cube, dept_view):
        with pytest.raises(QueryError):
            roll_up(cube, dept_view, on="diagonal")

    def test_rotate_swaps_axes(self, dept_view):
        r = rotate(dept_view)
        assert r.rows == dept_view.cols and r.cols == dept_view.rows
        assert r.cell("Dpt.Bill", "2002").value == 40.0

    def test_double_rotate_is_identity(self, dept_view):
        r2 = rotate(rotate(dept_view))
        assert r2.rows == dept_view.rows and r2.cols == dept_view.cols

    def test_slice_row(self, dept_view):
        s = slice_view(dept_view, row="2002")
        assert s.rows == ["2002"] and s.cols == dept_view.cols

    def test_slice_requires_exactly_one_coordinate(self, dept_view):
        with pytest.raises(QueryError):
            slice_view(dept_view)
        with pytest.raises(QueryError):
            slice_view(dept_view, row="2002", col="Dpt.Bill")

    def test_slice_unknown_label_rejected(self, dept_view):
        with pytest.raises(QueryError):
            slice_view(dept_view, row="1999")

    def test_dice_subsets(self, dept_view):
        d = dice(dept_view, cols=["Dpt.Bill", "Dpt.Paul"])
        assert d.cols == ["Dpt.Bill", "Dpt.Paul"]
        assert d.rows == dept_view.rows

    def test_dice_with_predicate(self, dept_view):
        d = dice(dept_view, cols=lambda c: "B" in str(c))
        assert d.cols == ["Dpt.Bill", "Dpt.Brian"]

    def test_dice_unknown_labels_rejected(self, dept_view):
        with pytest.raises(QueryError):
            dice(dept_view, rows=["1999"])

    def test_switch_mode(self, cube, dept_view):
        v2 = switch_mode(cube, dept_view, "V2")
        assert v2.mode == "V2"
        assert v2.cell("2003", "Dpt.Jones").value == 200.0
        assert v2.time_range == Q2_RANGE

    def test_time_window(self, cube, dept_view):
        narrowed = time_window(cube, dept_view, Interval(ym(2003, 1), ym(2003, 12)))
        assert narrowed.rows == ["2003"]

    def test_time_axis_granularity_change(self, cube):
        view = cube.pivot(
            "tcm", TimeAxis(MONTH), LevelAxis(ORG, "Division"), "amount"
        )
        assert "06/2001" in view.rows


class TestFrontend:
    def test_render_plain(self, dept_view):
        text = render_view(dept_view)
        assert "Dpt.Bill" in text
        assert "40 (am)" in text
        assert "150 (sd)" in text

    def test_render_colour_wraps_ansi(self, dept_view):
        text = render_view(dept_view, colour=True)
        assert "\x1b[33m" in text  # yellow for am
        assert "\x1b[0m" in text

    def test_empty_cells_rendered_as_dot(self, cube):
        view = cube.pivot("tcm", TimeAxis(), LevelAxis(ORG, "Department"), "amount")
        assert "·" in render_view(view)

    def test_grid_quality_full_grid_denominator(self, cube):
        """tcm at department grain has empty cross-points, so its grid
        quality is below a version mode's — §2.1's 'complementary views'."""
        tcm = cube.pivot(
            "tcm", TimeAxis(), LevelAxis(ORG, "Department"), "amount",
            time_range=Q2_RANGE,
        )
        v2 = cube.pivot(
            "V2", TimeAxis(), LevelAxis(ORG, "Department"), "amount",
            time_range=Q2_RANGE,
        )
        assert grid_quality(tcm) < grid_quality(v2)

    def test_quality_report_ranks_all_modes(self, cube):
        report = quality_report(
            cube, TimeAxis(), LevelAxis(ORG, "Department"), "amount",
            time_range=Q2_RANGE,
        )
        assert len(report) == 4
        scores = [q for _, q, _ in report]
        assert scores == sorted(scores, reverse=True)

    def test_quality_weights_validated(self, dept_view):
        from repro.core import QualityError

        with pytest.raises(QualityError):
            grid_quality(dept_view, {"sd": 99, "em": 8, "am": 5, "uk": 0})

    def test_dimension_graph_is_figure_2(self, case_study):
        text = render_dimension_graph(case_study.org)
        assert "Dpt.Jones [01/2001 ; 12/2002]" in text
        assert "-[01/2001 ; 12/2002]-> Sales" in text
        assert "Dpt.Paul [01/2003 ; Now]" in text


class TestAggregateLattice:
    def test_lattice_materializes_nodes(self, mvft):
        lattice = AggregateLattice(mvft)
        assert lattice.node_count > 0
        assert lattice.cell_count() > 0

    def test_lookup_hit_matches_engine(self, mvft, engine):
        from repro.core import LevelGroup, Query, TimeGroup

        lattice = AggregateLattice(mvft)
        hit = lattice.lookup("V2", YEAR, ORG, "Division", "amount", ("2002", "R&D"))
        assert hit is not None
        value, cf = hit
        result = engine.execute(
            Query(mode="V2", group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")))
        ).as_dict()
        assert value == result[("2002", "R&D")]["amount"]

    def test_lookup_miss_returns_none(self, mvft):
        lattice = AggregateLattice(mvft)
        assert lattice.lookup("V2", YEAR, ORG, "Continent", "amount", ("x",)) is None
        assert (
            lattice.lookup("V2", YEAR, ORG, "Division", "amount", ("1999", "Zzz"))
            is None
        )

    def test_totals_node(self, mvft):
        lattice = AggregateLattice(mvft)
        node = lattice.totals("tcm", YEAR, ORG, "Division", "amount")
        assert node[("2001", "Sales")][0] == 150.0


class TestLatticeBackedCube:
    def test_materialized_pivot_matches_engine_pivot(self, mvft):
        plain = Cube(mvft)
        fast = Cube(mvft, materialize=True)
        axes = (TimeAxis(), LevelAxis(ORG, "Division"))
        for mode in plain.modes:
            a = plain.pivot(mode, *axes, "amount")
            b = fast.pivot(mode, *axes, "amount")
            assert a.rows == b.rows and a.cols == b.cols
            for r in a.rows:
                for c in a.cols:
                    assert a.cell(r, c).value == b.cell(r, c).value
                    assert a.cell(r, c).confidence == b.cell(r, c).confidence

    def test_transposed_axes_served_from_lattice(self, mvft):
        fast = Cube(mvft, materialize=True)
        view = fast.pivot("tcm", LevelAxis(ORG, "Division"), TimeAxis(), "amount")
        assert view.rows == ["R&D", "Sales"]
        assert view.cell("Sales", "2001").value == 150.0

    def test_time_windowed_pivot_falls_back_to_engine(self, mvft):
        from repro.core import Interval, ym

        fast = Cube(mvft, materialize=True)
        view = fast.pivot(
            "tcm", TimeAxis(), LevelAxis(ORG, "Division"), "amount",
            time_range=Interval(ym(2001, 1), ym(2001, 12)),
        )
        assert view.rows == ["2001"]

    def test_shared_lattice_can_be_injected(self, mvft):
        lattice = AggregateLattice(mvft)
        cube = Cube(mvft, lattice=lattice)
        assert cube.lattice is lattice
        view = cube.pivot("V2", TimeAxis(), LevelAxis(ORG, "Division"), "amount")
        assert view.cell("2002", "Sales").value == 100.0


class TestTimeHierarchyNavigation:
    """Roll-up / drill-down along the Time dimension's own hierarchy."""

    def test_drill_down_year_to_quarter(self, cube, dept_view):
        down = drill_down(cube, dept_view, on="rows")
        assert down.row_axis.granularity.name == "quarter"
        assert "2002Q2" in down.rows

    def test_quarter_rolls_back_up_to_year(self, cube, dept_view):
        down = drill_down(cube, dept_view, on="rows")
        up = roll_up(cube, down, on="rows")
        assert up.rows == dept_view.rows

    def test_month_is_the_finest_granularity(self, cube, dept_view):
        months = drill_down(cube, drill_down(cube, dept_view, on="rows"), on="rows")
        assert months.row_axis.granularity.name == "month"
        with pytest.raises(QueryError):
            drill_down(cube, months, on="rows")

    def test_year_is_the_coarsest_granularity(self, cube, dept_view):
        with pytest.raises(QueryError):
            roll_up(cube, dept_view, on="rows")

    def test_time_navigation_preserves_totals(self, cube, dept_view):
        """Quarterly cells re-aggregate to the yearly cells."""
        down = drill_down(cube, dept_view, on="rows")
        for col in dept_view.cols:
            for year in dept_view.rows:
                quarterly = sum(
                    down.cell(r, col).value or 0.0
                    for r in down.rows
                    if str(r).startswith(str(year))
                )
                assert quarterly == pytest.approx(
                    dept_view.cell(year, col).value or 0.0
                )

    def test_instant_granularity_outside_hierarchy_rejected(self, cube):
        from repro.core.chronology import INSTANT

        view = cube.pivot(
            "tcm", TimeAxis(INSTANT), LevelAxis(ORG, "Division"), "amount"
        )
        with pytest.raises(QueryError):
            drill_down(cube, view, on="rows")


class TestHtmlRendering:
    def test_html_table_structure(self, dept_view):
        from repro.olap import render_view_html

        html = render_view_html(dept_view)
        assert html.startswith("<table")
        assert "<caption>" in html
        assert "Dpt.Bill" in html

    def test_confidence_backgrounds(self, dept_view):
        from repro.olap import HTML_COLOURS, render_view_html

        html = render_view_html(dept_view)
        assert HTML_COLOURS["am"] in html  # the 40/60 estimates
        assert HTML_COLOURS["sd"] in html

    def test_empty_cells_red_with_tooltip(self, cube):
        from repro.olap import HTML_COLOURS, render_view_html

        view = cube.pivot("tcm", TimeAxis(), LevelAxis(ORG, "Department"), "amount")
        html = render_view_html(view)
        assert HTML_COLOURS["uk"] in html
        assert "empty cross-point" in html

    def test_custom_title_escaped(self, dept_view):
        from repro.olap import render_view_html

        html = render_view_html(dept_view, title="<b>R&D</b>")
        assert "&lt;b&gt;R&amp;D&lt;/b&gt;" in html


class TestFilteredPivot:
    def test_pivot_with_level_filter(self, cube):
        from repro.core import LevelFilter

        view = cube.pivot(
            "tcm", TimeAxis(), LevelAxis(ORG, "Department"), "amount",
            filters=(LevelFilter(ORG, "Division", ("Sales",)),),
        )
        # Smith leaves Sales in 2002 (tcm follows the move):
        assert view.cell("2001", "Dpt.Smith").value == 50.0
        assert view.cell("2002", "Dpt.Smith").empty
        assert "Dpt.Brian" not in view.cols or all(
            view.cell(r, "Dpt.Brian").empty for r in view.rows
        )

    def test_filtered_pivot_bypasses_lattice(self, mvft):
        from repro.core import LevelFilter

        fast = Cube(mvft, materialize=True)
        filtered = fast.pivot(
            "tcm", TimeAxis(), LevelAxis(ORG, "Division"), "amount",
            filters=(LevelFilter(ORG, "Division", ("Sales",)),),
        )
        assert filtered.cols == ["Sales"]
        unfiltered = fast.pivot(
            "tcm", TimeAxis(), LevelAxis(ORG, "Division"), "amount"
        )
        assert unfiltered.cols == ["R&D", "Sales"]


class TestExplainCell:
    def test_source_cell_explanation(self, mvft):
        from repro.olap import explain_cell
        from repro.workloads.case_study import fact_instant

        text = explain_cell(mvft, {ORG: "brian"}, fact_instant(2001), "V1")
        assert "amount = 100" in text
        assert "[sd:" in text
        assert "valid in version (source data)" in text

    def test_mapped_cell_explanation_names_sources_and_functions(self, mvft):
        from repro.olap import explain_cell
        from repro.workloads.case_study import fact_instant

        text = explain_cell(mvft, {ORG: "bill"}, fact_instant(2002), "V3")
        assert "amount = 40" in text
        assert "[am:" in text
        assert "jones -> bill" in text
        assert "0.4*x" in text

    def test_merged_cell_lists_every_contribution(self, mvft):
        from repro.olap import explain_cell
        from repro.workloads.case_study import fact_instant

        text = explain_cell(mvft, {ORG: "jones"}, fact_instant(2003), "V2")
        assert "bill -> jones" in text and "paul -> jones" in text

    def test_empty_cell_reports_cross_point(self, mvft):
        from repro.olap import explain_cell
        from repro.workloads.case_study import fact_instant

        text = explain_cell(mvft, {ORG: "jones"}, fact_instant(2003), "V3")
        assert "empty cross-point" in text


class TestUnknownValueRendering:
    def test_unknown_value_cells_render_question_mark(self):
        """A merge with an unknown back-share produces ?-cells tagged uk."""
        from repro.core import (
            EvolutionManager,
            Interval,
            Measure,
            MemberVersion,
            SUM,
            TemporalDimension,
            TemporalMultidimensionalSchema,
            TemporalRelationship,
        )
        from repro.olap import render_view, render_view_html

        d = TemporalDimension(ORG)
        d.add_member(MemberVersion("div", "Div", Interval(0), level="Division"))
        for mvid in ("x", "y"):
            d.add_member(
                MemberVersion(mvid, mvid.upper(), Interval(0), level="Department")
            )
            d.add_relationship(TemporalRelationship(mvid, "div", Interval(0)))
        schema = TemporalMultidimensionalSchema([d], [Measure("amount", SUM)])
        EvolutionManager(schema).merge_members(
            ORG, ["x", "y"], "xy", "XY", 10, reverse_shares={"x": 0.5, "y": None}
        )
        schema.add_fact({ORG: "xy"}, 15, amount=100.0)
        cube = Cube(schema.multiversion_facts())
        v1 = schema.structure_versions()[0].vsid
        view = cube.pivot(v1, TimeAxis(), LevelAxis(ORG, "Department"), "amount")
        text = render_view(view)
        assert "? (uk)" in text
        html = render_view_html(view)
        assert ">?</td>" in html
