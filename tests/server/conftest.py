"""Shared fixtures for the warehouse-server tests.

One case-study warehouse behind a background server, with the demo
tenant roster: ``acme`` is RLS-scoped to the Sales division (read-only,
tight limits), ``ops`` can write.  ``server_handle`` is a running server
on its own event-loop thread; ``client`` / ``ops_client`` are connected,
authenticated blocking clients.
"""

import pytest

from repro.concurrency import SnapshotManager
from repro.core.chronology import ym
from repro.observability import MetricsRegistry
from repro.robustness import TransactionManager
from repro.server import demo_config, serve_background, WarehouseClient
from repro.workloads.case_study import build_case_study

T_EVOLVE = ym(2003, 6)
"""An instant after every case-study evolution — new members go live here."""


def insert_department(txm, mvid, name, *, parent="sales", t=T_EVOLVE):
    """One-operator evolution used as the canonical concurrent write."""
    return txm.editor.insert(
        "org", mvid, name, t, level="Department", parents=[parent]
    )


@pytest.fixture()
def study():
    return build_case_study()


@pytest.fixture()
def txm(study):
    return TransactionManager(study.schema)


@pytest.fixture()
def manager(txm):
    return SnapshotManager(txm)


@pytest.fixture()
def config():
    return demo_config()


@pytest.fixture()
def server_handle(manager, config):
    with serve_background(manager, config, metrics=MetricsRegistry()) as handle:
        yield handle


@pytest.fixture()
def client(server_handle):
    with WarehouseClient(
        server_handle.host, server_handle.port, api_key="acme-key"
    ) as c:
        yield c


@pytest.fixture()
def ops_client(server_handle):
    with WarehouseClient(
        server_handle.host, server_handle.port, api_key="ops-key"
    ) as c:
        yield c
