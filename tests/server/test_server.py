"""End-to-end tests: the asyncio server through the blocking client."""

import threading
import time

import pytest

from repro.server import (
    RemoteAuthError,
    RemoteBadRequestError,
    RemoteConflictError,
    RemoteForbiddenError,
    RemoteQuotaError,
    RemoteRateLimitError,
    RemoteShuttingDownError,
    RemoteStatementError,
    WarehouseClient,
    serve_background,
)

from .conftest import insert_department


class TestHandshake:
    def test_hello_needs_no_auth(self, server_handle):
        with WarehouseClient(server_handle.host, server_handle.port) as c:
            payload = c.hello()
            assert payload["server"] == "repro-warehouse"
            assert "query" in payload["ops"]

    def test_statements_require_auth(self, server_handle):
        with WarehouseClient(server_handle.host, server_handle.port) as c:
            with pytest.raises(RemoteAuthError):
                c.query("SHOW MODES")

    def test_bad_api_key_is_rejected(self, server_handle):
        with pytest.raises(RemoteAuthError):
            WarehouseClient(
                server_handle.host, server_handle.port, api_key="wrong"
            ).close()

    def test_auth_pins_a_version_and_reports_rls(self, client):
        assert client.session["tenant"] == "acme"
        assert client.version == 0
        assert client.session["rls"][0]["values"] == ["Sales"]

    def test_unknown_op_is_bad_request(self, client):
        with pytest.raises(RemoteBadRequestError):
            client.call("explode")


class TestStatements:
    def test_select_over_the_wire(self, ops_client):
        table = ops_client.query("SELECT amount BY year, org.Division")
        assert table.mode == "tcm"
        totals = table.as_dict()
        assert totals[("2001", "Sales")] == {"amount": 150.0}
        assert ("2001", "R&D") in totals

    def test_rls_restricts_select(self, client):
        totals = client.query("SELECT amount BY year, org.Division").as_dict()
        assert set(key[1] for key in totals) == {"Sales"}

    def test_rls_out_of_slice_is_empty_not_error(self, client):
        table = client.query(
            "SELECT amount BY year, org.Division WHERE org.Division = 'R&D'"
        )
        assert table.total_rows == 0

    def test_show_and_rank(self, client):
        modes = client.query("SHOW MODES")
        assert any(line.startswith("tcm") for line in modes)
        ranking = client.query("RANK MODES FOR SELECT amount BY year")
        assert {entry["mode"] for entry in ranking} >= {"tcm"}
        for entry in ranking:
            assert 0.0 <= entry["quality"] <= 1.0

    def test_paged_select(self, client):
        table = client.query(
            "SELECT amount BY month", page_size=2, fetch_all=False
        )
        assert len(table.rows) == 2
        assert table.cursor is not None
        page = client.fetch(table.cursor)
        assert page["offset"] == 2
        full = client.query("SELECT amount BY month", page_size=2)
        assert len(full.rows) == full.total_rows > 2

    def test_syntax_error_is_typed(self, client):
        with pytest.raises(RemoteStatementError) as info:
            client.query("SELEKT amount")
        assert info.value.code == "parse_error"

    def test_compile_error_is_typed(self, client):
        with pytest.raises(RemoteStatementError) as info:
            client.query("SELECT turnover BY year")
        assert info.value.code == "compile_error"


class TestPivot:
    def test_pivot_grid(self, ops_client):
        pivot = ops_client.pivot("tcm", "year", "org.Division", "amount")
        assert pivot.value("2001", "Sales") == 150.0
        assert pivot.value("2001", "R&D") is not None

    def test_pivot_is_rls_filtered(self, client):
        pivot = client.pivot("tcm", "year", "org.Division", "amount")
        assert pivot.cols == ["Sales"]

    def test_bad_axis_is_bad_request(self, client):
        with pytest.raises(RemoteBadRequestError):
            client.pivot("tcm", "decade", "org.Division", "amount")


class TestWrites:
    def test_evolve_commits_and_bumps_version(self, ops_client, txm):
        before = ops_client.version
        payload = ops_client.evolve(
            {
                "dimension": "org",
                "mvid": "dpt-wire",
                "name": "Dpt.Wire",
                "level": "Department",
                "t": [2003, 6],
                "parents": ["sales"],
            }
        )
        assert payload["committed_version"] > before

    def test_stale_base_conflicts_then_refresh_retries(
        self, ops_client, manager, txm
    ):
        # A competing writer commits after the session pinned its base.
        manager.run_write(lambda _e: insert_department(txm, "dpt-x", "Dpt.X"))
        member = {
            "dimension": "org",
            "mvid": "dpt-y",
            "name": "Dpt.Y",
            "level": "Department",
            "t": [2003, 6],
            "parents": ["sales"],
        }
        with pytest.raises(RemoteConflictError):
            ops_client.evolve(member)
        ops_client.refresh()
        payload = ops_client.evolve(member)
        assert payload["base_version"] == manager.version - 1

    def test_rls_scoped_tenant_cannot_write(self, client):
        with pytest.raises(RemoteForbiddenError):
            client.evolve(
                {
                    "dimension": "org",
                    "mvid": "dpt-z",
                    "name": "Dpt.Z",
                    "level": "Department",
                    "t": [2003, 6],
                    "parents": ["sales"],
                }
            )


class TestSnapshotPinning:
    def test_session_does_not_see_later_commits_until_refresh(
        self, ops_client, manager, txm
    ):
        before = ops_client.query("SHOW VERSIONS")
        manager.run_write(lambda _e: insert_department(txm, "dpt-n", "Dpt.N"))
        assert ops_client.query("SHOW VERSIONS") == before
        ops_client.refresh()
        after = ops_client.query("SHOW VERSIONS")
        assert after != before

    def test_two_sessions_pin_independently(self, server_handle, manager, txm):
        first = WarehouseClient(
            server_handle.host, server_handle.port, api_key="ops-key"
        )
        baseline = first.query("SHOW VERSIONS")
        manager.run_write(lambda _e: insert_department(txm, "dpt-m", "Dpt.M"))
        second = WarehouseClient(
            server_handle.host, server_handle.port, api_key="ops-key"
        )
        try:
            assert second.version > first.version
            assert first.query("SHOW VERSIONS") == baseline
            assert second.query("SHOW VERSIONS") != baseline
        finally:
            first.close()
            second.close()


class TestOperations:
    def test_health_and_stats(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["sessions"] >= 1
        client.query("SHOW MODES")  # one admitted statement for the counters
        stats = client.stats()
        assert any(
            key.startswith("server.statements") for key in stats["counters"]
        )

    def test_ready_runs_the_doctor(self, client):
        payload = client.ready()
        assert payload["ready"] is True
        assert payload["doctor"]["status"] in ("pass", "warn")
        assert payload["doctor"]["integrity"]["ok"] is True


class TestQuotasOverTheWire:
    def test_concurrency_quota_sheds_typed_error(self, manager, config):
        # acme's quota is 2; slow statements keep slots busy while a
        # third connection tries to enter.
        with serve_background(manager, config, statement_delay=0.4) as handle:
            clients = [
                WarehouseClient(handle.host, handle.port, api_key="acme-key")
                for _ in range(3)
            ]
            errors: list[Exception] = []

            def run(c: WarehouseClient) -> None:
                try:
                    c.query("SHOW MODES")
                except Exception as exc:  # noqa: BLE001 - collected
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(c,)) for c in clients[:2]
            ]
            for t in threads:
                t.start()
            time.sleep(0.15)  # both slow statements are now in flight
            run(clients[2])
            for t in threads:
                t.join()
            for c in clients:
                c.close()
            assert len(errors) == 1
            assert isinstance(errors[0], RemoteQuotaError)

    def test_rate_limit_sheds_typed_error(self, manager, config):
        with serve_background(manager, config) as handle:
            with WarehouseClient(
                handle.host, handle.port, api_key="acme-key"
            ) as c:
                with pytest.raises(RemoteRateLimitError):
                    for _ in range(60):  # burst capacity is 50
                        c.query("SHOW MODES")


class TestGracefulShutdown:
    def test_drain_completes_inflight_statement(self, manager, config):
        handle = serve_background(manager, config, statement_delay=0.5)
        client = WarehouseClient(
            handle.host, handle.port, api_key="ops-key"
        )
        result: dict = {}

        def slow_statement() -> None:
            result["modes"] = client.query("SHOW MODES")

        thread = threading.Thread(target=slow_statement)
        thread.start()
        time.sleep(0.15)  # the statement is in the worker pool
        drained = handle.stop(drain_timeout=5.0)
        thread.join(timeout=5.0)
        assert drained is True
        assert result["modes"]  # the admitted statement got its answer

    def test_draining_server_rejects_new_statements(self, manager, config):
        handle = serve_background(manager, config, statement_delay=1.0)
        busy = WarehouseClient(handle.host, handle.port, api_key="ops-key")
        probe = WarehouseClient(handle.host, handle.port, api_key="ops-key")
        try:
            thread = threading.Thread(
                target=lambda: busy.query("SHOW MODES")
            )
            thread.start()
            time.sleep(0.15)
            stopper = threading.Thread(target=handle.stop)
            stopper.start()
            time.sleep(0.15)  # shutdown has set draining
            with pytest.raises(RemoteShuttingDownError):
                probe.query("SHOW MODES")
            thread.join(timeout=5.0)
            stopper.join(timeout=10.0)
        finally:
            busy.close()
            probe.close()
