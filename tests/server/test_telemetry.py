"""End-to-end request telemetry over the wire.

One client request against a live server must export as ONE connected
OTLP trace: the client's ``client.request`` span is the root, and every
server-side span (statement, MVQL, engine phases) chains up to it via
the ``traceparent`` stamped into the protocol envelope.  Alongside the
trace, every statement lands in the per-tenant usage ledger, and slow
requests surface as typed timeouts on the client.
"""

import json
import threading

import pytest

from repro.observability import (
    MetricsRegistry,
    SlowQueryLog,
    TraceSampler,
    Tracer,
)
from repro.observability.export import spans_to_otlp
from repro.server import (
    RemoteTimeoutError,
    WarehouseClient,
    serve_background,
)

STATEMENT = "SELECT amount BY year, org.Division"


@pytest.fixture()
def telemetry_server(manager, config):
    """A server armed with its own tracer/metrics/slow-log, so tests can
    inspect exactly what one request produced."""
    tracer = Tracer()
    metrics = MetricsRegistry()
    slow_log = SlowQueryLog(threshold=0.0)
    with serve_background(
        manager,
        config,
        metrics=metrics,
        tracer=tracer,
        slow_log=slow_log,
    ) as handle:
        yield handle, tracer, metrics, slow_log


def traced_client(handle, api_key="acme-key", **kwargs):
    tracer = kwargs.pop("tracer", None) or Tracer()
    return (
        WarehouseClient(
            handle.host, handle.port, api_key=api_key, tracer=tracer, **kwargs
        ),
        tracer,
    )


class TestOneTracePerRequest:
    def test_single_connected_otlp_trace(self, telemetry_server, tmp_path):
        handle, server_tracer, _, _ = telemetry_server
        client, client_tracer = traced_client(handle)
        with client:
            server_tracer.clear()  # drop the auth request's spans
            client_tracer.clear()
            # fetch_all=False keeps this to exactly ONE wire request —
            # page drains (and the close handshake) would each be their
            # own trace, so snapshot the spans before the client exits.
            client.query(STATEMENT, fetch_all=False)
            spans = list(client_tracer.spans) + list(server_tracer.spans)
        document = spans_to_otlp(spans)
        path = tmp_path / "trace.otlp.json"
        path.write_text(json.dumps(document))
        exported = [
            span
            for resource in json.loads(path.read_text())["resourceSpans"]
            for scope in resource["scopeSpans"]
            for span in scope["spans"]
        ]
        # One trace id across client and server.
        assert len({span["traceId"] for span in exported}) == 1
        by_id = {span["spanId"]: span for span in exported}
        roots = [s for s in exported if not s.get("parentSpanId")]
        (root,) = roots
        assert root["name"] == "client.request"
        # Every span chains up to the client root.
        for span in exported:
            node = span
            for _ in range(len(exported)):
                parent = node.get("parentSpanId")
                if not parent:
                    break
                node = by_id[parent]
            assert node["spanId"] == root["spanId"]
        names = {span["name"] for span in exported}
        assert {"client.request", "server.statement"} <= names
        assert any(name.startswith("query.") for name in names)

    def test_client_sampling_decision_rules_the_server(self, telemetry_server):
        handle, server_tracer, _, _ = telemetry_server
        client, client_tracer = traced_client(
            handle, tracer=Tracer(sampler=TraceSampler(ratio=0.0))
        )
        with client:
            server_tracer.clear()
            client.query(STATEMENT)
        assert client_tracer.spans == ()
        assert server_tracer.find("server.statement") == []

    def test_slow_log_carries_the_tenant(self, telemetry_server):
        handle, _, _, slow_log = telemetry_server
        client, _ = traced_client(handle)
        with client:
            client.query(STATEMENT)
        statements = [r for r in slow_log.records() if r.statement]
        assert statements
        assert {r.tenant for r in statements} == {"acme"}


class TestRequestTimeout:
    def test_read_timeout_maps_to_typed_error(self, manager, config):
        with serve_background(manager, config, statement_delay=0.6) as handle:
            with WarehouseClient(
                handle.host,
                handle.port,
                api_key="acme-key",
                request_timeout=0.15,
            ) as client:
                with pytest.raises(RemoteTimeoutError) as excinfo:
                    client.query(STATEMENT)
        assert excinfo.value.code == "timeout"

    def test_connect_timeout_is_independent(self, server_handle):
        # A generous connect timeout with a tight request timeout still
        # connects and authenticates fine when statements are fast.
        with WarehouseClient(
            server_handle.host,
            server_handle.port,
            api_key="acme-key",
            connect_timeout=5.0,
            request_timeout=5.0,
        ) as client:
            assert client.query(STATEMENT).rows


class TestUsageOverTheWire:
    def test_ledger_attributes_concurrent_tenants(self, telemetry_server):
        handle, _, metrics, _ = telemetry_server
        rounds = 3
        errors: list[BaseException] = []

        def workload(api_key: str) -> None:
            try:
                with WarehouseClient(
                    handle.host, handle.port, api_key=api_key
                ) as client:
                    for _ in range(rounds):
                        client.query(STATEMENT)
            except BaseException as exc:  # pragma: no cover - surfacing
                errors.append(exc)

        threads = [
            threading.Thread(target=workload, args=(key,))
            for key in ("acme-key", "ops-key")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

        totals = handle.server.usage.totals()
        assert set(totals) == {"acme", "ops"}
        global_scanned = sum(
            value
            for key, value in metrics.snapshot()["counters"].items()
            if key.startswith("query.rows_scanned{")
        )
        metered = sum(bill["rows_scanned"] for bill in totals.values())
        assert metered == pytest.approx(global_scanned)
        assert totals["acme"]["statements"] == rounds
        assert totals["ops"]["statements"] == rounds
        assert all(bill["wire_bytes"] > 0 for bill in totals.values())

    def test_usage_op_scopes_by_capability(self, telemetry_server):
        handle, _, _, _ = telemetry_server
        with WarehouseClient(
            handle.host, handle.port, api_key="acme-key"
        ) as acme, WarehouseClient(
            handle.host, handle.port, api_key="ops-key"
        ) as ops:
            acme.query(STATEMENT)
            ops.query("SELECT amount BY year")
            # Read-only acme sees only its own bill, whatever it asks for.
            mine = acme.usage()
            assert mine["enabled"] is True
            assert set(mine["totals"]) == {"acme"}
            assert set(acme.usage(tenant="ops")["totals"]) == {"acme"}
            # Write-capable ops sees everyone, or can narrow to a tenant.
            assert set(ops.usage()["totals"]) == {"acme", "ops"}
            narrowed = ops.usage(tenant="acme")
            assert set(narrowed["totals"]) == {"acme"}
            assert all(
                record["tenant"] == "acme" for record in narrowed["records"]
            )
