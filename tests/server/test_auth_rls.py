"""Unit tests for tenant config, authentication, and RLS compilation."""

import pytest

from repro.core import Interval, LevelGroup, Query, TimeGroup, YEAR, ym
from repro.core.query import LevelFilter
from repro.server import (
    AuthFailedError,
    ConfigError,
    ForbiddenError,
    RLSConfigError,
    RLSPolicy,
    RLSRule,
    RateLimit,
    ServerConfig,
    TenantConfig,
    demo_config,
)
from repro.workloads.case_study import ORG


class TestTenantConfig:
    def test_defaults(self):
        tenant = TenantConfig(tenant="t", api_key="k")
        assert tenant.max_concurrent == 4
        assert tenant.rate_limit is None
        assert not tenant.can_write
        assert tenant.policy().unrestricted

    def test_rejects_empty_identity(self):
        with pytest.raises(ConfigError):
            TenantConfig(tenant="", api_key="k")
        with pytest.raises(ConfigError):
            TenantConfig(tenant="t", api_key="")

    def test_writer_cannot_be_rls_scoped(self):
        rule = RLSRule(dimension="org", level="Division", values=("Sales",))
        with pytest.raises(ConfigError):
            TenantConfig(tenant="t", api_key="k", rls=(rule,), can_write=True)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError):
            TenantConfig.from_dict(
                {"tenant": "t", "api_key": "k", "admin": True}
            )

    def test_round_trips_through_dict(self):
        tenant = TenantConfig(
            tenant="t",
            api_key="k",
            rls=(RLSRule(dimension="org", level="Division", values=("Sales",)),),
            max_concurrent=3,
            rate_limit=RateLimit(capacity=10, refill_per_sec=5),
        )
        assert TenantConfig.from_dict(tenant.to_dict()) == tenant


class TestServerConfig:
    def test_rejects_duplicate_names_and_keys(self):
        with pytest.raises(ConfigError):
            ServerConfig(
                [
                    TenantConfig(tenant="t", api_key="a"),
                    TenantConfig(tenant="t", api_key="b"),
                ]
            )
        with pytest.raises(ConfigError):
            ServerConfig(
                [
                    TenantConfig(tenant="t1", api_key="same"),
                    TenantConfig(tenant="t2", api_key="same"),
                ]
            )

    def test_load_dump_round_trip(self, tmp_path):
        path = tmp_path / "tenants.json"
        config = demo_config()
        config.dump(path)
        loaded = ServerConfig.load(path)
        assert [t.tenant for t in loaded.tenants] == ["acme", "ops"]
        assert loaded.tenant("acme").rls == config.tenant("acme").rls

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(ConfigError):
            ServerConfig.load(path)
        with pytest.raises(ConfigError):
            ServerConfig.load(tmp_path / "missing.json")

    def test_authenticate_matches_exact_key_only(self):
        config = demo_config()
        assert config.authenticate("acme-key").tenant == "acme"
        assert config.authenticate("ops-key").tenant == "ops"
        for bad in ("acme-key ", "acme-ke", "", None, 42, "other"):
            with pytest.raises(AuthFailedError):
                config.authenticate(bad)

    def test_auth_failure_does_not_name_tenants(self):
        with pytest.raises(AuthFailedError) as info:
            demo_config().authenticate("wrong")
        assert "acme" not in str(info.value)
        assert "ops" not in str(info.value)


class TestRLSRules:
    def test_rule_needs_values(self):
        with pytest.raises(RLSConfigError):
            RLSRule(dimension="org", level="Division", values=())

    def test_from_dict_rejects_string_values(self):
        with pytest.raises(RLSConfigError):
            RLSRule.from_dict(
                {"dimension": "org", "level": "Division", "values": "Sales"}
            )

    def test_rule_compiles_to_level_filter(self):
        rule = RLSRule(dimension="org", level="Division", values=("Sales",))
        assert rule.to_filter() == LevelFilter("org", "Division", ("Sales",))


class TestRLSPolicy:
    def _query(self, **kwargs):
        return Query(
            group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")),
            time_range=Interval(ym(2001, 1), ym(2003, 12)),
            **kwargs,
        )

    def test_apply_appends_filters_conjunctively(self):
        policy = RLSPolicy(
            [RLSRule(dimension="org", level="Division", values=("Sales",))]
        )
        own = LevelFilter("org", "Department", ("Dpt.Jones",))
        secured = policy.apply(self._query(level_filters=(own,)))
        assert secured.level_filters == (
            own,
            LevelFilter("org", "Division", ("Sales",)),
        )

    def test_unrestricted_policy_is_identity(self):
        query = self._query()
        assert RLSPolicy().apply(query) is query

    def test_validate_against_case_study_schema(self, study):
        mvft = study.schema.multiversion_facts()
        RLSPolicy(
            [RLSRule(dimension="org", level="Division", values=("Sales",))]
        ).validate(mvft)
        with pytest.raises(RLSConfigError):
            RLSPolicy(
                [RLSRule(dimension="geo", level="Region", values=("EU",))]
            ).validate(mvft)
        with pytest.raises(RLSConfigError):
            RLSPolicy(
                [RLSRule(dimension="org", level="Region", values=("EU",))]
            ).validate(mvft)

    def test_guard_writes(self):
        scoped = RLSPolicy(
            [RLSRule(dimension="org", level="Division", values=("Sales",))]
        )
        with pytest.raises(ForbiddenError):
            scoped.guard_writes("acme")
        RLSPolicy().guard_writes("ops")  # no-op
