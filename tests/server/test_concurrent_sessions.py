"""Concurrent sessions under writer churn — the integration scenario.

N client sessions (threads driving blocking clients, multiplexed onto
the server's one event loop) issue MVQL statements, pivots and AS-OF
reads while a writer keeps committing evolutions.  The assertions are
the server tier's contract:

* **snapshot consistency** — every session's repeated reads return the
  version pinned at authentication, bit-for-bit, no matter how many
  commits land mid-flight;
* **RLS isolation** — the scoped tenant never observes a member outside
  its slice in any interleaving;
* **typed conflicts** — a write racing the churn loses first-committer-
  wins validation and surfaces as a clean ``conflict`` over the wire,
  recoverable with ``refresh``.
"""

import threading
import time

import pytest

from repro.concurrency.errors import WriteConflictError
from repro.observability import MetricsRegistry
from repro.robustness import TransactionManager
from repro.server import (
    RemoteConflictError,
    WarehouseClient,
    serve_background,
)

from .conftest import insert_department

N_READERS = 4
STATEMENTS_PER_READER = 6
N_CHURN_COMMITS = 8


@pytest.fixture()
def churn_handle(manager, config):
    with serve_background(manager, config, metrics=MetricsRegistry()) as handle:
        yield handle


def _churn_writer(manager, txm: TransactionManager, stop: threading.Event):
    """Commit evolutions back-to-back until told to stop."""
    committed = 0
    while not stop.is_set() and committed < N_CHURN_COMMITS:
        mvid = f"dpt-churn-{committed}"

        def insert(_editor, mvid=mvid, n=committed):
            return insert_department(txm, mvid, f"Dpt.Churn{n}")

        try:
            manager.run_write(insert)
        except WriteConflictError:
            continue  # another writer won this round; retry
        committed += 1
        time.sleep(0.005)
    return committed


class TestConcurrentSessionsUnderChurn:
    def test_sessions_stay_consistent_rls_holds_and_conflicts_are_clean(
        self, churn_handle, manager, txm
    ):
        stop = threading.Event()
        writer = threading.Thread(
            target=_churn_writer, args=(manager, txm, stop)
        )
        failures: list[str] = []
        lock = threading.Lock()

        def fail(message: str) -> None:
            with lock:
                failures.append(message)

        def reader(i: int) -> None:
            tenant_key = "acme-key" if i % 2 == 0 else "ops-key"
            scoped = tenant_key == "acme-key"
            try:
                with WarehouseClient(
                    churn_handle.host, churn_handle.port, api_key=tenant_key
                ) as client:
                    baseline_versions = client.query("SHOW VERSIONS")
                    baseline_totals = client.query(
                        "SELECT amount BY year, org.Division"
                    ).as_dict()
                    for _ in range(STATEMENTS_PER_READER):
                        # Repeatability: the pinned snapshot never moves.
                        if client.query("SHOW VERSIONS") != baseline_versions:
                            fail(f"reader {i}: SHOW VERSIONS drifted")
                        totals = client.query(
                            "SELECT amount BY year, org.Division"
                        ).as_dict()
                        if totals != baseline_totals:
                            fail(f"reader {i}: SELECT drifted")
                        pivot = client.pivot(
                            "tcm", "year", "org.Division", "amount"
                        )
                        if scoped:
                            # RLS: the slice boundary holds mid-churn.
                            if set(key[1] for key in totals) - {"Sales"}:
                                fail(f"reader {i}: RLS leak in SELECT")
                            if pivot.cols != ["Sales"]:
                                fail(f"reader {i}: RLS leak in pivot")
                        elif pivot.cols == ["Sales"]:
                            fail(f"reader {i}: ops tenant lost R&D")
            except Exception as exc:  # noqa: BLE001 - surfaced below
                fail(f"reader {i}: {type(exc).__name__}: {exc}")

        readers = [
            threading.Thread(target=reader, args=(i,))
            for i in range(N_READERS)
        ]
        writer.start()
        for thread in readers:
            thread.start()
        for thread in readers:
            thread.join(timeout=60.0)
        # Let the writer land all of its commits; the stop event is only
        # a failsafe against a hung join, not the normal exit path.
        writer.join(timeout=60.0)
        stop.set()
        assert not failures, "\n".join(failures)
        assert manager.version >= N_CHURN_COMMITS

    def test_write_racing_churn_conflicts_cleanly_over_the_wire(
        self, churn_handle, manager, txm
    ):
        with WarehouseClient(
            churn_handle.host, churn_handle.port, api_key="ops-key"
        ) as client:
            # Make the session's pinned base stale.
            manager.run_write(
                lambda _e: insert_department(txm, "dpt-race", "Dpt.Race")
            )
            member = {
                "dimension": "org",
                "mvid": "dpt-late",
                "name": "Dpt.Late",
                "level": "Department",
                "t": [2003, 6],
                "parents": ["sales"],
            }
            with pytest.raises(RemoteConflictError):
                client.evolve(member)
            # The session itself survives the conflict: reads still work
            # on the pinned snapshot, and refresh + retry commits.
            assert client.query("SHOW MODES")
            client.refresh()
            payload = client.evolve(member)
            assert payload["committed_version"] == manager.version

    def test_asof_reads_stay_stable_while_writers_commit(
        self, manager, txm, config, tmp_path
    ):
        # AS-OF needs a journal: rebuild the warehouse with a WAL.
        wal = tmp_path / "server.wal"
        from repro.concurrency import SnapshotManager
        from repro.workloads.case_study import build_case_study

        study = build_case_study()
        txm = TransactionManager(study.schema, wal=wal)
        manager = SnapshotManager(txm)
        manager.run_write(
            lambda _e: insert_department(txm, "dpt-first", "Dpt.First")
        )
        with serve_background(manager, config, wal_path=wal) as handle:
            with WarehouseClient(
                handle.host, handle.port, api_key="ops-key"
            ) as client:
                historical = client.query("SHOW VERSIONS", as_of=1)
                for n in range(3):
                    manager.run_write(
                        lambda _e, n=n: insert_department(
                            txm, f"dpt-more-{n}", f"Dpt.More{n}"
                        )
                    )
                    # The historical answer is immutable by definition.
                    assert (
                        client.query("SHOW VERSIONS", as_of=1) == historical
                    )
                client.refresh()
                assert client.query("SHOW VERSIONS") != historical
