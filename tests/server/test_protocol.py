"""Unit tests for the NDJSON wire protocol layer."""

import json

import pytest

from repro.concurrency.errors import WriteConflictError
from repro.core.errors import QueryError
from repro.mvql.errors import MVQLCompileError, MVQLSyntaxError
from repro.server import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    BadRequestError,
    ProtocolError,
    QuotaExceededError,
    RateLimitedError,
    ShuttingDownError,
    decode_line,
    encode_message,
    error_code_for,
    error_response,
    ok_response,
)


class TestFraming:
    def test_encode_decode_round_trip(self):
        message = {"id": 3, "op": "query", "statement": "SHOW MODES"}
        line = encode_message(message)
        assert line.endswith(b"\n")
        assert decode_line(line) == message

    def test_encoded_message_is_one_line(self):
        line = encode_message({"text": "a\nb", "n": 1})
        assert line.count(b"\n") == 1

    def test_decode_rejects_invalid_json(self):
        with pytest.raises(BadRequestError):
            decode_line(b"{not json}\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(BadRequestError):
            decode_line(b"[1, 2, 3]\n")

    def test_decode_rejects_oversized_line(self):
        with pytest.raises(BadRequestError):
            decode_line(b" " * (MAX_LINE_BYTES + 1))


class TestResponses:
    def test_ok_response_echoes_id(self):
        response = ok_response(7, rows=3)
        assert response == {"id": 7, "ok": True, "rows": 3}

    def test_error_response_shape(self):
        response = error_response(9, "rate_limited", "slow down", retry_s=1)
        assert response["id"] == 9
        assert response["ok"] is False
        assert response["error"]["code"] == "rate_limited"
        assert response["error"]["details"] == {"retry_s": 1}

    def test_error_response_rejects_unknown_code(self):
        with pytest.raises(ValueError):
            error_response(1, "not_a_code", "boom")

    def test_responses_are_json_safe(self):
        for response in (
            ok_response(None, value=1.5),
            error_response("abc", "internal", "boom"),
        ):
            json.loads(encode_message(response))


class TestErrorCodes:
    def test_typed_protocol_errors_carry_their_codes(self):
        assert QuotaExceededError("x").code == "quota_exceeded"
        assert RateLimitedError("x").code == "rate_limited"
        assert ShuttingDownError("x").code == "shutting_down"
        for cls in (QuotaExceededError, RateLimitedError, ShuttingDownError):
            assert cls("x").code in ERROR_CODES

    def test_protocol_error_rejects_unknown_code(self):
        with pytest.raises(ValueError):
            ProtocolError("boom", code="nope")

    def test_engine_exceptions_map_to_codes(self):
        assert (
            error_code_for(WriteConflictError(["org"], 0, 1))
            == "conflict"
        )
        assert error_code_for(MVQLSyntaxError("s")) == "parse_error"
        assert error_code_for(MVQLCompileError("c")) == "compile_error"
        assert error_code_for(QueryError("q")) == "query_error"
        assert error_code_for(RuntimeError("anything")) == "internal"

    def test_every_mapped_code_is_declared(self):
        for exc in (
            WriteConflictError(["org"], 0, 1),
            MVQLSyntaxError("s"),
            MVQLCompileError("c"),
            QueryError("q"),
            RuntimeError("r"),
            BadRequestError("b"),
        ):
            assert error_code_for(exc) in ERROR_CODES
