"""Unit tests for admission control: buckets, quotas, and metrics."""

import pytest

from repro.observability import MetricsRegistry
from repro.server import (
    AdmissionController,
    QuotaExceededError,
    RateLimitedError,
    RateLimit,
    TenantConfig,
    TokenBucket,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(3, 1.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True,
            True,
            True,
            False,
        ]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(2, 0.5, clock=clock)
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()
        clock.advance(2.0)  # 1 token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_never_exceeds_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(2, 10.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available == 2.0

    def test_zero_refill_never_recovers(self):
        clock = FakeClock()
        bucket = TokenBucket(1, 0.0, clock=clock)
        assert bucket.try_acquire()
        clock.advance(3600.0)
        assert not bucket.try_acquire()

    def test_validates_shape(self):
        with pytest.raises(ValueError):
            TokenBucket(0, 1.0)
        with pytest.raises(ValueError):
            TokenBucket(1, -1.0)


class TestAdmissionController:
    def _controller(self, **kwargs):
        clock = FakeClock()
        controller = AdmissionController(clock=clock, **kwargs)
        return controller, clock

    def test_tenant_concurrency_quota(self):
        controller, _ = self._controller(metrics=MetricsRegistry())
        controller.register(TenantConfig(tenant="t", api_key="k", max_concurrent=2))
        controller.try_admit("t")
        controller.try_admit("t")
        with pytest.raises(QuotaExceededError):
            controller.try_admit("t")
        controller.release("t")
        controller.try_admit("t")  # slot freed

    def test_global_capacity_gate(self):
        controller, _ = self._controller(
            max_global_concurrent=2, metrics=MetricsRegistry()
        )
        for name in ("a", "b", "c"):
            controller.register(
                TenantConfig(tenant=name, api_key=f"{name}-key")
            )
        controller.try_admit("a")
        controller.try_admit("b")
        with pytest.raises(QuotaExceededError):
            controller.try_admit("c")

    def test_rate_limit_gate_and_recovery(self):
        controller, clock = self._controller(metrics=MetricsRegistry())
        controller.register(
            TenantConfig(
                tenant="t",
                api_key="k",
                max_concurrent=10,
                rate_limit=RateLimit(capacity=2, refill_per_sec=1),
            )
        )
        with controller.admit("t"):
            pass
        with controller.admit("t"):
            pass
        with pytest.raises(RateLimitedError):
            controller.try_admit("t")
        clock.advance(1.0)
        with controller.admit("t"):
            pass

    def test_unregistered_tenant_is_rejected(self):
        controller, _ = self._controller()
        with pytest.raises(QuotaExceededError):
            controller.try_admit("ghost")

    def test_admit_context_releases_on_error(self):
        controller, _ = self._controller()
        controller.register(TenantConfig(tenant="t", api_key="k", max_concurrent=1))
        with pytest.raises(RuntimeError):
            with controller.admit("t"):
                raise RuntimeError("statement failed")
        assert controller.active_for("t") == 0
        controller.try_admit("t")  # slot was returned

    def test_rejections_feed_metrics(self):
        metrics = MetricsRegistry()
        controller, _ = self._controller(metrics=metrics)
        controller.register(
            TenantConfig(
                tenant="t",
                api_key="k",
                max_concurrent=1,
                rate_limit=RateLimit(capacity=1, refill_per_sec=0),
            )
        )
        with pytest.raises(QuotaExceededError):
            with controller.admit("t"):
                controller.try_admit("t")
        with pytest.raises(RateLimitedError):
            controller.try_admit("t")
        counters = metrics.snapshot()["counters"]
        assert counters['server.rejected{reason="concurrency",tenant="t"}'] == 1
        assert counters['server.rejected{reason="rate",tenant="t"}'] == 1
