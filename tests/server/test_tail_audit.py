"""Server-tier CDC and audit-trail tests.

The ``tail`` op streams the journal's committed change events over the
wire (write-capable tenants only), and every auditable action — auth
success and failure, statements, evolves, admission rejections, drain —
lands in the JSONL audit trail keyed by tenant and session.
"""

import json

import pytest

from repro.concurrency import SnapshotManager
from repro.observability import (
    ChangeStream,
    EventBus,
    MetricsRegistry,
    read_audit_log,
)
from repro.robustness import TransactionManager
from repro.server import (
    RemoteAuthError,
    RemoteBadRequestError,
    RemoteForbiddenError,
    WarehouseClient,
    demo_config,
    serve_background,
)
from repro.workloads.case_study import build_case_study

@pytest.fixture()
def wal_path(tmp_path):
    return tmp_path / "server.wal"


@pytest.fixture()
def audit_path(tmp_path):
    return tmp_path / "audit.jsonl"


@pytest.fixture()
def walled_manager(wal_path):
    txm = TransactionManager(build_case_study().schema, wal=wal_path)
    return SnapshotManager(txm)


def member(n):
    return {
        "dimension": "org",
        "mvid": f"idCdc{n}",
        "name": f"CDC{n}",
        "t": [2003, 6],
        "level": "Department",
        "parents": ["sales"],
    }


class TestTailOp:
    def test_churning_writer_live_tailer_roundtrip(
        self, walled_manager, wal_path, tmp_path
    ):
        """The acceptance loop: a writer keeps evolving while a tailer
        follows with cursor resume; the stitched event sequence is
        byte-identical to one cold tail over the full journal."""
        with serve_background(
            walled_manager, demo_config(), wal_path=wal_path
        ) as handle:
            with WarehouseClient(
                handle.host, handle.port, api_key="ops-key"
            ) as ops:
                collected = []
                cursor = 0
                for round_no in range(3):
                    ops.evolve(member(round_no))
                    ops.refresh()
                    batch = ops.tail(from_lsn=cursor)
                    collected.extend(batch["events"])
                    cursor = batch["cursor_lsn"]
                cold = ops.tail(from_lsn=0)
        assert len(collected) == len(cold["events"]) > 0
        assert json.dumps(collected, sort_keys=True) == json.dumps(
            cold["events"], sort_keys=True
        )
        # and the wire view matches an in-process stream over the journal
        local = [e.to_dict() for e in ChangeStream(wal_path).poll()]
        assert json.dumps(cold["events"], sort_keys=True) == json.dumps(
            local, sort_keys=True
        )

    def test_tail_pages_and_kind_filter(self, walled_manager, wal_path):
        with serve_background(
            walled_manager, demo_config(), wal_path=wal_path
        ) as handle:
            with WarehouseClient(
                handle.host, handle.port, api_key="ops-key"
            ) as ops:
                for n in range(3):
                    ops.evolve(member(n))
                    ops.refresh()
                paged = ops.tail(from_lsn=0, page_size=1)
                assert len(paged["events"]) == paged["total"] >= 3
                ops_only = ops.tail(from_lsn=0, kinds=["op"])
                assert ops_only["events"]
                assert all(e["kind"] == "op" for e in ops_only["events"])

    def test_read_only_tenant_forbidden(self, walled_manager, wal_path):
        with serve_background(
            walled_manager, demo_config(), wal_path=wal_path
        ) as handle:
            with WarehouseClient(
                handle.host, handle.port, api_key="acme-key"
            ) as acme:
                with pytest.raises(RemoteForbiddenError, match="tail"):
                    acme.tail()

    def test_no_wal_and_bad_arguments(self, manager, walled_manager, wal_path):
        with serve_background(manager, demo_config()) as handle:
            with WarehouseClient(
                handle.host, handle.port, api_key="ops-key"
            ) as ops:
                with pytest.raises(RemoteBadRequestError, match="no WAL"):
                    ops.tail()
        with serve_background(
            walled_manager, demo_config(), wal_path=wal_path
        ) as handle:
            with WarehouseClient(
                handle.host, handle.port, api_key="ops-key"
            ) as ops:
                with pytest.raises(RemoteBadRequestError, match="from_lsn"):
                    ops.call("tail", from_lsn=-1)
                with pytest.raises(RemoteBadRequestError, match="kind"):
                    ops.call("tail", kinds=["commit"])

    def test_tail_listed_in_hello(self, manager):
        with serve_background(manager, demo_config()) as handle:
            with WarehouseClient(handle.host, handle.port) as anon:
                assert "tail" in anon.hello()["ops"]


class TestAuditTrail:
    def test_full_session_lifecycle_is_audited(
        self, walled_manager, wal_path, audit_path
    ):
        handle = serve_background(
            walled_manager,
            demo_config(),
            wal_path=wal_path,
            audit_log=audit_path,
        )
        try:
            with pytest.raises(RemoteAuthError):
                WarehouseClient(handle.host, handle.port, api_key="wrong")
            with WarehouseClient(
                handle.host, handle.port, api_key="ops-key"
            ) as ops:
                ops.query("SELECT amount BY year")
                payload = ops.evolve(member(0))
        finally:
            assert handle.stop()
        entries = read_audit_log(audit_path)
        by_action = {}
        for entry in entries:
            by_action.setdefault(entry["action"], []).append(entry)
        (failed,) = by_action["auth_failed"]
        assert failed["ok"] is False and failed["tenant"] is None
        (auth,) = by_action["auth"]
        assert auth["tenant"] == "ops"
        assert auth["session"].startswith("ops-")
        (statement,) = by_action["statement"]
        assert statement["session"] == auth["session"]
        assert statement["detail"]["op"] == "query"
        assert "SELECT amount" in statement["detail"]["statement"]
        (evolve,) = by_action["evolve"]
        assert evolve["lsn"] == payload["committed_version"]
        assert evolve["tenant"] == "ops"
        (drain,) = by_action["drain"]
        assert drain["ok"] is True
        # the audit trail and the journal agree on the last committed LSN
        from repro.observability import last_committed_lsn

        assert max(
            e["lsn"] for e in entries if "lsn" in e
        ) == last_committed_lsn(wal_path)

    def test_rejections_are_audited_with_tenant(self, manager, audit_path):
        # acme's demo quota: 2 concurrent statements; saturate with slow
        # ones, the third is rejected and audited
        with serve_background(
            manager,
            demo_config(),
            audit_log=audit_path,
            statement_delay=0.5,
        ) as handle:
            import threading

            from repro.server import RemoteQuotaError

            def slow_query():
                with WarehouseClient(
                    handle.host, handle.port, api_key="acme-key"
                ) as c:
                    try:
                        c.query("SELECT amount BY year")
                    except RemoteQuotaError:
                        pass  # the rejection under test

            threads = [
                threading.Thread(target=slow_query) for _ in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        rejected = read_audit_log(audit_path, action="rejected")
        assert rejected, "expected at least one audited admission rejection"
        assert all(e["tenant"] == "acme" for e in rejected)
        assert all(e["ok"] is False for e in rejected)

    def test_audit_events_republished_on_bus(self, manager, audit_path):
        bus = EventBus()
        sub = bus.subscribe(topics=["audit"])
        with serve_background(
            manager, demo_config(), audit_log=audit_path, event_bus=bus
        ) as handle:
            with WarehouseClient(
                handle.host, handle.port, api_key="acme-key"
            ):
                pass
        actions = [entry["action"] for _, entry in sub.drain()]
        assert "auth" in actions and "drain" in actions


class TestTenantErrorLabels:
    def test_server_errors_counter_carries_tenant(self, manager):
        metrics = MetricsRegistry()
        with serve_background(
            manager, demo_config(), metrics=metrics
        ) as handle:
            with WarehouseClient(
                handle.host, handle.port, api_key="acme-key"
            ) as acme:
                with pytest.raises(Exception):
                    acme.query("NOT VALID MVQL")
        counters = metrics.snapshot()["counters"]
        labelled = [
            key
            for key in counters
            if key.startswith("server.errors") and 'tenant="acme"' in key
        ]
        assert labelled, f"no tenant-labelled error counter in {counters}"
