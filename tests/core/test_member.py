"""Unit tests for member versions (Definition 1)."""

import pytest

from repro.core import Interval, MemberVersion, ModelError, NOW


def mv(mvid="d1", name="Dept", start=0, end=NOW, **kw):
    return MemberVersion(mvid, name, Interval(start, end), **kw)


class TestConstruction:
    def test_requires_id(self):
        with pytest.raises(ModelError):
            MemberVersion("", "Dept", Interval(0))

    def test_requires_name(self):
        with pytest.raises(ModelError):
            MemberVersion("d1", "", Interval(0))

    def test_attributes_are_frozen(self):
        m = mv(attributes={"city": "Lyon"})
        with pytest.raises(TypeError):
            m.attributes["city"] = "Quebec"  # type: ignore[index]

    def test_attributes_copied_not_aliased(self):
        attrs = {"city": "Lyon"}
        m = mv(attributes=attrs)
        attrs["city"] = "Quebec"
        assert m.attributes["city"] == "Lyon"

    def test_level_is_optional(self):
        assert mv().level is None
        assert mv(level="Department").level == "Department"


class TestValidity:
    def test_valid_at_endpoints(self):
        m = mv(start=5, end=9)
        assert m.valid_at(5) and m.valid_at(9)
        assert not m.valid_at(4) and not m.valid_at(10)

    def test_open_ended_version(self):
        m = mv(start=5)
        assert m.valid_at(10**9)
        assert m.end is NOW

    def test_valid_throughout(self):
        m = mv(start=0, end=10)
        assert m.valid_throughout(Interval(2, 8))
        assert not m.valid_throughout(Interval(2, 12))

    def test_start_end_accessors(self):
        m = mv(start=3, end=7)
        assert (m.start, m.end) == (3, 7)


class TestExclusion:
    def test_excluded_at_ends_previous_chronon(self):
        m = mv(start=0, end=NOW).excluded_at(10)
        assert m.valid_time == Interval(0, 9)

    def test_exclusion_before_start_rejected(self):
        with pytest.raises(ModelError):
            mv(start=5).excluded_at(5)

    def test_exclusion_preserves_identity_fields(self):
        m = mv(mvid="x", name="X", start=0, level="L", attributes={"a": 1})
        cut = m.excluded_at(3)
        assert (cut.mvid, cut.name, cut.level) == ("x", "X", "L")
        assert dict(cut.attributes) == {"a": 1}


class TestEqualityHashing:
    def test_equal_versions(self):
        assert mv(attributes={"a": 1}) == mv(attributes={"a": 1})

    def test_attribute_difference_breaks_equality(self):
        assert mv(attributes={"a": 1}) != mv(attributes={"a": 2})

    def test_usable_in_sets(self):
        assert len({mv(), mv()}) == 1

    def test_overlapping_versions_of_same_member_allowed(self):
        # Definition 1's note: a member may have several valid versions at
        # one instant; nothing in the value object forbids it.
        v1 = mv(mvid="a1", name="A", start=0, end=10)
        v2 = mv(mvid="a2", name="A", start=5, end=15)
        assert v1.valid_at(7) and v2.valid_at(7)
