"""Unit tests for measures, aggregates and the consistent fact table."""

import pytest

from repro.core import (
    AVG,
    COUNT,
    FactError,
    MAX,
    MIN,
    Measure,
    SUM,
    TemporallyConsistentFactTable,
)


class TestAggregates:
    def test_sum(self):
        assert SUM.combine_all([1.0, 2.0, 3.0]) == 6.0

    def test_min_max(self):
        assert MIN.combine_all([3.0, 1.0, 2.0]) == 1.0
        assert MAX.combine_all([3.0, 1.0, 2.0]) == 3.0

    def test_count(self):
        assert COUNT.combine_all([5.0, 6.0]) == 2.0

    def test_avg(self):
        assert AVG.combine_all([2.0, 4.0]) == 3.0

    def test_unknowns_skipped(self):
        assert SUM.combine_all([1.0, None, 2.0]) == 3.0
        assert COUNT.combine_all([1.0, None]) == 1.0

    def test_all_unknown_is_unknown(self):
        assert SUM.combine_all([None, None]) is None
        assert SUM.combine_all([]) is None


class TestMeasure:
    def test_needs_name(self):
        with pytest.raises(FactError):
            Measure("")

    def test_default_aggregate_is_sum(self):
        assert Measure("amount").aggregate is SUM


def make_table():
    return TemporallyConsistentFactTable(
        dimensions=["org", "product"],
        measures=[Measure("amount", SUM), Measure("peak", MAX)],
    )


class TestTableConstruction:
    def test_needs_dimensions(self):
        with pytest.raises(FactError):
            TemporallyConsistentFactTable([], [Measure("m")])

    def test_needs_measures(self):
        with pytest.raises(FactError):
            TemporallyConsistentFactTable(["d"], [])

    def test_duplicate_dimensions_rejected(self):
        with pytest.raises(FactError):
            TemporallyConsistentFactTable(["d", "d"], [Measure("m")])

    def test_duplicate_measures_rejected(self):
        with pytest.raises(FactError):
            TemporallyConsistentFactTable(["d"], [Measure("m"), Measure("m")])

    def test_unknown_measure_lookup(self):
        with pytest.raises(FactError):
            make_table().measure("nope")


class TestAddingRows:
    def test_shape_validation_missing_dimension(self):
        t = make_table()
        with pytest.raises(FactError):
            t.add({"org": "a"}, 0, amount=1.0, peak=1.0)

    def test_shape_validation_extra_dimension(self):
        t = make_table()
        with pytest.raises(FactError):
            t.add({"org": "a", "product": "p", "zzz": "x"}, 0, amount=1.0, peak=1.0)

    def test_shape_validation_missing_measure(self):
        t = make_table()
        with pytest.raises(FactError):
            t.add({"org": "a", "product": "p"}, 0, amount=1.0)

    def test_shape_validation_unknown_measure(self):
        t = make_table()
        with pytest.raises(FactError):
            t.add({"org": "a", "product": "p"}, 0, amount=1.0, peak=1.0, zz=2.0)

    def test_values_mapping_and_kwargs_merge(self):
        t = make_table()
        row = t.add({"org": "a", "product": "p"}, 3, {"amount": 1.0}, peak=9.0)
        assert row.value("amount") == 1.0 and row.value("peak") == 9.0

    def test_unknown_value_allowed(self):
        t = make_table()
        row = t.add({"org": "a", "product": "p"}, 3, amount=None, peak=1.0)
        assert row.value("amount") is None


class TestLookups:
    def test_rows_at(self):
        t = make_table()
        t.add({"org": "a", "product": "p"}, 1, amount=1.0, peak=1.0)
        t.add({"org": "a", "product": "p"}, 2, amount=2.0, peak=2.0)
        assert [r.t for r in t.rows_at(2)] == [2]

    def test_rows_for(self):
        t = make_table()
        t.add({"org": "a", "product": "p"}, 1, amount=1.0, peak=1.0)
        t.add({"org": "b", "product": "p"}, 1, amount=2.0, peak=2.0)
        assert len(t.rows_for("org", "a")) == 1
        with pytest.raises(FactError):
            t.rows_for("nope", "a")

    def test_lookup_returns_latest_duplicate(self):
        t = make_table()
        t.add({"org": "a", "product": "p"}, 1, amount=1.0, peak=1.0)
        t.add({"org": "a", "product": "p"}, 1, amount=5.0, peak=5.0)
        row = t.lookup({"org": "a", "product": "p"}, 1)
        assert row is not None and row.value("amount") == 5.0

    def test_lookup_miss(self):
        assert make_table().lookup({"org": "zz", "product": "p"}, 1) is None

    def test_total_uses_measure_aggregate(self):
        t = make_table()
        t.add({"org": "a", "product": "p"}, 1, amount=1.0, peak=7.0)
        t.add({"org": "b", "product": "p"}, 1, amount=2.0, peak=3.0)
        assert t.total("amount") == 3.0
        assert t.total("peak") == 7.0  # MAX aggregate

    def test_to_records(self):
        t = make_table()
        t.add({"org": "a", "product": "p"}, 1, amount=1.0, peak=7.0)
        rec = t.to_records()[0]
        assert rec == {"org": "a", "product": "p", "t": 1, "amount": 1.0, "peak": 7.0}

    def test_fact_row_coordinate_validation(self):
        t = make_table()
        row = t.add({"org": "a", "product": "p"}, 1, amount=1.0, peak=7.0)
        assert row.coordinate("org") == "a"
        with pytest.raises(FactError):
            row.coordinate("zzz")

    def test_len_and_iter(self):
        t = make_table()
        t.add({"org": "a", "product": "p"}, 1, amount=1.0, peak=1.0)
        assert len(t) == 1
        assert len(list(t)) == 1
