"""Unit tests for temporal dimensions and snapshots (Definitions 3-4)."""

import pytest

from repro.core import (
    CyclicHierarchyError,
    DuplicateMemberVersionError,
    Interval,
    InvalidRelationshipError,
    MemberVersion,
    ModelError,
    NOW,
    TemporalDimension,
    TemporalRelationship,
    UnknownMemberVersionError,
)


def build_simple():
    """div > {a, b} from t=0; b reclassified under div2 at t=10."""
    d = TemporalDimension("org", "Organization")
    d.add_member(MemberVersion("div", "Division-1", Interval(0), level="Division"))
    d.add_member(MemberVersion("div2", "Division-2", Interval(0), level="Division"))
    d.add_member(MemberVersion("a", "Dept-A", Interval(0), level="Department"))
    d.add_member(MemberVersion("b", "Dept-B", Interval(0), level="Department"))
    d.add_relationship(TemporalRelationship("a", "div", Interval(0)))
    d.add_relationship(TemporalRelationship("b", "div", Interval(0, 9)))
    d.add_relationship(TemporalRelationship("b", "div2", Interval(10)))
    return d


class TestMaintenance:
    def test_duplicate_member_rejected(self):
        d = TemporalDimension("org")
        d.add_member(MemberVersion("a", "A", Interval(0)))
        with pytest.raises(DuplicateMemberVersionError):
            d.add_member(MemberVersion("a", "A'", Interval(5)))

    def test_relationship_requires_known_members(self):
        d = TemporalDimension("org")
        d.add_member(MemberVersion("a", "A", Interval(0)))
        with pytest.raises(UnknownMemberVersionError):
            d.add_relationship(TemporalRelationship("a", "ghost", Interval(0)))

    def test_relationship_outside_member_validity_rejected(self):
        d = TemporalDimension("org")
        d.add_member(MemberVersion("a", "A", Interval(0, 5)))
        d.add_member(MemberVersion("p", "P", Interval(0, 20)))
        with pytest.raises(InvalidRelationshipError):
            d.add_relationship(TemporalRelationship("a", "p", Interval(0, 10)))

    def test_versions_of_sorted_by_start(self):
        d = TemporalDimension("org")
        d.add_member(MemberVersion("s2", "Smith", Interval(10)))
        d.add_member(MemberVersion("s1", "Smith", Interval(0, 9)))
        assert [m.mvid for m in d.versions_of("Smith")] == ["s1", "s2"]

    def test_replace_relationship_requires_same_endpoints(self):
        d = build_simple()
        rel = d.relationships[0]
        other = TemporalRelationship("b", "div2", Interval(0, 3))
        with pytest.raises(InvalidRelationshipError):
            d.replace_relationship(rel, other)

    def test_empty_dimension_id_rejected(self):
        with pytest.raises(ModelError):
            TemporalDimension("")


class TestCycleDetection:
    def test_inserting_cycle_is_rejected_and_rolled_back(self):
        d = TemporalDimension("org")
        d.add_member(MemberVersion("a", "A", Interval(0)))
        d.add_member(MemberVersion("b", "B", Interval(0)))
        d.add_relationship(TemporalRelationship("a", "b", Interval(0)))
        with pytest.raises(CyclicHierarchyError):
            d.add_relationship(TemporalRelationship("b", "a", Interval(0)))
        # rollback: the offending edge is gone and the dimension validates
        assert len(d.relationships) == 1
        d.validate()

    def test_cycle_in_disjoint_time_slices_is_legal(self):
        """a→b over [0,4] and b→a over [5,9] never coexist: both DAGs."""
        d = TemporalDimension("org")
        d.add_member(MemberVersion("a", "A", Interval(0)))
        d.add_member(MemberVersion("b", "B", Interval(0)))
        d.add_relationship(TemporalRelationship("a", "b", Interval(0, 4)))
        d.add_relationship(TemporalRelationship("b", "a", Interval(5, 9)))
        d.validate()

    def test_validate_detects_cycle_added_unchecked(self):
        d = TemporalDimension("org")
        d.add_member(MemberVersion("a", "A", Interval(0)))
        d.add_member(MemberVersion("b", "B", Interval(0)))
        d.add_relationship(TemporalRelationship("a", "b", Interval(0)))
        d.add_relationship(
            TemporalRelationship("b", "a", Interval(0)), check_acyclic=False
        )
        with pytest.raises(CyclicHierarchyError):
            d.validate()


class TestSnapshots:
    def test_snapshot_membership_follows_valid_time(self):
        d = build_simple()
        snap = d.at(5)
        assert "a" in snap and "b" in snap

    def test_snapshot_edges_follow_valid_time(self):
        d = build_simple()
        assert d.at(5).parents("b") == ["div"]
        assert d.at(10).parents("b") == ["div2"]

    def test_snapshot_excludes_invalid_members(self):
        d = TemporalDimension("org")
        d.add_member(MemberVersion("a", "A", Interval(0, 4)))
        assert "a" not in d.at(5)

    def test_roots_and_leaves(self):
        d = build_simple()
        snap = d.at(0)
        assert snap.roots() == ["div", "div2"]
        assert snap.leaves() == ["a", "b", "div2"]  # div2 childless until t=10

    def test_children(self):
        d = build_simple()
        assert d.at(0).children("div") == ["a", "b"]
        assert d.at(10).children("div") == ["a"]

    def test_descendants_and_ancestors(self):
        d = build_simple()
        snap = d.at(0)
        assert snap.descendants("div") == {"a", "b"}
        assert snap.ancestors("b") == {"div"}

    def test_leaf_descendants_of_leaf_is_itself(self):
        d = build_simple()
        assert d.at(0).leaf_descendants("a") == {"a"}

    def test_unknown_member_in_snapshot_rejected(self):
        d = build_simple()
        with pytest.raises(UnknownMemberVersionError):
            d.at(0).member("ghost")

    def test_topological_order_parents_first(self):
        d = build_simple()
        order = d.at(0).topological_order()
        assert order.index("div") < order.index("a")
        assert order.index("div") < order.index("b")


class TestLevels:
    def test_explicit_levels_win(self):
        d = build_simple()
        levels = d.at(0).levels()
        assert levels == {"Division": ["div", "div2"], "Department": ["a", "b"]}

    def test_depth_levels_when_no_explicit_field(self):
        d = TemporalDimension("org")
        d.add_member(MemberVersion("root", "Root", Interval(0)))
        d.add_member(MemberVersion("mid", "Mid", Interval(0)))
        d.add_member(MemberVersion("leaf", "Leaf", Interval(0)))
        d.add_relationship(TemporalRelationship("mid", "root", Interval(0)))
        d.add_relationship(TemporalRelationship("leaf", "mid", Interval(0)))
        levels = d.at(0).levels()
        assert levels == {
            "depth-0": ["root"],
            "depth-1": ["mid"],
            "depth-2": ["leaf"],
        }

    def test_mixed_level_fields_fall_back_to_depth(self):
        d = TemporalDimension("org")
        d.add_member(MemberVersion("root", "Root", Interval(0), level="Top"))
        d.add_member(MemberVersion("leaf", "Leaf", Interval(0)))  # no level
        d.add_relationship(TemporalRelationship("leaf", "root", Interval(0)))
        assert set(d.at(0).levels()) == {"depth-0", "depth-1"}

    def test_depth_uses_longest_path(self):
        """Non-covering: a leaf under both root and mid sits at depth 2."""
        d = TemporalDimension("org")
        for mvid in ("root", "mid", "leaf"):
            d.add_member(MemberVersion(mvid, mvid, Interval(0)))
        d.add_relationship(TemporalRelationship("mid", "root", Interval(0)))
        d.add_relationship(TemporalRelationship("leaf", "mid", Interval(0)))
        d.add_relationship(TemporalRelationship("leaf", "root", Interval(0)))
        assert d.at(0).depth("leaf") == 2

    def test_level_members_unknown_level(self):
        d = build_simple()
        with pytest.raises(ModelError):
            d.at(0).level_members("Continent")


class TestLeafMemberVersions:
    def test_departments_are_leaves(self):
        d = build_simple()
        leaf_ids = {m.mvid for m in d.leaf_member_versions()}
        assert {"a", "b"} <= leaf_ids

    def test_member_with_children_throughout_is_not_leaf(self):
        d = build_simple()
        leaf_ids = {m.mvid for m in d.leaf_member_versions()}
        assert "div" not in leaf_ids

    def test_member_childless_for_a_while_is_leaf(self):
        """div2 has no children before t=10, so it *is* a leaf member
        version per the paper ('no children at, at least, one instant')."""
        d = build_simple()
        leaf_ids = {m.mvid for m in d.leaf_member_versions()}
        assert "div2" in leaf_ids

    def test_is_leaf_at(self):
        d = build_simple()
        assert d.is_leaf_at("div2", 5)
        assert not d.is_leaf_at("div2", 10)
        assert not d.is_leaf_at("div", 0)

    def test_is_leaf_at_outside_validity_false(self):
        d = TemporalDimension("org")
        d.add_member(MemberVersion("a", "A", Interval(0, 4)))
        assert not d.is_leaf_at("a", 9)


class TestRestrict:
    def test_restrict_keeps_only_fully_valid_elements(self):
        d = build_simple()
        r = d.restrict(Interval(0, 9))
        assert set(r.members) == {"div", "div2", "a", "b"}
        # The b->div2 edge starts at 10: not valid throughout [0,9].
        assert all(rel.parent != "div2" for rel in r.relationships)

    def test_restrict_drops_members_created_later(self):
        d = TemporalDimension("org")
        d.add_member(MemberVersion("old", "Old", Interval(0)))
        d.add_member(MemberVersion("new", "New", Interval(10)))
        r = d.restrict(Interval(0, 5))
        assert set(r.members) == {"old"}

    def test_restrict_result_is_time_invariant_inside_span(self):
        d = build_simple()
        r = d.restrict(Interval(10, 20))
        assert r.at(10).parents("b") == r.at(20).parents("b") == ["div2"]


class TestCriticalInstants:
    def test_all_boundaries_present(self):
        d = build_simple()
        assert d.critical_instants() == [0, 10]

    def test_member_end_contributes(self):
        d = TemporalDimension("org")
        d.add_member(MemberVersion("a", "A", Interval(2, 7)))
        assert d.critical_instants() == [2, 8]
