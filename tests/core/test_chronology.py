"""Unit tests for instants, NOW and interval algebra."""

import pickle

import pytest

from repro.core import (
    INSTANT,
    Interval,
    InvalidIntervalError,
    MONTH,
    NOW,
    NowType,
    QUARTER,
    YEAR,
    month_interval,
    ym,
    ym_str,
    year_interval,
    year_of,
)
from repro.core.chronology import (
    critical_instants,
    endpoint_max,
    endpoint_min,
    month_of,
)


class TestNow:
    def test_now_is_singleton(self):
        assert NowType() is NOW

    def test_now_survives_pickling_as_singleton(self):
        assert pickle.loads(pickle.dumps(NOW)) is NOW

    def test_now_orders_after_every_instant(self):
        assert NOW > 10**9
        assert not (NOW < 0)
        assert 5 < NOW
        assert NOW >= 5

    def test_now_equals_only_itself(self):
        assert NOW == NowType()
        assert NOW != 42

    def test_now_is_hashable(self):
        assert len({NOW, NowType()}) == 1


class TestEndpointHelpers:
    def test_min_of_instants(self):
        assert endpoint_min(3, 7) == 3

    def test_min_with_now(self):
        assert endpoint_min(NOW, 7) == 7
        assert endpoint_min(7, NOW) == 7

    def test_max_of_instants(self):
        assert endpoint_max(3, 7) == 7

    def test_max_with_now(self):
        assert endpoint_max(NOW, 7) is NOW
        assert endpoint_max(7, NOW) is NOW


class TestIntervalConstruction:
    def test_single_instant_interval(self):
        iv = Interval(5, 5)
        assert iv.contains(5)
        assert not iv.contains(4)
        assert not iv.contains(6)

    def test_default_end_is_now(self):
        assert Interval(3).open_ended

    def test_end_before_start_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(5, 4)

    def test_bool_endpoints_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(True, 4)

    def test_non_int_start_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval("2001", 4)  # type: ignore[arg-type]

    def test_intervals_are_hashable_values(self):
        assert Interval(1, 2) == Interval(1, 2)
        assert len({Interval(1, 2), Interval(1, 2), Interval(1, 3)}) == 2


class TestContains:
    def test_closed_interval_bounds_inclusive(self):
        iv = Interval(10, 20)
        assert iv.contains(10) and iv.contains(20)
        assert not iv.contains(9) and not iv.contains(21)

    def test_open_interval_contains_arbitrarily_late_instants(self):
        assert Interval(10).contains(10**12)

    def test_in_operator(self):
        assert 15 in Interval(10, 20)


class TestCoversOverlaps:
    def test_covers_subinterval(self):
        assert Interval(0, 10).covers(Interval(2, 5))

    def test_does_not_cover_extending_interval(self):
        assert not Interval(0, 10).covers(Interval(2, 15))

    def test_open_interval_covers_everything_after_start(self):
        assert Interval(0).covers(Interval(5, NOW))
        assert Interval(0).covers(Interval(5, 100))

    def test_closed_never_covers_open(self):
        assert not Interval(0, 100).covers(Interval(5))

    def test_overlap_on_single_shared_instant(self):
        assert Interval(0, 5).overlaps(Interval(5, 9))

    def test_disjoint_do_not_overlap(self):
        assert not Interval(0, 4).overlaps(Interval(5, 9))

    def test_overlap_is_symmetric(self):
        a, b = Interval(0, 7), Interval(3, 12)
        assert a.overlaps(b) and b.overlaps(a)


class TestIntersect:
    def test_intersection_of_overlapping(self):
        assert Interval(0, 7).intersect(Interval(3, 12)) == Interval(3, 7)

    def test_intersection_of_disjoint_is_none(self):
        assert Interval(0, 2).intersect(Interval(5, 9)) is None

    def test_intersection_with_open(self):
        assert Interval(0, 7).intersect(Interval(3)) == Interval(3, 7)

    def test_intersection_of_two_open(self):
        assert Interval(2).intersect(Interval(5)) == Interval(5, NOW)

    def test_intersection_is_commutative(self):
        a, b = Interval(1, 9), Interval(4, 20)
        assert a.intersect(b) == b.intersect(a)


class TestUnionMeets:
    def test_union_of_adjacent(self):
        assert Interval(0, 4).union(Interval(5, 9)) == Interval(0, 9)

    def test_union_across_gap_is_none(self):
        assert Interval(0, 3).union(Interval(5, 9)) is None

    def test_union_of_overlapping_open(self):
        assert Interval(0, 4).union(Interval(2)) == Interval(0, NOW)

    def test_meets_detects_adjacency(self):
        assert Interval(0, 4).meets(Interval(5, 9))
        assert not Interval(0, 4).meets(Interval(6, 9))

    def test_open_interval_meets_nothing(self):
        assert not Interval(0).meets(Interval(5, 9))


class TestClampTruncateDuration:
    def test_clamp_replaces_now(self):
        assert Interval(3).clamp(10) == Interval(3, 10)

    def test_clamp_noop_on_closed(self):
        assert Interval(3, 5).clamp(10) == Interval(3, 5)

    def test_clamp_before_start_rejected(self):
        with pytest.raises(InvalidIntervalError):
            Interval(5).clamp(3)

    def test_truncate_end(self):
        assert Interval(3, 9).truncate_end(5) == Interval(3, 5)

    def test_duration_closed(self):
        assert Interval(3, 5).duration() == 3

    def test_duration_open_requires_horizon(self):
        with pytest.raises(InvalidIntervalError):
            Interval(3).duration()
        assert Interval(3).duration(horizon=7) == 5

    def test_instants_enumeration(self):
        assert list(Interval(3, 6).instants()) == [3, 4, 5, 6]


class TestCalendarHelpers:
    def test_ym_roundtrip(self):
        t = ym(2003, 1)
        assert year_of(t) == 2003
        assert month_of(t) == 1

    def test_ym_rejects_bad_month(self):
        with pytest.raises(InvalidIntervalError):
            ym(2003, 13)

    def test_ym_str_formats_like_paper(self):
        assert ym_str(ym(2001, 1)) == "01/2001"
        assert ym_str(NOW) == "Now"

    def test_year_interval_spans_12_months(self):
        assert year_interval(2001).duration() == 12

    def test_month_interval_is_single_chronon(self):
        assert month_interval(2001, 4).duration() == 1

    def test_consecutive_months_are_consecutive_chronons(self):
        assert ym(2001, 12) + 1 == ym(2002, 1)


class TestCriticalInstants:
    def test_starts_and_post_ends_are_critical(self):
        points = critical_instants([Interval(2, 5), Interval(4)])
        assert points == [2, 4, 6]

    def test_open_interval_contributes_only_start(self):
        assert critical_instants([Interval(3)]) == [3]

    def test_duplicates_collapse(self):
        assert critical_instants([Interval(2, 5), Interval(2, 5)]) == [2, 6]

    def test_empty_input(self):
        assert critical_instants([]) == []


class TestGranularity:
    def test_year_bucket_and_label(self):
        assert YEAR.bucket(ym(2002, 7)) == 2002
        assert YEAR.label(2002) == "2002"

    def test_quarter_bucket(self):
        assert QUARTER.bucket(ym(2002, 1)) == QUARTER.bucket(ym(2002, 3))
        assert QUARTER.bucket(ym(2002, 3)) != QUARTER.bucket(ym(2002, 4))

    def test_quarter_label(self):
        assert QUARTER.label(QUARTER.bucket(ym(2002, 5))) == "2002Q2"

    def test_month_bucket_is_identity(self):
        t = ym(2002, 7)
        assert MONTH.bucket(t) == t
        assert MONTH.label(t) == "07/2002"

    def test_instant_granularity(self):
        assert INSTANT.bucket(42) == 42
        assert INSTANT.label(42) == "42"


class TestCustomGranularity:
    def test_custom_bucket_and_label(self):
        from repro.core.chronology import Granularity, month_of

        semester = Granularity(
            "semester",
            bucket_fn=lambda t: year_of(t) * 2 + (month_of(t) - 1) // 6,
            label_fn=lambda b: f"{b // 2}H{b % 2 + 1}",
        )
        assert semester.bucket(ym(2002, 3)) == semester.bucket(ym(2002, 6))
        assert semester.bucket(ym(2002, 6)) != semester.bucket(ym(2002, 7))
        assert semester.label(semester.bucket(ym(2002, 9))) == "2002H2"

    def test_custom_granularity_drives_query_engine(self, engine):
        from repro.core import Query, TimeGroup
        from repro.core.chronology import Granularity, month_of

        semester = Granularity(
            "semester",
            bucket_fn=lambda t: year_of(t) * 2 + (month_of(t) - 1) // 6,
            label_fn=lambda b: f"{b // 2}H{b % 2 + 1}",
        )
        result = engine.execute(Query(group_by=(TimeGroup(semester),)))
        # Case-study facts sit mid-year (June): all in H1.
        assert ("2001H1",) in result.as_dict()

    def test_unknown_named_granularity_without_fn_rejected(self):
        from repro.core import InvalidIntervalError
        from repro.core.chronology import Granularity

        with pytest.raises(InvalidIntervalError):
            Granularity("fortnight").bucket(5)

    def test_custom_label_fallback_is_str(self):
        from repro.core.chronology import Granularity

        g = Granularity("raw", bucket_fn=lambda t: t // 100)
        assert g.label(g.bucket(512)) == "5"
