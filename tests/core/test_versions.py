"""Unit tests for structure-version inference (Definition 9, Example 7)."""

import pytest

from repro.core import (
    Interval,
    Measure,
    MemberVersion,
    ModelError,
    NOW,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
    ym,
)
from repro.workloads.case_study import fact_instant


def schema_with(*members, rels=()):
    d = TemporalDimension("org")
    for m in members:
        d.add_member(m)
    for r in rels:
        d.add_relationship(r)
    return TemporalMultidimensionalSchema([d], [Measure("amount")])


class TestInference:
    def test_no_members_no_versions(self):
        s = schema_with()
        assert s.structure_versions() == []

    def test_single_open_member_yields_one_open_version(self):
        s = schema_with(MemberVersion("a", "A", Interval(5)))
        (v,) = s.structure_versions()
        assert v.valid_time == Interval(5, NOW)
        assert v.member_ids("org") == {"a"}

    def test_member_replacement_cuts_history(self):
        s = schema_with(
            MemberVersion("a1", "A", Interval(0, 9)),
            MemberVersion("a2", "A", Interval(10)),
        )
        v1, v2 = s.structure_versions()
        assert v1.valid_time == Interval(0, 9)
        assert v2.valid_time == Interval(10, NOW)
        assert v1.member_ids("org") == {"a1"}
        assert v2.member_ids("org") == {"a2"}

    def test_relationship_change_cuts_history_without_member_change(self):
        """A pure reclassification (conceptual Reclassify) creates a new
        structure version even though the member set is unchanged."""
        s = schema_with(
            MemberVersion("p1", "P1", Interval(0)),
            MemberVersion("p2", "P2", Interval(0)),
            MemberVersion("c", "C", Interval(0)),
            rels=[
                TemporalRelationship("c", "p1", Interval(0, 9)),
                TemporalRelationship("c", "p2", Interval(10)),
            ],
        )
        v1, v2 = s.structure_versions()
        assert v1.valid_time == Interval(0, 9)
        assert v2.valid_time == Interval(10, NOW)
        assert v1.dimension("org").at(0).parents("c") == ["p1"]
        assert v2.dimension("org").at(10).parents("c") == ["p2"]

    def test_gap_between_members_yields_no_empty_version(self):
        s = schema_with(
            MemberVersion("a", "A", Interval(0, 4)),
            MemberVersion("b", "B", Interval(10, 19)),
        )
        versions = s.structure_versions()
        assert [v.valid_time for v in versions] == [Interval(0, 4), Interval(10, 19)]

    def test_closed_history_final_version_closed(self):
        s = schema_with(MemberVersion("a", "A", Interval(0, 9)))
        (v,) = s.structure_versions()
        assert v.valid_time == Interval(0, 9)

    def test_horizon_extends_closed_history(self):
        s = schema_with(MemberVersion("a", "A", Interval(0, 9)))
        versions = s.structure_versions(horizon=15)
        assert [v.valid_time for v in versions] == [Interval(0, 9)]

    def test_vsids_are_chronological(self):
        s = schema_with(
            MemberVersion("a1", "A", Interval(0, 9)),
            MemberVersion("a2", "A", Interval(10)),
        )
        assert [v.vsid for v in s.structure_versions()] == ["V1", "V2"]


class TestPartitionProperties:
    def test_versions_partition_history(self):
        """Consecutive versions tile the covered history without overlap."""
        s = schema_with(
            MemberVersion("a", "A", Interval(0, 14)),
            MemberVersion("b", "B", Interval(5, 9)),
            MemberVersion("c", "C", Interval(8)),
        )
        versions = s.structure_versions()
        for earlier, later in zip(versions, versions[1:]):
            assert not earlier.valid_time.overlaps(later.valid_time)
            assert earlier.valid_time.meets(later.valid_time)

    def test_membership_equals_validity_over_span(self):
        s = schema_with(
            MemberVersion("a", "A", Interval(0, 14)),
            MemberVersion("b", "B", Interval(5, 9)),
        )
        for v in s.structure_versions():
            for mv in s.dimension("org").members.values():
                expected = mv.valid_time.covers(v.valid_time)
                assert (mv.mvid in v.member_ids("org")) == expected


class TestCaseStudyVersions:
    def test_three_versions(self, case_study):
        versions = case_study.schema.structure_versions()
        assert [v.vsid for v in versions] == ["V1", "V2", "V3"]
        assert versions[0].valid_time == Interval(ym(2001, 1), ym(2001, 12))
        assert versions[1].valid_time == Interval(ym(2002, 1), ym(2002, 12))
        assert versions[2].valid_time == Interval(ym(2003, 1), NOW)

    def test_leaves_per_version(self, case_study):
        v1, v2, v3 = case_study.schema.structure_versions()
        assert v1.leaf_ids("org") == {"jones", "smith", "brian"}
        assert v2.leaf_ids("org") == {"jones", "smith", "brian"}
        assert v3.leaf_ids("org") == {"bill", "paul", "smith", "brian"}

    def test_smith_parent_differs_between_v1_and_v2(self, case_study):
        v1, v2, _ = case_study.schema.structure_versions()
        snap1 = v1.dimension("org").at(fact_instant(2001))
        snap2 = v2.dimension("org").at(fact_instant(2002))
        assert snap1.parents("smith") == ["sales"]
        assert snap2.parents("smith") == ["rd"]

    def test_contains_instant(self, case_study):
        v1, _, v3 = case_study.schema.structure_versions()
        assert v1.contains_instant(fact_instant(2001))
        assert not v1.contains_instant(fact_instant(2002))
        assert v3.contains_instant(ym(2050, 1))

    def test_unknown_dimension_in_version(self, case_study):
        (v1, *_rest) = case_study.schema.structure_versions()
        with pytest.raises(ModelError):
            v1.dimension("nope")
