"""Unit tests for the TMD schema (Definition 8) and its validation."""

import pytest

from repro.core import (
    FactValidityError,
    Interval,
    MappingError,
    MappingRelationship,
    Measure,
    MemberVersion,
    ModelError,
    NOW,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
    UnknownDimensionError,
    UnknownMemberVersionError,
    identity_maps,
)


def org_dimension():
    d = TemporalDimension("org")
    d.add_member(MemberVersion("div", "Division", Interval(0), level="Division"))
    d.add_member(MemberVersion("a", "Dept-A", Interval(0, 9), level="Department"))
    d.add_member(MemberVersion("b", "Dept-B", Interval(0), level="Department"))
    d.add_relationship(TemporalRelationship("a", "div", Interval(0, 9)))
    d.add_relationship(TemporalRelationship("b", "div", Interval(0)))
    return d


def make_schema():
    return TemporalMultidimensionalSchema([org_dimension()], [Measure("amount", SUM)])


class TestConstruction:
    def test_needs_dimensions(self):
        with pytest.raises(ModelError):
            TemporalMultidimensionalSchema([], [Measure("m")])

    def test_duplicate_dimension_ids_rejected(self):
        with pytest.raises(ModelError):
            TemporalMultidimensionalSchema(
                [org_dimension(), org_dimension()], [Measure("m")]
            )

    def test_dimension_lookup(self):
        s = make_schema()
        assert s.dimension("org").did == "org"
        with pytest.raises(UnknownDimensionError):
            s.dimension("nope")

    def test_find_member_across_dimensions(self):
        s = make_schema()
        dim, mvid = s.find_member("a")
        assert dim.did == "org" and mvid == "a"
        with pytest.raises(UnknownMemberVersionError):
            s.find_member("ghost")

    def test_measure_names(self):
        assert make_schema().measure_names == ["amount"]


class TestFactValidation:
    def test_valid_fact_accepted(self):
        s = make_schema()
        s.add_fact({"org": "a"}, 5, amount=10.0)
        assert len(s.facts) == 1

    def test_fact_outside_member_validity_rejected(self):
        s = make_schema()
        with pytest.raises(FactValidityError):
            s.add_fact({"org": "a"}, 15, amount=10.0)

    def test_fact_on_non_leaf_rejected(self):
        s = make_schema()
        with pytest.raises(FactValidityError):
            s.add_fact({"org": "div"}, 5, amount=10.0)

    def test_fact_on_unknown_member_rejected(self):
        s = make_schema()
        with pytest.raises(UnknownMemberVersionError):
            s.add_fact({"org": "ghost"}, 5, amount=10.0)

    def test_validate_catches_facts_invalidated_by_later_exclusion(self):
        """A fact loaded first, then the member's validity shrunk under it."""
        s = make_schema()
        dim = s.dimension("org")
        dim.add_member(
            MemberVersion("free", "Dept-Free", Interval(0), level="Department")
        )
        s.add_fact({"org": "free"}, 20, amount=1.0)
        dim.replace_member(dim.member("free").excluded_at(10))
        with pytest.raises(FactValidityError):
            s.validate()


class TestMappingValidation:
    def test_mapping_between_leaves_accepted(self):
        s = make_schema()
        s.add_mapping(
            MappingRelationship("a", "b", forward=identity_maps(["amount"]))
        )
        assert len(s.mappings) == 1

    def test_mapping_with_unknown_endpoint_rejected(self):
        s = make_schema()
        with pytest.raises(UnknownMemberVersionError):
            s.add_mapping(MappingRelationship("a", "ghost"))

    def test_mapping_on_non_leaf_rejected(self):
        s = make_schema()
        with pytest.raises(MappingError):
            s.add_mapping(MappingRelationship("a", "div"))

    def test_mapping_across_dimensions_rejected(self):
        other = TemporalDimension("geo")
        other.add_member(MemberVersion("fr", "France", Interval(0)))
        s = TemporalMultidimensionalSchema(
            [org_dimension(), other], [Measure("amount")]
        )
        with pytest.raises(MappingError):
            s.add_mapping(MappingRelationship("a", "fr"))

    def test_mapping_unknown_measure_rejected(self):
        s = make_schema()
        with pytest.raises(MappingError):
            s.add_mapping(
                MappingRelationship("a", "b", forward=identity_maps(["zzz"]))
            )


class TestGlobalInvariants:
    def test_duplicate_mvid_across_dimensions_detected(self):
        other = TemporalDimension("geo")
        other.add_member(MemberVersion("a", "France", Interval(0)))
        s = TemporalMultidimensionalSchema(
            [org_dimension(), other], [Measure("amount")]
        )
        with pytest.raises(ModelError):
            s.validate()

    def test_horizon_covers_structure_and_facts(self):
        s = make_schema()
        s.add_fact({"org": "b"}, 50, amount=1.0)
        assert s.horizon() > 50
        assert s.horizon() > max(s.critical_instants())

    def test_critical_instants_aggregate_dimensions(self):
        s = make_schema()
        assert s.critical_instants() == [0, 10]

    def test_case_study_schema_validates(self, case_study):
        case_study.schema.validate()
