"""Property-based tests (hypothesis) for the model's core invariants."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.core import (
    DEFAULT_AGGREGATOR,
    CANONICAL_FACTORS,
    Interval,
    LinearMapping,
    Measure,
    MemberVersion,
    NOW,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
)
from repro.core.chronology import critical_instants


# -- strategies ---------------------------------------------------------------

instants = st.integers(min_value=0, max_value=200)


@st.composite
def intervals(draw, open_ratio=0.3):
    start = draw(instants)
    if draw(st.floats(min_value=0, max_value=1)) < open_ratio:
        return Interval(start, NOW)
    length = draw(st.integers(min_value=0, max_value=80))
    return Interval(start, start + length)


confidences = st.sampled_from(CANONICAL_FACTORS)


# -- interval algebra ----------------------------------------------------------


class TestIntervalProperties:
    @given(intervals(), intervals())
    def test_intersection_commutes(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(intervals(), intervals(), intervals())
    def test_intersection_associates(self, a, b, c):
        def chain(x, y, z):
            xy = x.intersect(y)
            return None if xy is None else xy.intersect(z)

        assert chain(a, b, c) == chain(b, c, a) == chain(c, a, b)

    @given(intervals(), intervals())
    def test_intersection_contained_in_both(self, a, b):
        common = a.intersect(b)
        if common is not None:
            assert a.covers(common) and b.covers(common)

    @given(intervals(), instants)
    def test_containment_consistent_with_intersection(self, iv, t):
        point = Interval(t, t)
        assert iv.contains(t) == (iv.intersect(point) is not None)

    @given(intervals(), intervals())
    def test_overlap_iff_nonempty_intersection(self, a, b):
        assert a.overlaps(b) == (a.intersect(b) is not None)

    @given(intervals(), intervals())
    def test_union_covers_both_when_defined(self, a, b):
        u = a.union(b)
        if u is not None:
            assert u.covers(a) and u.covers(b)

    @given(st.lists(intervals(), max_size=8), instants)
    def test_valid_set_constant_between_critical_instants(self, ivs, t):
        """Between two consecutive critical instants the set of valid
        intervals cannot change — the keystone of Definition 9."""
        points = critical_instants(ivs)
        later = [p for p in points if p > t]
        next_cut = min(later) if later else None
        probe = t if next_cut is None else next_cut - 1
        if probe < t:
            return
        valid_at_t = [iv.contains(t) for iv in ivs]
        valid_at_probe = [iv.contains(probe) for iv in ivs]
        assert valid_at_t == valid_at_probe


# -- confidence algebra ----------------------------------------------------------


class TestConfidenceProperties:
    @given(confidences, confidences)
    def test_commutative(self, a, b):
        assert DEFAULT_AGGREGATOR.combine(a, b) is DEFAULT_AGGREGATOR.combine(b, a)

    @given(confidences, confidences, confidences)
    def test_associative(self, a, b, c):
        agg = DEFAULT_AGGREGATOR
        assert agg.combine(agg.combine(a, b), c) is agg.combine(a, agg.combine(b, c))

    @given(st.lists(confidences, min_size=1, max_size=10))
    def test_fold_order_independent(self, factors):
        agg = DEFAULT_AGGREGATOR
        baseline = agg.combine_all(factors)
        for perm in itertools.islice(itertools.permutations(factors), 12):
            assert agg.combine_all(perm) is baseline

    @given(st.lists(confidences, min_size=1, max_size=10))
    def test_fold_result_is_least_reliable_input(self, factors):
        result = DEFAULT_AGGREGATOR.combine_all(factors)
        assert result.rank == max(f.rank for f in factors)


# -- mapping functions -------------------------------------------------------------

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
factors_st = st.floats(min_value=0.01, max_value=10, allow_nan=False)


class TestLinearMappingProperties:
    @given(factors_st, factors_st, finite_floats)
    def test_composition_equals_sequential_application(self, k1, k2, x):
        f, g = LinearMapping(k1), LinearMapping(k2)
        composed = f.compose(g)
        sequential = g.apply(f.apply(x))
        assert composed.apply(x) is not None
        assert abs(composed.apply(x) - sequential) <= 1e-6 * max(1.0, abs(sequential))

    @given(factors_st, finite_floats)
    def test_identity_composition_neutral(self, k, x):
        f = LinearMapping(k)
        ident = LinearMapping(1.0)
        assert f.compose(ident).apply(x) == f.apply(x)
        assert ident.compose(f).apply(x) == f.apply(x)


# -- structure-version partition over random dimensions ------------------------------


@st.composite
def random_dimension_schema(draw):
    """A random single-dimension schema with parents and valid times."""
    n_parents = draw(st.integers(min_value=1, max_value=3))
    n_children = draw(st.integers(min_value=1, max_value=6))
    dim = TemporalDimension("d")
    parent_ids = []
    for i in range(n_parents):
        iv = draw(intervals())
        dim.add_member(MemberVersion(f"p{i}", f"P{i}", iv, level="top"))
        parent_ids.append((f"p{i}", iv))
    for j in range(n_children):
        iv = draw(intervals())
        dim.add_member(MemberVersion(f"c{j}", f"C{j}", iv, level="bottom"))
        pid, piv = draw(st.sampled_from(parent_ids))
        common = iv.intersect(piv)
        if common is not None:
            dim.add_relationship(
                TemporalRelationship(f"c{j}", pid, common), check_acyclic=False
            )
    return TemporalMultidimensionalSchema([dim], [Measure("m", SUM)])


class TestStructureVersionProperties:
    @settings(max_examples=60, deadline=None)
    @given(random_dimension_schema())
    def test_versions_are_disjoint_and_ordered(self, schema):
        versions = schema.structure_versions()
        for a, b in zip(versions, versions[1:]):
            assert not a.valid_time.overlaps(b.valid_time)
            assert a.valid_time.start < b.valid_time.start

    @settings(max_examples=60, deadline=None)
    @given(random_dimension_schema())
    def test_membership_matches_validity(self, schema):
        dim = schema.dimension("d")
        for v in schema.structure_versions():
            for mv in dim.members.values():
                assert (mv.mvid in v.member_ids("d")) == mv.valid_time.covers(
                    v.valid_time
                )

    @settings(max_examples=60, deadline=None)
    @given(random_dimension_schema(), instants)
    def test_every_instant_with_members_is_covered(self, schema, t):
        dim = schema.dimension("d")
        any_valid = any(mv.valid_at(t) for mv in dim.members.values())
        covered = any(v.contains_instant(t) for v in schema.structure_versions())
        assert covered == any_valid

    @settings(max_examples=40, deadline=None)
    @given(random_dimension_schema())
    def test_restriction_is_time_invariant_within_version(self, schema):
        """Inside a structure version the snapshot never changes."""
        for v in schema.structure_versions():
            dim = v.dimension("d")
            start = v.valid_time.start
            end = start if v.valid_time.open_ended else v.valid_time.end
            probe = min(end, start + 7)
            snap_a, snap_b = dim.at(start), dim.at(probe)
            assert set(snap_a.members) == set(snap_b.members)
            assert set(snap_a.relationships) == set(snap_b.relationships)


# -- MultiVersion fact table invariants over the generator ----------------------------


class TestWorkloadInvariants:
    @settings(max_examples=12, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_tcm_slice_is_source_data(self, seed):
        from repro.workloads.generator import WorkloadConfig, generate_workload

        wl = generate_workload(WorkloadConfig(seed=seed, n_years=3, n_departments=6))
        mvft = wl.schema.multiversion_facts()
        rows = mvft.slice("tcm")
        assert len(rows) == len(wl.schema.facts)
        assert all(r.confidence("amount").symbol == "sd" for r in rows)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_exact_mapped_modes_preserve_grand_total(self, seed):
        """With splits whose shares sum to 1, merges with identity forward
        maps and reclassifications, the grand total is conserved in every
        mode that has no unmapped facts."""
        from repro.workloads.generator import WorkloadConfig, generate_workload

        wl = generate_workload(
            WorkloadConfig(seed=seed, n_years=3, n_departments=6, deletions_per_year=0)
        )
        mvft = wl.schema.multiversion_facts()
        source_total = wl.schema.facts.total("amount")
        blocked_modes = {u.mode for u in mvft.unmapped}
        for label in mvft.modes.labels:
            if label in blocked_modes:
                continue
            rows = mvft.slice(label)
            total = sum(
                r.value("amount") for r in rows if r.value("amount") is not None
            )
            unknown = [r for r in rows if r.value("amount") is None]
            if unknown:
                continue  # an unknown back-mapping hides part of the total
            assert abs(total - source_total) <= 1e-6 * max(1.0, abs(source_total))


class TestQueryEngineProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_group_totals_partition_grand_total(self, seed):
        """With a covering, single-parent hierarchy, the division-level
        totals partition the grand total in every mode that presents all
        facts with known values.

        Merges are disabled: merging departments of *different* divisions
        parks the merged member under both (a multiple hierarchy), whose
        facts then legitimately contribute to both rollups — the partition
        property only holds for single-parent hierarchies.
        """
        from repro.core import LevelGroup, Query, QueryEngine, TimeGroup, YEAR
        from repro.workloads.generator import WorkloadConfig, generate_workload

        wl = generate_workload(
            WorkloadConfig(seed=seed, n_years=3, n_departments=8,
                           merges_per_year=0, deletions_per_year=0)
        )
        mvft = wl.schema.multiversion_facts()
        engine = QueryEngine(mvft)
        blocked = {u.mode for u in mvft.unmapped}
        for label in mvft.modes.labels:
            if label in blocked:
                continue
            rows = mvft.slice(label)
            if any(r.value("amount") is None for r in rows):
                continue
            by_division = engine.execute(
                Query(mode=label, group_by=(LevelGroup("org", "Division"),))
            )
            total = sum(row.value("amount") for row in by_division)
            grand = sum(r.value("amount") for r in rows)
            assert abs(total - grand) <= 1e-6 * max(1.0, abs(grand))

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_time_and_level_grouping_commute(self, seed):
        """Grouping by (year, division) then summing divisions equals the
        year-only grouping — group-by is a partition refinement."""
        from repro.core import LevelGroup, Query, QueryEngine, TimeGroup, YEAR
        from repro.workloads.generator import WorkloadConfig, generate_workload

        wl = generate_workload(
            WorkloadConfig(seed=seed, n_years=3, merges_per_year=0)
        )
        engine = QueryEngine(wl.schema.multiversion_facts())
        fine = engine.execute(
            Query(group_by=(TimeGroup(YEAR), LevelGroup("org", "Division")))
        )
        coarse = engine.execute(Query(group_by=(TimeGroup(YEAR),))).as_dict()
        per_year: dict = {}
        for row in fine:
            year = row.group[0]
            per_year[year] = per_year.get(year, 0.0) + (row.value("amount") or 0.0)
        for year, total in per_year.items():
            expected = coarse[(year,)]["amount"]
            assert abs(total - expected) <= 1e-6 * max(1.0, abs(expected))
