"""Unit tests for the simple/complex evolution operations (Table 11)."""

import pytest

from repro.core import (
    EvolutionManager,
    Interval,
    Measure,
    MemberVersion,
    NOW,
    OperatorError,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
)


@pytest.fixture()
def manager():
    d = TemporalDimension("org")
    d.add_member(MemberVersion("p1", "Parent-1", Interval(0), level="Division"))
    d.add_member(MemberVersion("p2", "Parent-2", Interval(0), level="Division"))
    for mvid in ("v", "v1", "v2"):
        d.add_member(
            MemberVersion(mvid, mvid.upper(), Interval(0), level="Department")
        )
        d.add_relationship(TemporalRelationship(mvid, "p1", Interval(0)))
    schema = TemporalMultidimensionalSchema([d], [Measure("amount", SUM)])
    return EvolutionManager(schema)


class TestSimpleOperations:
    def test_create_compiles_to_single_insert(self, manager):
        result = manager.create_member("org", "new", "New", 10, parents=["p1"])
        assert [r.operator for r in result.records] == ["Insert"]
        assert result.created == ("new",)

    def test_delete_compiles_to_single_exclude(self, manager):
        result = manager.delete_member("org", "v", 10)
        assert [r.operator for r in result.records] == ["Exclude"]
        assert manager.schema.dimension("org").member("v").valid_time == Interval(0, 9)

    def test_transform_compiles_to_exclude_insert_associate(self, manager):
        """Table 11: change from V to V' == Exclude + Insert + equivalence."""
        result = manager.transform_member("org", "v", "vprime", "V'", 10)
        assert [r.operator for r in result.records] == [
            "Exclude",
            "Insert",
            "Associate",
        ]

    def test_transform_keeps_position_and_metadata(self, manager):
        manager.transform_member("org", "v", "vprime", "V'", 10)
        dim = manager.schema.dimension("org")
        assert dim.at(10).parents("vprime") == ["p1"]
        assert dim.member("vprime").level == "Department"

    def test_transform_mapping_is_identity_both_ways(self, manager):
        manager.transform_member("org", "v", "vprime", "V'", 10)
        (rel,) = list(manager.schema.mappings)
        assert rel.measure_map("amount", direction="forward").apply(7.0) == 7.0
        assert rel.measure_map("amount", direction="reverse").apply(7.0) == 7.0

    def test_merge_compiles_per_table_11(self, manager):
        result = manager.merge_members(
            "org", ["v1", "v2"], "v12", "V12", 10,
            reverse_shares={"v1": 0.5, "v2": None},
        )
        assert [r.operator for r in result.records] == [
            "Exclude", "Exclude", "Insert", "Associate", "Associate",
        ]

    def test_merge_reverse_share_semantics(self, manager):
        manager.merge_members(
            "org", ["v1", "v2"], "v12", "V12", 10,
            reverse_shares={"v1": 0.5, "v2": None},
        )
        rels = {r.source: r for r in manager.schema.mappings}
        assert rels["v1"].measure_map("amount", direction="reverse").apply(100.0) == 50.0
        assert rels["v2"].measure_map("amount", direction="reverse").apply(100.0) is None
        # forward is identity/em for both sources
        assert rels["v1"].measure_map("amount", direction="forward").apply(3.0) == 3.0

    def test_merge_needs_two_sources(self, manager):
        with pytest.raises(OperatorError):
            manager.merge_members("org", ["v1"], "v12", "V12", 10)

    def test_split_compiles_per_table_11(self, manager):
        result = manager.split_member(
            "org", "v", {"a": ("A", 0.4), "b": ("B", 0.6)}, 10
        )
        assert [r.operator for r in result.records] == [
            "Exclude", "Insert", "Insert", "Associate", "Associate",
        ]
        assert result.created == ("a", "b")

    def test_split_share_semantics_match_example_6(self, manager):
        manager.split_member("org", "v", {"a": ("A", 0.4), "b": ("B", 0.6)}, 10)
        rels = {r.target: r for r in manager.schema.mappings}
        assert rels["a"].measure_map("amount", direction="forward").apply(100.0) == pytest.approx(40.0)
        assert rels["a"].measure_map("amount", direction="forward").confidence.symbol == "am"
        assert rels["a"].measure_map("amount", direction="reverse").apply(150.0) == 150.0
        assert rels["a"].measure_map("amount", direction="reverse").confidence.symbol == "em"

    def test_split_needs_two_parts(self, manager):
        with pytest.raises(OperatorError):
            manager.split_member("org", "v", {"a": ("A", 1.0)}, 10)

    def test_split_parts_inherit_parents(self, manager):
        manager.split_member("org", "v", {"a": ("A", 0.4), "b": ("B", 0.6)}, 10)
        snap = manager.schema.dimension("org").at(10)
        assert snap.parents("a") == ["p1"] and snap.parents("b") == ["p1"]

    def test_reclassify_member_is_single_operator(self, manager):
        result = manager.reclassify_member(
            "org", "v", 10, old_parents=["p1"], new_parents=["p2"]
        )
        assert [r.operator for r in result.records] == ["Reclassify"]


class TestComplexOperations:
    def test_increase_per_table_11(self, manager):
        result = manager.increase_member("org", "v", "vplus", "V+", 10, factor=2.0)
        assert [r.operator for r in result.records] == [
            "Exclude", "Insert", "Associate",
        ]
        (rel,) = list(manager.schema.mappings)
        assert rel.measure_map("amount", direction="forward").apply(10.0) == 20.0
        assert rel.measure_map("amount", direction="reverse").apply(10.0) == pytest.approx(5.0)

    def test_increase_rejects_nonpositive_factor(self, manager):
        with pytest.raises(OperatorError):
            manager.increase_member("org", "v", "vplus", "V+", 10, factor=0.0)

    def test_decrease_keeps_share(self, manager):
        manager.decrease_member("org", "v", "vminus", "V-", 10, kept_share=0.9)
        (rel,) = list(manager.schema.mappings)
        assert rel.measure_map("amount", direction="forward").apply(100.0) == pytest.approx(90.0)
        assert rel.measure_map("amount", direction="reverse").apply(90.0) == 90.0

    def test_decrease_rejects_degenerate_share(self, manager):
        with pytest.raises(OperatorError):
            manager.decrease_member("org", "v", "x", "X", 10, kept_share=1.0)

    def test_partial_annexation_per_table_11(self, manager):
        """The paper's 10 % annexation: six basic operators, three mappings."""
        result = manager.partial_annexation(
            "org", "v1", "v2", ("v1m", "V1-"), ("v2p", "V2+"), 10,
            donated_fraction=0.1,
            acceptor_reverse_factor=0.8,
            donated_share_of_acceptor=0.2,
        )
        assert [r.operator for r in result.records] == [
            "Exclude", "Exclude", "Insert", "Insert",
            "Associate", "Associate", "Associate",
        ]
        rels = {(r.source, r.target): r for r in manager.schema.mappings}
        donor = rels[("v1", "v1m")]
        assert donor.measure_map("amount", direction="forward").apply(100.0) == pytest.approx(90.0)
        acceptor = rels[("v2", "v2p")]
        assert acceptor.measure_map("amount", direction="forward").apply(5.0) == 5.0
        assert acceptor.measure_map("amount", direction="reverse").apply(10.0) == pytest.approx(8.0)
        cross = rels[("v1", "v2p")]
        assert cross.measure_map("amount", direction="forward").apply(100.0) == pytest.approx(10.0)
        assert cross.measure_map("amount", direction="reverse").apply(100.0) == pytest.approx(20.0)

    def test_partial_annexation_rejects_bad_fraction(self, manager):
        with pytest.raises(OperatorError):
            manager.partial_annexation(
                "org", "v1", "v2", ("a", "A"), ("b", "B"), 10,
                donated_fraction=1.5,
                acceptor_reverse_factor=0.8,
                donated_share_of_acceptor=0.2,
            )


class TestSchemaLevelOperations:
    def test_create_level(self, manager):
        result = manager.create_level(
            "org",
            {"grp1": "Group-1"},
            10,
            level="Group",
            parents_of={},
            children_of={"grp1": ["v1", "v2"]},
        )
        assert result.created == ("grp1",)
        snap = manager.schema.dimension("org").at(10)
        assert set(snap.children("grp1")) == {"v1", "v2"}

    def test_delete_level_excludes_its_members(self, manager):
        manager.delete_level("org", "Department", 10)
        dim = manager.schema.dimension("org")
        for mvid in ("v", "v1", "v2"):
            assert dim.member(mvid).valid_time == Interval(0, 9)

    def test_delete_unknown_level_rejected(self, manager):
        with pytest.raises(OperatorError):
            manager.delete_level("org", "Continent", 10)


class TestJournal:
    def test_manager_journal_accumulates_across_operations(self, manager):
        manager.delete_member("org", "v", 10)
        manager.create_member("org", "new", "New", 10, parents=["p1"])
        assert [r.operator for r in manager.journal] == ["Exclude", "Insert"]

    def test_renderings_are_paper_style(self, manager):
        result = manager.split_member(
            "org", "v", {"a": ("A", 0.4), "b": ("B", 0.6)}, 10
        )
        lines = result.renderings()
        assert lines[0].startswith("Exclude(org, v")
        assert any(line.startswith("Associate(v, ") for line in lines)
