"""Unit tests for temporal modes of presentation (Definition 10)."""

import pytest

from repro.core import (
    Interval,
    PresentationMode,
    QueryError,
    TCM_LABEL,
    build_modes,
)
from repro.core.presentation import ModeSet
from repro.workloads.case_study import fact_instant


class TestModeSet:
    def test_case_study_has_tcm_plus_three(self, case_study):
        modes = case_study.schema.presentation_modes()
        assert modes.labels == ["tcm", "V1", "V2", "V3"]
        assert len(modes) == 4

    def test_tcm_mode_properties(self, case_study):
        modes = case_study.schema.presentation_modes()
        assert modes.tcm.is_tcm
        assert modes.tcm.version is None
        assert "consistent" in modes.tcm.describe()

    def test_version_modes_carry_their_version(self, case_study):
        modes = case_study.schema.presentation_modes()
        for mode in modes.version_modes:
            assert not mode.is_tcm
            assert mode.version is not None
            assert mode.version.vsid == mode.label

    def test_lookup_by_label(self, case_study):
        modes = case_study.schema.presentation_modes()
        assert modes.mode("V2").label == "V2"
        with pytest.raises(QueryError):
            modes.mode("V99")

    def test_contains(self, case_study):
        modes = case_study.schema.presentation_modes()
        assert "tcm" in modes and "V1" in modes and "V9" not in modes

    def test_mode_for_instant(self, case_study):
        modes = case_study.schema.presentation_modes()
        assert modes.mode_for_instant(fact_instant(2001)).label == "V1"
        assert modes.mode_for_instant(fact_instant(2003)).label == "V3"

    def test_mode_for_uncovered_instant(self, case_study):
        modes = case_study.schema.presentation_modes()
        with pytest.raises(QueryError):
            modes.mode_for_instant(0)  # far before 2001


class TestConstructionRules:
    def test_build_modes_always_prepends_tcm(self, case_study):
        versions = case_study.schema.structure_versions()
        modes = build_modes(versions)
        assert modes.labels[0] == TCM_LABEL

    def test_duplicate_labels_rejected(self):
        dup = PresentationMode(TCM_LABEL, None)
        with pytest.raises(QueryError):
            ModeSet([dup, dup])

    def test_missing_tcm_rejected(self, case_study):
        (v1, *_r) = case_study.schema.structure_versions()
        with pytest.raises(QueryError):
            ModeSet([PresentationMode(v1.vsid, v1)])

    def test_describe_version_mode_mentions_span(self, case_study):
        modes = case_study.schema.presentation_modes()
        text = modes.mode("V1").describe()
        assert "V1" in text
