"""Tests for TMD schema JSON serialization."""

import json

import pytest

from repro.core import (
    AVG,
    CallableMapping,
    Interval,
    MappingRelationship,
    Measure,
    MeasureMap,
    MemberVersion,
    SUM,
    SerializationError,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TruthTableAggregator,
    load_schema,
    save_schema,
    schema_from_dict,
    schema_to_dict,
)
from repro.core.confidence import AM
from repro.workloads.case_study import build_case_study, organization_table


class TestRoundtrip:
    def test_case_study_roundtrips(self, tmp_path, case_study):
        path = tmp_path / "schema.json"
        save_schema(case_study.schema, path)
        loaded = load_schema(path)
        assert len(loaded.facts) == len(case_study.schema.facts)
        assert len(loaded.mappings) == len(case_study.schema.mappings)
        assert loaded.measure_names == case_study.schema.measure_names

    def test_roundtrip_preserves_query_results(self, tmp_path, case_study, engine):
        from repro.core import Query, QueryEngine, TimeGroup, LevelGroup, YEAR

        path = tmp_path / "schema.json"
        save_schema(case_study.schema, path)
        loaded_engine = QueryEngine(load_schema(path).multiversion_facts())
        q = Query(group_by=(TimeGroup(YEAR), LevelGroup("org", "Department")))
        for mode in ("tcm", "V1", "V2", "V3"):
            assert (
                loaded_engine.execute(q.with_mode(mode)).as_dict()
                == engine.execute(q.with_mode(mode)).as_dict()
            )

    def test_roundtrip_preserves_attributes_and_levels(self, tmp_path):
        d = TemporalDimension("org")
        d.add_member(
            MemberVersion(
                "a", "A", Interval(0, 9),
                attributes={"size": "small", "city": "Lyon"},
                level="Department",
            )
        )
        schema = TemporalMultidimensionalSchema([d], [Measure("amount", SUM)])
        path = tmp_path / "s.json"
        save_schema(schema, path)
        mv = load_schema(path).dimension("org").member("a")
        assert dict(mv.attributes) == {"size": "small", "city": "Lyon"}
        assert mv.level == "Department"
        assert mv.valid_time == Interval(0, 9)

    def test_roundtrip_preserves_now_endpoints(self, tmp_path, case_study):
        path = tmp_path / "s.json"
        save_schema(case_study.schema, path)
        loaded = load_schema(path)
        assert loaded.dimension("org").member("bill").valid_time.open_ended

    def test_roundtrip_preserves_dimension_snapshots(self, tmp_path, case_study):
        from repro.workloads.case_study import CaseStudy

        path = tmp_path / "s.json"
        save_schema(case_study.schema, path)
        loaded = CaseStudy(schema=load_schema(path), manager=case_study.manager)
        for year in (2001, 2002, 2003):
            assert organization_table(loaded, year) == organization_table(
                case_study, year
            )

    def test_unknown_mappings_roundtrip(self, tmp_path):
        from repro.core import EvolutionManager, TemporalRelationship, UK

        d = TemporalDimension("org")
        d.add_member(MemberVersion("p", "P", Interval(0), level="Division"))
        for mvid in ("x", "y"):
            d.add_member(
                MemberVersion(mvid, mvid.upper(), Interval(0), level="Department")
            )
            d.add_relationship(TemporalRelationship(mvid, "p", Interval(0)))
        schema = TemporalMultidimensionalSchema([d], [Measure("amount", SUM)])
        EvolutionManager(schema).merge_members(
            "org", ["x", "y"], "xy", "XY", 10, reverse_shares={"x": 0.5, "y": None}
        )
        path = tmp_path / "s.json"
        save_schema(schema, path)
        loaded = load_schema(path)
        rel = [r for r in loaded.mappings if r.source == "y"][0]
        mm = rel.measure_map("amount", direction="reverse")
        assert mm.confidence is UK and mm.apply(1.0) is None


class TestLimits:
    def test_callable_mapping_rejected(self, case_study):
        schema = build_case_study().schema
        schema.mappings.add(
            MappingRelationship(
                "smith", "brian",
                forward={
                    "amount": MeasureMap(CallableMapping(lambda x: x + 1), AM)
                },
            )
        )
        with pytest.raises(SerializationError):
            schema_to_dict(schema)

    def test_custom_cf_aggregator_rejected(self):
        d = TemporalDimension("org")
        d.add_member(MemberVersion("a", "A", Interval(0)))
        schema = TemporalMultidimensionalSchema(
            [d], [Measure("m", SUM)], cf_aggregator=TruthTableAggregator()
        )
        with pytest.raises(SerializationError):
            schema_to_dict(schema)

    def test_avg_measure_serializes(self, tmp_path):
        d = TemporalDimension("org")
        d.add_member(MemberVersion("a", "A", Interval(0)))
        schema = TemporalMultidimensionalSchema([d], [Measure("mean", AVG)])
        path = tmp_path / "s.json"
        save_schema(schema, path)
        assert load_schema(path).measure("mean").aggregate is AVG

    def test_bad_format_version_rejected(self):
        with pytest.raises(SerializationError):
            schema_from_dict({"format": 99})

    def test_invalid_json_file_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError):
            load_schema(path)

    def test_loaded_schema_is_validated(self, tmp_path, case_study):
        """Tampering with the file surfaces as a model error on load."""
        path = tmp_path / "s.json"
        save_schema(case_study.schema, path)
        payload = json.loads(path.read_text())
        payload["facts"].append(
            {"coordinates": {"org": "jones"}, "t": 10**6, "values": {"amount": 1.0}}
        )
        path.write_text(json.dumps(payload))
        with pytest.raises(Exception):
            load_schema(path)
