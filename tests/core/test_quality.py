"""Unit tests for the §5.2 quality factor Q and mode ranking."""

import pytest

from repro.core import (
    DEFAULT_WEIGHTS,
    Interval,
    LevelGroup,
    Query,
    QualityError,
    TimeGroup,
    YEAR,
    quality_factor,
    rank_modes,
    ym,
)
from repro.core.query import ResultCell, ResultRow, ResultTable
from repro.core.confidence import AM, EM, SD, UK


def table_with(confidences):
    rows = [
        ResultRow(group=(i,), cells=(ResultCell("m", 1.0, cf),))
        for i, cf in enumerate(confidences)
    ]
    return ResultTable(["g"], ["m"], rows, mode="test")


Q2 = Query(
    group_by=(TimeGroup(YEAR), LevelGroup("org", "Department")),
    time_range=Interval(ym(2002, 1), ym(2003, 12)),
)


class TestQualityFactor:
    def test_all_source_data_scores_one(self):
        assert quality_factor(table_with([SD, SD, SD])) == 1.0

    def test_all_unknown_scores_zero(self):
        assert quality_factor(table_with([UK, UK])) == 0.0

    def test_mixed_confidences_follow_formula(self):
        # (10 + 8 + 5 + 0) / (4 * 10)
        assert quality_factor(table_with([SD, EM, AM, UK])) == pytest.approx(0.575)

    def test_empty_cell_counts_as_unknown(self):
        assert quality_factor(table_with([SD, None])) == pytest.approx(0.5)

    def test_empty_table_scores_zero(self):
        assert quality_factor(table_with([])) == 0.0

    def test_custom_weights(self):
        weights = {"sd": 10, "em": 10, "am": 10, "uk": 10}
        assert quality_factor(table_with([UK, AM]), weights) == 1.0

    def test_out_of_range_weight_rejected(self):
        with pytest.raises(QualityError):
            quality_factor(table_with([SD]), {"sd": 11, "em": 8, "am": 5, "uk": 0})

    def test_undeclared_confidence_rejected(self):
        with pytest.raises(QualityError):
            quality_factor(table_with([SD]), {"em": 8, "am": 5, "uk": 0})

    def test_default_weights_cover_canonical_range(self):
        assert set(DEFAULT_WEIGHTS) == {"sd", "em", "am", "uk"}


class TestModeRanking:
    def test_tcm_ranks_best_for_q2(self, engine):
        """Consistent data is all-sd, so tcm always tops the ranking."""
        ranked = rank_modes(engine, Q2)
        assert ranked[0][0] == "tcm"
        assert ranked[0][1] == 1.0

    def test_mode_with_approximated_mappings_ranks_below_exact(self, engine):
        ranked = {label: q for label, q, _ in rank_modes(engine, Q2)}
        # V2 presents 2003 data exactly (em merge); V3 approximates 2002
        # data (am split): exact mapping must score at least as well.
        assert ranked["V2"] >= ranked["V3"]
        assert ranked["V3"] < 1.0

    def test_ranking_is_sorted_descending(self, engine):
        scores = [q for _, q, _ in rank_modes(engine, Q2)]
        assert scores == sorted(scores, reverse=True)

    def test_ranking_returns_result_tables(self, engine):
        for label, _, table in rank_modes(engine, Q2):
            assert table.mode == label
            assert len(table) > 0
