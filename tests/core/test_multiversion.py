"""Unit tests for the MultiVersion fact table inference (Definition 11)."""

import pytest

from repro.core import (
    EvolutionManager,
    Interval,
    Measure,
    MemberVersion,
    QueryError,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
)
from repro.workloads.case_study import ORG, fact_instant


class TestTcmSlice:
    def test_tcm_slice_equals_consistent_table_with_sd(self, case_study, mvft):
        """Definition 11's identity: f' restricted to tcm == f × {sd}^m."""
        rows = mvft.slice("tcm")
        assert len(rows) == len(case_study.schema.facts)
        for mv_row, fact in zip(rows, case_study.schema.facts):
            assert dict(mv_row.coordinates) == dict(fact.coordinates)
            assert mv_row.t == fact.t
            assert mv_row.value("amount") == fact.value("amount")
            assert mv_row.confidence("amount").symbol == "sd"


class TestVersionModes:
    def test_fact_valid_in_version_keeps_value_and_sd(self, mvft):
        row = mvft.lookup({ORG: "brian"}, fact_instant(2001), "V1")
        assert row is not None
        assert row.value("amount") == 100.0
        assert row.confidence("amount").symbol == "sd"

    def test_split_fact_mapped_forward_with_am(self, mvft):
        """Jones's 2002 amount 100 appears as 40 on Bill in the 2003 mode."""
        row = mvft.lookup({ORG: "bill"}, fact_instant(2002), "V3")
        assert row is not None
        assert row.value("amount") == pytest.approx(40.0)
        assert row.confidence("amount").symbol == "am"

    def test_split_facts_merged_backward_with_em(self, mvft):
        """Bill's 150 and Paul's 50 merge to 200 on Jones in the 2002 mode."""
        row = mvft.lookup({ORG: "jones"}, fact_instant(2003), "V2")
        assert row is not None
        assert row.value("amount") == pytest.approx(200.0)
        assert row.confidence("amount").symbol == "em"

    def test_fact_valid_in_version_not_sprayed_to_siblings(self, mvft):
        """A 2003 fact on Bill must not leak onto Paul through Jones."""
        row = mvft.lookup({ORG: "paul"}, fact_instant(2003), "V3")
        assert row is not None
        assert row.value("amount") == pytest.approx(50.0)
        assert row.confidence("amount").symbol == "sd"

    def test_provenance_describes_mapping(self, mvft):
        row = mvft.lookup({ORG: "jones"}, fact_instant(2003), "V2")
        assert row is not None
        assert any("bill -> jones" in p for p in row.provenance)

    def test_cell_counts_per_mode(self, mvft):
        counts = mvft.cell_count()
        assert counts["tcm"] == 10
        assert counts["V1"] == 9   # 2003's four facts collapse to three cells
        assert counts["V2"] == 9
        assert counts["V3"] == 12  # 2001/2002 Jones facts split into two cells

    def test_len_sums_modes(self, mvft):
        assert len(mvft) == sum(mvft.cell_count().values())

    def test_slice_unknown_mode_rejected(self, mvft):
        with pytest.raises(QueryError):
            mvft.slice("V99")

    def test_lookup_miss_returns_none(self, mvft):
        assert mvft.lookup({ORG: "jones"}, fact_instant(2003), "V3") is None


class TestModeSubsetBuild:
    def test_build_only_requested_modes(self, case_study):
        mvft = case_study.schema.multiversion_facts()
        partial = type(mvft).build(case_study.schema, mode_labels=["tcm", "V3"])
        assert partial.cell_count() == {
            "tcm": mvft.cell_count()["tcm"],
            "V3": mvft.cell_count()["V3"],
        }

    def test_unbuilt_known_mode_slices_empty(self, case_study):
        mvft = type(case_study.schema.multiversion_facts()).build(
            case_study.schema, mode_labels=["tcm"]
        )
        assert mvft.slice("V1") == []

    def test_unknown_mode_label_rejected_early(self, case_study):
        from repro.core import MultiVersionFactTable

        with pytest.raises(QueryError):
            MultiVersionFactTable.build(case_study.schema, mode_labels=["V99"])


def deletion_schema():
    """A member deleted without any Associate: its facts are orphaned in
    later modes (and symmetric: later facts are orphaned in older modes
    when creation had no mapping)."""
    d = TemporalDimension(ORG)
    d.add_member(MemberVersion("div", "Division", Interval(0), level="Division"))
    d.add_member(MemberVersion("a", "Dept-A", Interval(0), level="Department"))
    d.add_member(MemberVersion("b", "Dept-B", Interval(0), level="Department"))
    d.add_relationship(TemporalRelationship("a", "div", Interval(0)))
    d.add_relationship(TemporalRelationship("b", "div", Interval(0)))
    schema = TemporalMultidimensionalSchema([d], [Measure("amount", SUM)])
    manager = EvolutionManager(schema)
    schema.add_fact({ORG: "a"}, 5, amount=10.0)
    schema.add_fact({ORG: "b"}, 5, amount=20.0)
    manager.delete_member(ORG, "b", 10)
    schema.add_fact({ORG: "a"}, 15, amount=30.0)
    return schema


class TestUnmappedFacts:
    def test_deleted_member_facts_unmapped_in_later_mode(self):
        schema = deletion_schema()
        mvft = schema.multiversion_facts()
        v2 = schema.structure_versions()[1].vsid
        orphans = [u for u in mvft.unmapped if u.mode == v2]
        assert len(orphans) == 1
        assert orphans[0].source == "b"
        assert orphans[0].dimension == ORG
        assert orphans[0].fact.value("amount") == 20.0

    def test_surviving_member_facts_still_presented(self):
        schema = deletion_schema()
        mvft = schema.multiversion_facts()
        v2 = schema.structure_versions()[1].vsid
        row = mvft.lookup({ORG: "a"}, 5, v2)
        assert row is not None and row.value("amount") == 10.0

    def test_unmapped_repr_mentions_mode(self):
        schema = deletion_schema()
        mvft = schema.multiversion_facts()
        assert mvft.unmapped
        assert "mode=" in repr(mvft.unmapped[0])


class TestUnknownMappings:
    def test_unknown_reverse_mapping_yields_none_with_uk(self):
        """Table 11's merge: V2's back-mapping is unknown, so in the old
        structure V2 shows an unknown value tagged uk."""
        d = TemporalDimension(ORG)
        d.add_member(MemberVersion("div", "Division", Interval(0), level="Division"))
        for mvid in ("v1", "v2"):
            d.add_member(
                MemberVersion(mvid, mvid.upper(), Interval(0), level="Department")
            )
            d.add_relationship(TemporalRelationship(mvid, "div", Interval(0)))
        schema = TemporalMultidimensionalSchema([d], [Measure("amount", SUM)])
        manager = EvolutionManager(schema)
        schema.add_fact({ORG: "v1"}, 5, amount=10.0)
        schema.add_fact({ORG: "v2"}, 5, amount=20.0)
        manager.merge_members(
            ORG, ["v1", "v2"], "v12", "V12", 10,
            reverse_shares={"v1": 0.5, "v2": None},
        )
        schema.add_fact({ORG: "v12"}, 15, amount=100.0)
        mvft = schema.multiversion_facts()
        v1_mode = schema.structure_versions()[0].vsid
        back_v1 = mvft.lookup({ORG: "v1"}, 15, v1_mode)
        back_v2 = mvft.lookup({ORG: "v2"}, 15, v1_mode)
        assert back_v1 is not None
        assert back_v1.value("amount") == pytest.approx(50.0)
        assert back_v1.confidence("amount").symbol == "am"
        assert back_v2 is not None
        assert back_v2.value("amount") is None
        assert back_v2.confidence("amount").symbol == "uk"


class TestMaxHops:
    def test_long_transform_chain_respects_max_hops(self):
        """A member renamed five times: presenting its early facts in the
        final structure needs a 5-hop route; max_hops below that leaves
        the facts unmapped instead of silently wrong."""
        from repro.core import (
            EvolutionManager,
            Interval,
            Measure,
            MemberVersion,
            MultiVersionFactTable,
            SUM,
            TemporalDimension,
            TemporalMultidimensionalSchema,
            TemporalRelationship,
        )

        d = TemporalDimension(ORG)
        d.add_member(MemberVersion("div", "Division", Interval(0), level="Division"))
        d.add_member(MemberVersion("v0", "Dept", Interval(0), level="Department"))
        d.add_relationship(TemporalRelationship("v0", "div", Interval(0)))
        schema = TemporalMultidimensionalSchema([d], [Measure("amount", SUM)])
        manager = EvolutionManager(schema)
        schema.add_fact({ORG: "v0"}, 5, amount=10.0)
        for i in range(5):
            manager.transform_member(
                ORG, f"v{i}", f"v{i+1}", "Dept", 10 * (i + 1)
            )
        last_mode = schema.structure_versions()[-1].vsid

        wide = MultiVersionFactTable.build(schema, max_hops=8)
        assert wide.lookup({ORG: "v5"}, 5, last_mode) is not None
        assert not [u for u in wide.unmapped if u.mode == last_mode]

        narrow = MultiVersionFactTable.build(schema, max_hops=3)
        assert narrow.lookup({ORG: "v5"}, 5, last_mode) is None
        assert [u for u in narrow.unmapped if u.mode == last_mode]
