"""Unit tests for temporal relationships (Definition 2)."""

import pytest

from repro.core import (
    Interval,
    InvalidRelationshipError,
    MemberVersion,
    ModelError,
    NOW,
    TemporalRelationship,
    validate_relationship,
)


def member(mvid, start=0, end=NOW):
    return MemberVersion(mvid, mvid.upper(), Interval(start, end))


class TestConstruction:
    def test_requires_both_endpoints(self):
        with pytest.raises(InvalidRelationshipError):
            TemporalRelationship("", "p", Interval(0))

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidRelationshipError):
            TemporalRelationship("a", "a", Interval(0))

    def test_validity_accessors(self):
        rel = TemporalRelationship("c", "p", Interval(3, 9))
        assert (rel.start, rel.end) == (3, 9)
        assert rel.valid_at(3) and rel.valid_at(9)
        assert not rel.valid_at(10)

    def test_valid_throughout(self):
        rel = TemporalRelationship("c", "p", Interval(0, 10))
        assert rel.valid_throughout(Interval(2, 8))
        assert not rel.valid_throughout(Interval(8, 12))


class TestExclusion:
    def test_excluded_at_truncates(self):
        rel = TemporalRelationship("c", "p", Interval(0)).excluded_at(5)
        assert rel.valid_time == Interval(0, 4)

    def test_excluding_before_start_rejected(self):
        with pytest.raises(ModelError):
            TemporalRelationship("c", "p", Interval(5)).excluded_at(5)


class TestDefinition2Constraint:
    def test_valid_relationship_passes(self):
        rel = TemporalRelationship("c", "p", Interval(2, 8))
        validate_relationship(rel, member("c", 0, 10), member("p", 1, 9))

    def test_relationship_extending_past_child_rejected(self):
        rel = TemporalRelationship("c", "p", Interval(2, 12))
        with pytest.raises(InvalidRelationshipError):
            validate_relationship(rel, member("c", 0, 10), member("p", 0))

    def test_relationship_outside_intersection_rejected(self):
        rel = TemporalRelationship("c", "p", Interval(0, 3))
        with pytest.raises(InvalidRelationshipError):
            validate_relationship(rel, member("c", 0, 10), member("p", 5, 20))

    def test_disjoint_member_validities_rejected(self):
        rel = TemporalRelationship("c", "p", Interval(0, 1))
        with pytest.raises(InvalidRelationshipError):
            validate_relationship(rel, member("c", 0, 2), member("p", 5, 9))

    def test_wrong_endpoints_rejected(self):
        rel = TemporalRelationship("c", "p", Interval(0, 1))
        with pytest.raises(InvalidRelationshipError):
            validate_relationship(rel, member("x", 0, 9), member("p", 0, 9))

    def test_open_ended_relationship_inside_open_members(self):
        rel = TemporalRelationship("c", "p", Interval(5))
        validate_relationship(rel, member("c", 0), member("p", 2))
