"""Unit tests for the four basic evolution operators (§3.2)."""

import pytest

from repro.core import (
    Interval,
    MappingRelationship,
    Measure,
    MemberVersion,
    NOW,
    OperatorError,
    SchemaEditor,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
    identity_maps,
)


@pytest.fixture()
def editor():
    d = TemporalDimension("org")
    d.add_member(MemberVersion("p1", "Parent-1", Interval(0), level="Division"))
    d.add_member(MemberVersion("p2", "Parent-2", Interval(0), level="Division"))
    d.add_member(MemberVersion("c1", "Child-1", Interval(0), level="Department"))
    d.add_relationship(TemporalRelationship("c1", "p1", Interval(0)))
    schema = TemporalMultidimensionalSchema([d], [Measure("amount", SUM)])
    return SchemaEditor(schema)


class TestInsert:
    def test_insert_creates_member_and_edges(self, editor):
        editor.insert("org", "c2", "Child-2", 5, parents=["p1"], level="Department")
        dim = editor.schema.dimension("org")
        assert dim.member("c2").valid_time == Interval(5, NOW)
        assert dim.at(5).parents("c2") == ["p1"]

    def test_insert_with_children(self, editor):
        editor.insert("org", "mid", "Mid", 5, parents=["p1"], children=["c1"])
        dim = editor.schema.dimension("org")
        assert dim.at(5).parents("mid") == ["p1"]
        assert "mid" in dim.at(5).parents("c1")

    def test_insert_with_bounded_validity(self, editor):
        editor.insert("org", "tmp", "Temp", 5, 9, parents=["p1"])
        assert editor.schema.dimension("org").member("tmp").valid_time == Interval(5, 9)

    def test_edge_clipped_to_parent_validity(self, editor):
        dim = editor.schema.dimension("org")
        dim.add_member(MemberVersion("px", "Px", Interval(0, 7), level="Division"))
        editor.insert("org", "cx", "Cx", 5, parents=["px"])
        rel = [r for r in dim.relationships if r.child == "cx"][0]
        assert rel.valid_time == Interval(5, 7)

    def test_insert_under_disjoint_parent_rejected(self, editor):
        dim = editor.schema.dimension("org")
        dim.add_member(MemberVersion("gone", "Gone", Interval(0, 3), level="Division"))
        with pytest.raises(OperatorError):
            editor.insert("org", "cx", "Cx", 5, parents=["gone"])

    def test_insert_journaled(self, editor):
        editor.insert("org", "c2", "Child-2", 5, parents=["p1"])
        rec = editor.journal[-1]
        assert rec.operator == "Insert"
        assert "Insert(org, c2" in rec.rendering


class TestExclude:
    def test_exclude_truncates_member_and_edges(self, editor):
        editor.exclude("org", "c1", 10)
        dim = editor.schema.dimension("org")
        assert dim.member("c1").valid_time == Interval(0, 9)
        rel = [r for r in dim.relationships if r.child == "c1"][0]
        assert rel.valid_time == Interval(0, 9)

    def test_exclude_before_start_rejected(self, editor):
        with pytest.raises(OperatorError):
            editor.exclude("org", "c1", 0)

    def test_exclude_removes_future_edges_entirely(self, editor):
        """An edge scheduled to start after the exclusion point vanishes."""
        dim = editor.schema.dimension("org")
        dim.add_relationship(TemporalRelationship("c1", "p2", Interval(30)))
        editor.exclude("org", "c1", 20)
        assert all(r.parent != "p2" for r in dim.relationships if r.child == "c1")

    def test_exclude_at_creation_instant_rejected(self, editor):
        editor.insert("org", "c2", "Child-2", 20, parents=["p1"])
        with pytest.raises(OperatorError):
            editor.exclude("org", "c2", 20)

    def test_exclude_leaves_already_ended_edges_alone(self, editor):
        dim = editor.schema.dimension("org")
        dim.add_member(MemberVersion("c3", "Child-3", Interval(0), level="Department"))
        dim.add_relationship(TemporalRelationship("c3", "p1", Interval(0, 4)))
        editor.exclude("org", "c3", 10)
        rel = [r for r in dim.relationships if r.child == "c3"][0]
        assert rel.valid_time == Interval(0, 4)

    def test_exclude_journaled(self, editor):
        editor.exclude("org", "c1", 10)
        assert editor.journal[-1].rendering == "Exclude(org, c1, 10)"


class TestAssociate:
    def test_associate_registers_mapping(self, editor):
        editor.insert("org", "c2", "Child-2", 5, parents=["p1"], level="Department")
        editor.associate(
            MappingRelationship(
                "c1", "c2", forward=identity_maps(["amount"])
            )
        )
        assert len(editor.schema.mappings) == 1
        assert editor.journal[-1].operator == "Associate"

    def test_associate_consistency_check_fails_on_non_leaf(self, editor):
        from repro.core import MappingError

        with pytest.raises(MappingError):
            editor.associate(MappingRelationship("c1", "p1"))


class TestReclassify:
    def test_reclassify_moves_member(self, editor):
        editor.reclassify(
            "org", "c1", 10, old_parents=["p1"], new_parents=["p2"]
        )
        dim = editor.schema.dimension("org")
        assert dim.at(9).parents("c1") == ["p1"]
        assert dim.at(10).parents("c1") == ["p2"]

    def test_member_version_unchanged_by_reclassify(self, editor):
        """The conceptual Reclassify touches relationships only."""
        before = editor.schema.dimension("org").member("c1")
        editor.reclassify("org", "c1", 10, old_parents=["p1"], new_parents=["p2"])
        assert editor.schema.dimension("org").member("c1") == before

    def test_reclassify_with_wrong_old_parent_rejected(self, editor):
        with pytest.raises(OperatorError):
            editor.reclassify(
                "org", "c1", 10, old_parents=["p2"], new_parents=["p1"]
            )

    def test_pure_detachment(self, editor):
        editor.reclassify("org", "c1", 10, old_parents=["p1"], new_parents=[])
        assert editor.schema.dimension("org").at(10).parents("c1") == []

    def test_pure_attachment(self, editor):
        """NewParents on top of existing ones: a multiple hierarchy."""
        editor.reclassify("org", "c1", 10, old_parents=[], new_parents=["p2"])
        assert editor.schema.dimension("org").at(10).parents("c1") == ["p1", "p2"]

    def test_bounded_reclassification(self, editor):
        editor.reclassify(
            "org", "c1", 10, 19, old_parents=["p1"], new_parents=["p2"]
        )
        dim = editor.schema.dimension("org")
        assert dim.at(15).parents("c1") == ["p2"]
        # after tf the p2 edge has expired (and the p1 edge ended at 9):
        assert dim.at(25).parents("c1") == []

    def test_reclassify_journaled(self, editor):
        editor.reclassify("org", "c1", 10, old_parents=["p1"], new_parents=["p2"])
        assert editor.journal[-1].operator == "Reclassify"
        assert "{p1}" in editor.journal[-1].rendering


class TestJournalHelpers:
    def test_mark_and_records_since(self, editor):
        mark = editor.mark()
        editor.exclude("org", "c1", 10)
        editor.insert("org", "c2", "Child-2", 10, parents=["p1"])
        records = editor.records_since(mark)
        assert [r.operator for r in records] == ["Exclude", "Insert"]


class TestExcludeEdgeCases:
    def test_exclude_already_ended_member_is_noop_on_member(self, editor):
        dim = editor.schema.dimension("org")
        dim.add_member(MemberVersion("old", "Old", Interval(0, 4), level="Department"))
        editor.exclude("org", "old", 10)  # already ends at 4 < 9
        assert dim.member("old").valid_time == Interval(0, 4)

    def test_exclude_journal_still_records_noop(self, editor):
        dim = editor.schema.dimension("org")
        dim.add_member(MemberVersion("old", "Old", Interval(0, 4), level="Department"))
        mark = editor.mark()
        editor.exclude("org", "old", 10)
        assert [r.operator for r in editor.records_since(mark)] == ["Exclude"]
