"""Unit tests for Definition 12's recursive data aggregation."""

import pytest

from repro.core import DataAggregator, QueryError
from repro.workloads.case_study import ORG, fact_instant


@pytest.fixture(scope="module")
def aggregator(mvft):
    return DataAggregator(mvft)


class TestLeafCells:
    def test_leaf_value_matches_mv_cell(self, aggregator):
        value, cf = aggregator.value("tcm", {ORG: "jones"}, fact_instant(2001), "amount")
        assert value == 100.0 and cf.symbol == "sd"

    def test_missing_leaf_cell_is_empty(self, aggregator):
        value, cf = aggregator.value("tcm", {ORG: "jones"}, fact_instant(2003), "amount")
        assert value is None and cf is None


class TestRollup:
    def test_division_rollup_tcm_2001(self, aggregator):
        """Sales in 2001 = Jones 100 + Smith 50 (Table 4's first row)."""
        value, cf = aggregator.value("tcm", {ORG: "sales"}, fact_instant(2001), "amount")
        assert value == 150.0 and cf.symbol == "sd"

    def test_division_rollup_follows_snapshot_hierarchy(self, aggregator):
        """In 2002 Smith rolls into R&D, so tcm R&D = 100 + 50."""
        value, cf = aggregator.value("tcm", {ORG: "rd"}, fact_instant(2002), "amount")
        assert value == 150.0 and cf.symbol == "sd"

    def test_version_mode_uses_version_hierarchy(self, aggregator):
        """In mode V1 (2001 structure) Smith stays under Sales, so the 2002
        Sales aggregate is Jones 100 + Smith 100 = 200 (Table 5)."""
        value, cf = aggregator.value("V1", {ORG: "sales"}, fact_instant(2002), "amount")
        assert value == 200.0 and cf.symbol == "sd"

    def test_mapped_contributions_degrade_confidence(self, aggregator):
        """In mode V3 the 2002 Sales aggregate contains Jones's amount
        split onto Bill/Paul: value 100 but confidence am."""
        value, cf = aggregator.value("V3", {ORG: "sales"}, fact_instant(2002), "amount")
        assert value == pytest.approx(100.0)
        assert cf.symbol == "am"

    def test_member_absent_from_mode_structure_is_empty(self, aggregator):
        """Bill does not exist in the V1 structure."""
        value, cf = aggregator.value("V1", {ORG: "bill"}, fact_instant(2003), "amount")
        assert value is None and cf is None


class TestValidation:
    def test_unknown_mode_rejected(self, aggregator):
        with pytest.raises(QueryError):
            aggregator.value("V99", {ORG: "sales"}, fact_instant(2001), "amount")

    def test_missing_dimension_coordinate_rejected(self, aggregator):
        with pytest.raises(QueryError):
            aggregator.value("tcm", {}, fact_instant(2001), "amount")

    def test_unknown_measure_rejected(self, aggregator):
        with pytest.raises(Exception):
            aggregator.value("tcm", {ORG: "sales"}, fact_instant(2001), "zzz")


class TestAggregatorEngineParity:
    """Definition 12's recursive aggregation must agree with the query
    engine's leaf-grouped folds on the case study."""

    def test_division_cells_match_query_engine(self, aggregator, engine):
        from repro.core import Interval, LevelGroup, Query, TimeGroup, YEAR, ym

        result = engine.execute(
            Query(
                mode="V1",
                group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")),
            )
        ).as_dict()
        div_ids = {"Sales": "sales", "R&D": "rd"}
        for (year, division), cells in result.items():
            value, _cf = aggregator.value(
                "V1", {ORG: div_ids[division]}, fact_instant(int(year)), "amount"
            )
            assert value == cells["amount"], (year, division)
