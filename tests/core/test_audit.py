"""Tests for the schema audit (linter)."""

import pytest

from repro.core import (
    EvolutionManager,
    Interval,
    Measure,
    MemberVersion,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
    audit_schema,
)


def base_schema(n_departments=3):
    d = TemporalDimension("org")
    d.add_member(MemberVersion("div", "Division", Interval(0), level="Division"))
    for i in range(n_departments):
        d.add_member(
            MemberVersion(f"d{i}", f"Dept-{i}", Interval(0), level="Department")
        )
        d.add_relationship(TemporalRelationship(f"d{i}", "div", Interval(0)))
    return TemporalMultidimensionalSchema([d], [Measure("amount", SUM)])


class TestCleanSchema:
    def test_untouched_schema_is_clean(self):
        schema = base_schema()
        schema.add_fact({"org": "d0"}, 5, amount=1.0)
        report = audit_schema(schema)
        assert report.ok
        assert len(report) == 0
        assert report.to_text() == "audit: clean (no findings)"

    def test_well_formed_split_is_clean_of_warnings(self):
        schema = base_schema()
        manager = EvolutionManager(schema)
        manager.split_member(
            "org", "d0", {"a": ("A", 0.4), "b": ("B", 0.6)}, 10
        )
        report = audit_schema(schema)
        assert not report.by_code("split-shares-not-conservative")
        # the created parts legitimately have incoming mappings: no info
        assert not report.by_code("created-without-mapping")

    def test_case_study_audit(self, case_study):
        report = audit_schema(case_study.schema)
        assert report.ok  # no errors: every fact presentable everywhere


class TestShareChecks:
    def test_non_conservative_split_flagged(self):
        schema = base_schema()
        manager = EvolutionManager(schema)
        manager.split_member(
            "org", "d0", {"a": ("A", 0.4), "b": ("B", 0.4)}, 10  # sums to 0.8
        )
        report = audit_schema(schema)
        findings = report.by_code("split-shares-not-conservative")
        assert len(findings) == 1
        assert findings[0].subject == "d0"
        assert "0.8" in findings[0].message

    def test_non_conservative_merge_back_shares_flagged(self):
        schema = base_schema()
        manager = EvolutionManager(schema)
        manager.merge_members(
            "org", ["d0", "d1"], "m", "Merged", 10,
            reverse_shares={"d0": 0.9, "d1": 0.9},  # sums to 1.8
        )
        report = audit_schema(schema)
        assert report.by_code("merge-back-shares-not-conservative")

    def test_unknown_share_groups_skipped(self):
        """A merge with an unknown back-share is not a share-sum warning
        (it is an unknown-mapping info instead)."""
        schema = base_schema()
        manager = EvolutionManager(schema)
        manager.merge_members(
            "org", ["d0", "d1"], "m", "Merged", 10,
            reverse_shares={"d0": 0.5, "d1": None},
        )
        report = audit_schema(schema)
        assert not report.by_code("merge-back-shares-not-conservative")
        assert report.by_code("unknown-mapping-function")


class TestTransitionCoverage:
    def test_deletion_without_mapping_flagged(self):
        schema = base_schema()
        schema.add_fact({"org": "d0"}, 5, amount=1.0)
        manager = EvolutionManager(schema)
        manager.delete_member("org", "d0", 10)
        report = audit_schema(schema)
        assert report.by_code("excluded-without-mapping")
        # and the fact really is stranded in the later mode:
        stranded = report.by_code("stranded-facts")
        assert stranded and stranded[0].severity == "error"
        assert not report.ok

    def test_creation_without_mapping_is_info(self):
        schema = base_schema()
        manager = EvolutionManager(schema)
        manager.create_member("org", "late", "Latecomer", 10, parents=["div"])
        report = audit_schema(schema)
        findings = report.by_code("created-without-mapping")
        assert findings and findings[0].severity == "info"


class TestOverlapsAndEmptiness:
    def test_overlapping_versions_of_same_member_flagged(self):
        schema = base_schema()
        dim = schema.dimension("org")
        dim.add_member(
            MemberVersion("d0bis", "Dept-0", Interval(5), level="Department")
        )
        report = audit_schema(schema)
        assert report.by_code("overlapping-member-versions")

    def test_distinct_members_do_not_trigger_overlap(self):
        report = audit_schema(base_schema())
        assert not report.by_code("overlapping-member-versions")


class TestReportApi:
    def test_to_text_orders_errors_first(self):
        schema = base_schema()
        schema.add_fact({"org": "d0"}, 5, amount=1.0)
        manager = EvolutionManager(schema)
        manager.delete_member("org", "d0", 10)
        text = audit_schema(schema).to_text()
        first_line = text.splitlines()[0]
        assert first_line.startswith("[error")

    def test_by_severity_partitions(self):
        schema = base_schema()
        manager = EvolutionManager(schema)
        manager.delete_member("org", "d0", 10)
        manager.create_member("org", "late", "Late", 10, parents=["div"])
        report = audit_schema(schema)
        total = sum(
            len(report.by_severity(s)) for s in ("error", "warning", "info")
        )
        assert total == len(report)
