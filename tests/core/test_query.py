"""Unit tests for the multiversion query engine."""

import pytest

from repro.core import (
    Interval,
    LevelGroup,
    Query,
    QueryEngine,
    QueryError,
    TimeGroup,
    YEAR,
    ym,
)
from repro.workloads.case_study import ORG


Q1 = Query(
    group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")),
    time_range=Interval(ym(2001, 1), ym(2002, 12)),
)


class TestValidation:
    def test_query_needs_group_by(self, engine):
        with pytest.raises(QueryError):
            engine.execute(Query(mode="tcm"))

    def test_unknown_mode_rejected(self, engine):
        with pytest.raises(QueryError):
            engine.execute(Q1.with_mode("V99"))

    def test_unknown_level_rejected(self, engine):
        q = Query(group_by=(LevelGroup(ORG, "Continent"),))
        with pytest.raises(QueryError):
            engine.execute(q)

    def test_unknown_dimension_rejected(self, engine):
        q = Query(group_by=(LevelGroup("geo", "Country"),))
        with pytest.raises(QueryError):
            engine.execute(q)

    def test_unknown_measure_rejected(self, engine):
        q = Query(group_by=(TimeGroup(YEAR),), measures=("zzz",))
        with pytest.raises(Exception):
            engine.execute(q)


class TestGrouping:
    def test_time_only_grouping(self, engine):
        table = engine.execute(Query(group_by=(TimeGroup(YEAR),)))
        assert table.as_dict()[("2001",)]["amount"] == 250.0
        assert table.as_dict()[("2003",)]["amount"] == 350.0

    def test_level_only_grouping(self, engine):
        q = Query(group_by=(LevelGroup(ORG, "Division"),))
        totals = engine.execute(q).as_dict()
        assert totals[("Sales",)]["amount"] + totals[("R&D",)]["amount"] == 850.0

    def test_group_order_defines_columns(self, engine):
        table = engine.execute(Q1)
        assert table.columns == ["year", "Division"]

    def test_time_range_filters(self, engine):
        table = engine.execute(Q1)
        years = {g[0] for g in table.as_dict()}
        assert years == {"2001", "2002"}

    def test_coordinate_filter(self, engine):
        q = Query(
            group_by=(TimeGroup(YEAR),),
            coordinate_filter=lambda row: row.coordinates[ORG] == "brian",
        )
        totals = engine.execute(q).as_dict()
        assert totals[("2001",)]["amount"] == 100.0
        assert totals[("2003",)]["amount"] == 40.0

    def test_with_mode_preserves_everything_else(self):
        q2 = Q1.with_mode("V2")
        assert q2.mode == "V2"
        assert q2.group_by == Q1.group_by
        assert q2.time_range == Q1.time_range


class TestModeSemantics:
    def test_tcm_uses_hierarchy_at_fact_time(self, engine):
        table = engine.execute(Q1)  # tcm by default
        d = table.as_dict()
        # 2002: Smith already under R&D in consistent time.
        assert d[("2002", "Sales")]["amount"] == 100.0
        assert d[("2002", "R&D")]["amount"] == 150.0

    def test_version_mode_uses_static_hierarchy(self, engine):
        d = engine.execute(Q1.with_mode("V1")).as_dict()
        # 2001 structure: Smith still under Sales.
        assert d[("2002", "Sales")]["amount"] == 200.0
        assert d[("2002", "R&D")]["amount"] == 50.0

    def test_execute_all_modes(self, engine, mvft):
        results = engine.execute_all_modes(Q1)
        assert set(results) == set(mvft.modes.labels)

    def test_result_confidences_surface_mapping_quality(self, engine):
        q2 = Query(
            group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Department")),
            time_range=Interval(ym(2002, 1), ym(2003, 12)),
            mode="V3",
        )
        confs = engine.execute(q2).confidences()
        assert confs[("2002", "Dpt.Bill")]["amount"] == "am"
        assert confs[("2003", "Dpt.Bill")]["amount"] == "sd"


class TestResultTable:
    def test_rows_sorted_by_group(self, engine):
        table = engine.execute(Q1)
        groups = [row.group for row in table]
        assert groups == sorted(groups, key=lambda g: tuple(str(x) for x in g))

    def test_row_accessors(self, engine):
        table = engine.execute(Q1)
        row = table.rows[0]
        assert row.value("amount") is not None
        assert row.confidence("amount") is not None
        with pytest.raises(QueryError):
            row.value("zzz")

    def test_to_text_contains_headers_and_confidence(self, engine):
        text = engine.execute(Q1).to_text()
        assert "year" in text and "Division" in text
        assert "(sd)" in text

    def test_to_text_without_confidence(self, engine):
        text = engine.execute(Q1).to_text(show_confidence=False)
        assert "(sd)" not in text

    def test_len(self, engine):
        assert len(engine.execute(Q1)) == 4


class TestLevelFilters:
    """Slice/dice via LevelFilter, resolved through the mode's hierarchy."""

    def test_filter_follows_tcm_hierarchy(self, engine):
        from repro.core import LevelFilter

        q = Query(
            group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Department")),
            level_filters=(LevelFilter(ORG, "Division", ("Sales",)),),
        )
        d = engine.execute(q).as_dict()
        # Smith is under Sales only in 2001 (reclassified in 2002).
        assert ("2001", "Dpt.Smith") in d
        assert ("2002", "Dpt.Smith") not in d
        assert ("2003", "Dpt.Bill") in d

    def test_filter_follows_version_hierarchy(self, engine):
        from repro.core import LevelFilter

        q = Query(
            mode="V1",
            group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Department")),
            level_filters=(LevelFilter(ORG, "Division", ("Sales",)),),
        )
        d = engine.execute(q).as_dict()
        # In the 2001 structure Smith is under Sales for every year.
        assert ("2002", "Dpt.Smith") in d
        assert ("2001", "Dpt.Brian") not in d

    def test_multi_value_filter(self, engine):
        from repro.core import LevelFilter

        q = Query(
            group_by=(TimeGroup(YEAR),),
            level_filters=(
                LevelFilter(ORG, "Department", ("Dpt.Bill", "Dpt.Paul")),
            ),
        )
        d = engine.execute(q).as_dict()
        assert d == {("2003",): {"amount": 200.0}}

    def test_empty_values_rejected(self):
        from repro.core import LevelFilter

        with pytest.raises(QueryError):
            LevelFilter(ORG, "Division", ())

    def test_filter_preserved_by_with_mode(self, engine):
        from repro.core import LevelFilter

        q = Query(
            group_by=(TimeGroup(YEAR),),
            level_filters=(LevelFilter(ORG, "Division", ("Sales",)),),
        )
        assert q.with_mode("V2").level_filters == q.level_filters

    def test_filter_unknown_dimension_rejected(self, engine):
        from repro.core import LevelFilter

        q = Query(
            group_by=(TimeGroup(YEAR),),
            level_filters=(LevelFilter("geo", "Country", ("France",)),),
        )
        with pytest.raises(QueryError):
            engine.execute(q)


class TestAttributeGroup:
    """Grouping by member-version attributes (Definition 1's [A])."""

    @pytest.fixture()
    def attr_engine(self):
        from repro.core import (
            AttributeGroup,
            EvolutionManager,
            Measure,
            MemberVersion,
            SUM,
            TemporalDimension,
            TemporalMultidimensionalSchema,
            TemporalRelationship,
        )

        d = TemporalDimension(ORG)
        d.add_member(MemberVersion("div", "Division", Interval(0), level="Division"))
        d.add_member(
            MemberVersion(
                "a", "Dept-A", Interval(0),
                attributes={"size": "small"}, level="Department",
            )
        )
        d.add_member(
            MemberVersion(
                "b", "Dept-B", Interval(0),
                attributes={"size": "large"}, level="Department",
            )
        )
        d.add_relationship(TemporalRelationship("a", "div", Interval(0)))
        d.add_relationship(TemporalRelationship("b", "div", Interval(0)))
        schema = TemporalMultidimensionalSchema([d], [Measure("amount", SUM)])
        manager = EvolutionManager(schema)
        # Dept-A grows: a *transformation* changes its size attribute.
        manager.transform_member(
            ORG, "a", "a2", "Dept-A", 10, attributes={"size": "large"}
        )
        schema.add_fact({ORG: "a"}, 5, amount=10.0)
        schema.add_fact({ORG: "b"}, 5, amount=20.0)
        schema.add_fact({ORG: "a2"}, 15, amount=30.0)
        schema.add_fact({ORG: "b"}, 15, amount=40.0)
        return QueryEngine(schema.multiversion_facts())

    def test_tcm_uses_attribute_at_fact_time(self, attr_engine):
        from repro.core import AttributeGroup

        q = Query(group_by=(AttributeGroup(ORG, "size"),))
        d = attr_engine.execute(q).as_dict()
        assert d[("small",)]["amount"] == 10.0          # Dept-A while small
        assert d[("large",)]["amount"] == 90.0          # B always + A after

    def test_version_mode_uses_versions_attribute(self, attr_engine):
        from repro.core import AttributeGroup

        q = Query(mode="V1", group_by=(AttributeGroup(ORG, "size"),))
        d = attr_engine.execute(q).as_dict()
        # In the old structure Dept-A is its small version: all of A's
        # history (10 + 30 mapped back) groups under small.
        assert d[("small",)]["amount"] == 40.0
        assert d[("large",)]["amount"] == 60.0

    def test_missing_attribute_groups_under_none(self, attr_engine):
        from repro.core import AttributeGroup

        q = Query(group_by=(AttributeGroup(ORG, "colour"),))
        d = attr_engine.execute(q).as_dict()
        assert list(d) == [(None,)]

    def test_attribute_column_header(self, attr_engine):
        from repro.core import AttributeGroup

        table = attr_engine.execute(
            Query(group_by=(TimeGroup(YEAR), AttributeGroup(ORG, "size")))
        )
        assert table.columns == ["year", "size"]
