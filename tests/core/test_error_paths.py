"""Error paths of the §3.2 operators: exact exception types, and the
schema is left byte-identical after every rejected call."""

import json

import pytest

from repro.core import (
    DuplicateMemberVersionError,
    Interval,
    MappingError,
    Measure,
    MemberVersion,
    OperatorError,
    SchemaEditor,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
    UnknownDimensionError,
    UnknownMemberVersionError,
)
from repro.core.mapping import MappingRelationship, identity_maps
from repro.core.serialization import schema_to_dict


def build_schema():
    d = TemporalDimension("Org")
    d.add_member(MemberVersion("idP1", "P1", Interval(0), level="Division"))
    d.add_member(MemberVersion("idV", "V", Interval(0), level="Department"))
    d.add_member(
        MemberVersion("idOld", "Old", Interval(0, 5), level="Department")
    )
    d.add_relationship(TemporalRelationship("idV", "idP1", Interval(0)))
    d.add_relationship(TemporalRelationship("idOld", "idP1", Interval(0, 5)))
    return TemporalMultidimensionalSchema([d], [Measure("m", SUM)])


def fingerprint(schema):
    return json.dumps(schema_to_dict(schema), sort_keys=True)


@pytest.fixture()
def schema():
    return build_schema()


@pytest.fixture()
def editor(schema):
    return SchemaEditor(schema)


@pytest.fixture()
def before(schema):
    return fingerprint(schema)


class TestInsertErrors:
    def test_duplicate_mvid_is_rejected(self, schema, editor, before):
        with pytest.raises(DuplicateMemberVersionError):
            editor.insert("Org", "idV", "V again", 3)
        assert fingerprint(schema) == before
        assert editor.journal == []

    def test_unknown_dimension_is_rejected(self, schema, editor, before):
        with pytest.raises(UnknownDimensionError):
            editor.insert("Geo", "idX", "X", 3)
        assert fingerprint(schema) == before

    def test_unknown_parent_cleans_up_the_half_created_member(
        self, schema, editor, before
    ):
        with pytest.raises(UnknownMemberVersionError):
            editor.insert("Org", "idX", "X", 3, parents=["idNOPE"])
        # the member added before the parent lookup failed must be gone
        assert "idX" not in schema.dimension("Org")
        assert fingerprint(schema) == before
        assert editor.journal == []

    def test_disjoint_parent_validity_cleans_up(self, schema, editor, before):
        # idOld ends at 5; relating a member starting at 10 to it is empty
        with pytest.raises(OperatorError):
            editor.insert("Org", "idX", "X", 10, parents=["idOld"])
        assert "idX" not in schema.dimension("Org")
        assert fingerprint(schema) == before

    def test_failure_on_second_parent_also_unwinds_the_first_edge(
        self, schema, editor, before
    ):
        with pytest.raises(UnknownMemberVersionError):
            editor.insert("Org", "idX", "X", 3, parents=["idP1", "idNOPE"])
        assert fingerprint(schema) == before


class TestExcludeErrors:
    def test_unknown_member_is_rejected(self, schema, editor, before):
        with pytest.raises(UnknownMemberVersionError):
            editor.exclude("Org", "idNOPE", 5)
        assert fingerprint(schema) == before
        assert editor.journal == []

    def test_exclusion_before_the_member_exists_is_rejected(
        self, schema, editor, before
    ):
        with pytest.raises(OperatorError):
            editor.exclude("Org", "idV", 0)
        assert fingerprint(schema) == before


class TestReclassifyErrors:
    def test_unknown_member_is_rejected(self, schema, editor, before):
        with pytest.raises(UnknownMemberVersionError):
            editor.reclassify("Org", "idNOPE", 3, old_parents=["idP1"])
        assert fingerprint(schema) == before

    def test_stale_old_parents_are_rejected(self, schema, editor, before):
        # idOld's edge to idP1 ended at 5 — at t=8 it is no longer a parent
        with pytest.raises(OperatorError):
            editor.reclassify(
                "Org", "idOld", 8, old_parents=["idP1"], new_parents=[]
            )
        assert fingerprint(schema) == before
        assert editor.journal == []

    def test_non_parent_old_set_is_rejected(self, schema, editor, before):
        with pytest.raises(OperatorError):
            editor.reclassify("Org", "idV", 3, old_parents=["idOld"])
        assert fingerprint(schema) == before


class TestAssociateErrors:
    def test_unknown_endpoint_is_rejected(self, schema, editor, before):
        with pytest.raises(UnknownMemberVersionError):
            editor.associate(
                MappingRelationship(
                    source="idV",
                    target="idNOPE",
                    forward=identity_maps(["m"]),
                    reverse=identity_maps(["m"]),
                )
            )
        assert fingerprint(schema) == before
        assert len(schema.mappings) == 0

    def test_self_mapping_is_rejected_at_construction(self):
        with pytest.raises(MappingError):
            MappingRelationship(source="idV", target="idV")

    def test_unknown_measure_is_rejected(self, schema, editor, before):
        with pytest.raises(MappingError):
            editor.associate(
                MappingRelationship(
                    source="idV",
                    target="idOld",
                    forward=identity_maps(["profit"]),
                    reverse=identity_maps(["profit"]),
                )
            )
        assert fingerprint(schema) == before

    def test_non_leaf_endpoint_is_rejected(self, schema, editor, before):
        with pytest.raises(MappingError):
            editor.associate(
                MappingRelationship(
                    source="idP1",
                    target="idV",
                    forward=identity_maps(["m"]),
                    reverse=identity_maps(["m"]),
                )
            )
        assert fingerprint(schema) == before


class TestFactErrors:
    def test_fact_against_non_leaf_is_rejected(self, schema, before):
        from repro.core import FactValidityError

        with pytest.raises(FactValidityError):
            schema.add_fact({"Org": "idP1"}, 3, {"m": 1.0})
        assert fingerprint(schema) == before

    def test_fact_outside_member_validity_is_rejected(self, schema, before):
        from repro.core import FactValidityError

        with pytest.raises(FactValidityError):
            schema.add_fact({"Org": "idOld"}, 10, {"m": 1.0})
        assert fingerprint(schema) == before
