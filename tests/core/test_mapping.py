"""Unit tests for mapping functions, relationships and routing (Def. 7)."""

import pytest

from repro.core import (
    AM,
    CallableMapping,
    EM,
    IdentityMapping,
    LinearMapping,
    MappingCatalog,
    MappingError,
    MappingRelationship,
    MeasureMap,
    SD,
    UK,
    UnknownMapping,
    identity_maps,
    linear_maps,
    unknown_maps,
)
from repro.core.confidence import DEFAULT_AGGREGATOR


class TestMappingFunctions:
    def test_linear_apply(self):
        assert LinearMapping(0.4).apply(100.0) == pytest.approx(40.0)

    def test_identity_is_linear_one(self):
        f = IdentityMapping()
        assert f.k == 1.0
        assert f.apply(7.0) == 7.0

    def test_unknown_yields_none(self):
        assert UnknownMapping().apply(100.0) is None

    def test_none_propagates_through_linear(self):
        assert LinearMapping(2.0).apply(None) is None

    def test_callable_mapping(self):
        f = CallableMapping(lambda x: x + 5, "x -> x+5")
        assert f.apply(10.0) == 15.0
        assert f.describe() == "x -> x+5"

    def test_linear_composition_multiplies_factors(self):
        composed = LinearMapping(0.5).compose(LinearMapping(4.0))
        assert isinstance(composed, LinearMapping)
        assert composed.k == pytest.approx(2.0)

    def test_unknown_absorbs_composition(self):
        assert isinstance(LinearMapping(2.0).compose(UnknownMapping()), UnknownMapping)
        assert isinstance(UnknownMapping().compose(LinearMapping(2.0)), UnknownMapping)

    def test_callable_composition_applies_in_order(self):
        inner = CallableMapping(lambda x: x + 1, "x -> x+1")
        outer = LinearMapping(10.0)
        assert inner.compose(outer).apply(4.0) == pytest.approx(50.0)

    def test_describe_linear(self):
        assert LinearMapping(0.4).describe() == "x -> 0.4*x"
        assert IdentityMapping().describe() == "x -> x"
        assert UnknownMapping().describe() == "x -> ?"


class TestMeasureMap:
    def test_compose_confidence_uses_truth_table(self):
        a = MeasureMap(LinearMapping(0.5), AM)
        b = MeasureMap(IdentityMapping(), EM)
        composed = a.compose(b, DEFAULT_AGGREGATOR)
        assert composed.confidence is AM
        assert composed.apply(10.0) == pytest.approx(5.0)

    def test_helpers(self):
        ids = identity_maps(["m1", "m2"])
        assert ids["m1"].confidence is EM and ids["m1"].apply(3.0) == 3.0
        lin = linear_maps({"m1": 0.6})
        assert lin["m1"].apply(10.0) == pytest.approx(6.0)
        unk = unknown_maps(["m1"])
        assert unk["m1"].confidence is UK and unk["m1"].apply(3.0) is None


class TestMappingRelationship:
    def test_self_mapping_rejected(self):
        with pytest.raises(MappingError):
            MappingRelationship("a", "a")

    def test_needs_endpoints(self):
        with pytest.raises(MappingError):
            MappingRelationship("", "b")

    def test_missing_measure_defaults_to_unknown(self):
        rel = MappingRelationship("a", "b", forward=identity_maps(["m1"]))
        mm = rel.measure_map("m2", direction="forward")
        assert mm.confidence is UK and mm.apply(1.0) is None

    def test_direction_validation(self):
        rel = MappingRelationship("a", "b")
        with pytest.raises(MappingError):
            rel.measure_map("m1", direction="sideways")

    def test_example6_split_semantics(self):
        """Example 6: Jones -> Bill maps 0.4x forward (am), identity back (em)."""
        rel = MappingRelationship(
            "jones",
            "bill",
            forward=linear_maps({"m1": 0.4}, AM),
            reverse=identity_maps(["m1"], EM),
        )
        fwd = rel.measure_map("m1", direction="forward")
        rev = rel.measure_map("m1", direction="reverse")
        assert fwd.apply(100.0) == pytest.approx(40.0) and fwd.confidence is AM
        assert rev.apply(100.0) == 100.0 and rev.confidence is EM


def catalog_for_split():
    """Jones split into Bill (0.4) and Paul (0.6), Example 6."""
    cat = MappingCatalog(measures=["m1"])
    cat.add(
        MappingRelationship(
            "jones", "bill",
            forward=linear_maps({"m1": 0.4}, AM),
            reverse=identity_maps(["m1"], EM),
        )
    )
    cat.add(
        MappingRelationship(
            "jones", "paul",
            forward=linear_maps({"m1": 0.6}, AM),
            reverse=identity_maps(["m1"], EM),
        )
    )
    return cat


class TestCatalogMaintenance:
    def test_duplicate_relationship_rejected(self):
        cat = catalog_for_split()
        with pytest.raises(MappingError):
            cat.add(MappingRelationship("jones", "bill"))

    def test_measures_discovered_from_relationships(self):
        cat = MappingCatalog()
        cat.add(MappingRelationship("a", "b", forward=identity_maps(["x"])))
        assert cat.measures == ["x"]

    def test_indexing(self):
        cat = catalog_for_split()
        assert {r.target for r in cat.relationships_from("jones")} == {"bill", "paul"}
        assert [r.source for r in cat.relationships_to("paul")] == ["jones"]
        assert len(cat) == 2


class TestRouting:
    def test_zero_hop_route_is_exclusive(self):
        """A source valid in the target set maps only to itself (sd)."""
        cat = catalog_for_split()
        routes = cat.routes("bill", {"bill", "paul"})
        assert len(routes) == 1
        route = routes[0]
        assert route.target == "bill" and route.hops == 0
        assert route.confidence("m1") is SD
        assert route.convert("m1", 150.0) == 150.0

    def test_forward_split_routes(self):
        cat = catalog_for_split()
        routes = {r.target: r for r in cat.routes("jones", {"bill", "paul"})}
        assert set(routes) == {"bill", "paul"}
        assert routes["bill"].convert("m1", 100.0) == pytest.approx(40.0)
        assert routes["paul"].convert("m1", 100.0) == pytest.approx(60.0)
        assert routes["bill"].confidence("m1") is AM

    def test_reverse_route(self):
        cat = catalog_for_split()
        routes = cat.routes("bill", {"jones"})
        assert len(routes) == 1
        assert routes[0].convert("m1", 150.0) == 150.0
        assert routes[0].confidence("m1") is EM

    def test_chained_route_composes_functions_and_confidence(self):
        cat = catalog_for_split()
        cat.add(
            MappingRelationship(
                "bill", "bill2",
                forward=linear_maps({"m1": 0.5}, AM),
                reverse=linear_maps({"m1": 2.0}, EM),
            )
        )
        routes = {r.target: r for r in cat.routes("jones", {"bill2", "paul"})}
        # jones -> bill -> bill2: 0.4 * 0.5 = 0.2, am ⊗ am = am
        assert routes["bill2"].convert("m1", 100.0) == pytest.approx(20.0)
        assert routes["bill2"].confidence("m1") is AM
        assert routes["bill2"].hops == 2

    def test_chain_with_unknown_leg_yields_uk(self):
        cat = MappingCatalog(measures=["m1"])
        cat.add(MappingRelationship("a", "b", forward=unknown_maps(["m1"])))
        cat.add(MappingRelationship("b", "c", forward=identity_maps(["m1"])))
        routes = cat.routes("a", {"c"})
        assert routes[0].confidence("m1") is UK
        assert routes[0].convert("m1", 5.0) is None

    def test_unreachable_target_absent(self):
        cat = catalog_for_split()
        assert cat.routes("brian", {"bill"}) == []

    def test_max_hops_bounds_search(self):
        cat = MappingCatalog(measures=["m1"])
        for i in range(5):
            cat.add(
                MappingRelationship(
                    f"n{i}", f"n{i+1}", forward=identity_maps(["m1"])
                )
            )
        assert cat.routes("n0", {"n5"}, max_hops=3) == []
        assert len(cat.routes("n0", {"n5"}, max_hops=5)) == 1

    def test_route_unknown_measure_is_uk(self):
        cat = catalog_for_split()
        route = cat.routes("jones", {"bill", "paul"})[0]
        assert route.confidence("zzz") is UK
        assert route.convert("zzz", 1.0) is None
