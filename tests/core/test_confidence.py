"""Unit tests for confidence factors and ⊗cf (Definition 6, Example 5)."""

import itertools

import pytest

from repro.core import (
    AM,
    CANONICAL_FACTORS,
    ConfidenceError,
    DEFAULT_AGGREGATOR,
    EM,
    QuantitativeAggregator,
    SD,
    TruthTableAggregator,
    UK,
    factor_from_code,
)
from repro.core.confidence import ConfidenceFactor, default_truth_table


class TestCanonicalFactors:
    def test_four_factors(self):
        assert [f.symbol for f in CANONICAL_FACTORS] == ["sd", "em", "am", "uk"]

    def test_prototype_codes_match_section_5_2(self):
        # §5.2: 3=source, 2=exact, 1=approximated, 4=unknown.
        assert factor_from_code(3) is SD
        assert factor_from_code(2) is EM
        assert factor_from_code(1) is AM
        assert factor_from_code(4) is UK

    def test_unknown_code_rejected(self):
        with pytest.raises(ConfidenceError):
            factor_from_code(0)

    def test_factor_needs_symbol(self):
        with pytest.raises(ConfidenceError):
            ConfidenceFactor("", 0, 0)


class TestExample5TruthTable:
    """The truth table printed in Example 5, checked cell by cell."""

    EXPECTED = {
        ("sd", "sd"): "sd", ("sd", "em"): "em", ("sd", "am"): "am", ("sd", "uk"): "uk",
        ("em", "sd"): "em", ("em", "em"): "em", ("em", "am"): "am", ("em", "uk"): "uk",
        ("am", "sd"): "am", ("am", "em"): "am", ("am", "am"): "am", ("am", "uk"): "uk",
        ("uk", "sd"): "uk", ("uk", "em"): "uk", ("uk", "am"): "uk", ("uk", "uk"): "uk",
    }

    def test_every_cell(self):
        table = default_truth_table()
        for pair, out in self.EXPECTED.items():
            assert table[pair].symbol == out, pair

    def test_aggregator_uses_table(self):
        assert DEFAULT_AGGREGATOR.combine(SD, AM) is AM
        assert DEFAULT_AGGREGATOR.combine(EM, EM) is EM
        assert DEFAULT_AGGREGATOR.combine(AM, UK) is UK


class TestAlgebraicLaws:
    """⊗cf from Example 5 is a commutative monoid with identity sd and
    absorbing element uk — properties the aggregation layer relies on."""

    def test_commutative(self):
        for a, b in itertools.product(CANONICAL_FACTORS, repeat=2):
            assert DEFAULT_AGGREGATOR.combine(a, b) is DEFAULT_AGGREGATOR.combine(b, a)

    def test_associative(self):
        for a, b, c in itertools.product(CANONICAL_FACTORS, repeat=3):
            left = DEFAULT_AGGREGATOR.combine(DEFAULT_AGGREGATOR.combine(a, b), c)
            right = DEFAULT_AGGREGATOR.combine(a, DEFAULT_AGGREGATOR.combine(b, c))
            assert left is right

    def test_sd_is_identity(self):
        for a in CANONICAL_FACTORS:
            assert DEFAULT_AGGREGATOR.combine(SD, a) is a

    def test_uk_absorbs(self):
        for a in CANONICAL_FACTORS:
            assert DEFAULT_AGGREGATOR.combine(UK, a) is UK

    def test_idempotent(self):
        for a in CANONICAL_FACTORS:
            assert DEFAULT_AGGREGATOR.combine(a, a) is a


class TestCombineAll:
    def test_fold_sequence(self):
        assert DEFAULT_AGGREGATOR.combine_all([SD, EM, AM]) is AM

    def test_single_element(self):
        assert DEFAULT_AGGREGATOR.combine_all([EM]) is EM

    def test_empty_sequence_rejected(self):
        with pytest.raises(ConfidenceError):
            DEFAULT_AGGREGATOR.combine_all([])

    def test_uk_poisons_long_fold(self):
        assert DEFAULT_AGGREGATOR.combine_all([SD, SD, UK, EM]) is UK


class TestCustomTruthTable:
    def test_missing_pair_raises(self):
        agg = TruthTableAggregator({("sd", "sd"): SD})
        with pytest.raises(ConfidenceError):
            agg.combine(SD, EM)

    def test_factor_lookup(self):
        agg = TruthTableAggregator()
        assert agg.factor("am") is AM
        with pytest.raises(ConfidenceError):
            agg.factor("nope")


class TestQuantitativeAggregator:
    def test_min_combination_picks_less_reliable(self):
        agg = QuantitativeAggregator(max)  # rank: higher = less reliable
        assert agg.combine(SD, AM) is AM

    def test_combine_values(self):
        agg = QuantitativeAggregator(min)
        assert agg.combine_values(0.9, 0.4) == 0.4
