"""Tests for the §4 logical-level adaptation."""

import pytest

from repro.core import (
    EvolutionManager,
    Interval,
    Measure,
    MemberVersion,
    ModelError,
    NOW,
    OperatorError,
    SchemaEditor,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
    ym,
)
from repro.logical import (
    build_tmp_dimension,
    cf_column,
    decode_confidence,
    encode_confidence,
    logical_reclassify,
    lower_parent_child,
    lower_snowflake,
    lower_star,
)
from repro.logical.parent_child import parent_child_table_name
from repro.logical.snowflake import snowflake_edge_table, snowflake_level_table
from repro.logical.star import level_column, star_table_name
from repro.core.confidence import AM, EM, SD, UK
from repro.storage import Database
from repro.workloads.case_study import ORG, build_case_study


class TestTmpDimension:
    def test_one_row_per_mode(self, case_study):
        db = Database()
        modes = case_study.schema.presentation_modes()
        table = build_tmp_dimension(db, modes)
        assert len(table) == 4
        assert table.get(("tcm",)) is not None

    def test_tcm_row_has_no_bounds(self, case_study):
        db = Database()
        table = build_tmp_dimension(db, case_study.schema.presentation_modes())
        row = table.get(("tcm",))
        assert row["valid_from"] is None and row["valid_to"] is None

    def test_version_rows_carry_span_labels(self, case_study):
        db = Database()
        table = build_tmp_dimension(db, case_study.schema.presentation_modes())
        v1 = table.get(("V1",))
        assert v1["valid_from"] == ym(2001, 1)
        assert v1["valid_from_label"] == "01/2001"
        assert v1["valid_to_label"] == "12/2001"
        v3 = table.get(("V3",))
        assert v3["valid_to"] is None  # open-ended live version
        assert v3["valid_to_label"] == "Now"


class TestCfMeasures:
    def test_column_naming(self):
        assert cf_column("amount") == "cf_amount"

    def test_roundtrip_codes(self):
        for factor in (SD, EM, AM, UK):
            assert decode_confidence(encode_confidence(factor)) is factor


class TestStarLowering:
    def test_rows_per_version_leaf(self, case_study):
        db = Database()
        versions = case_study.schema.structure_versions()
        table = lower_star(db, case_study.schema, versions, ORG)
        assert table.name == star_table_name(ORG)
        # V1: 3 leaves, V2: 3, V3: 4.
        assert len(table) == 10

    def test_level_columns_denormalized(self, case_study):
        db = Database()
        versions = case_study.schema.structure_versions()
        table = lower_star(db, case_study.schema, versions, ORG)
        row_v1 = table.get(("V1", "smith"))
        row_v2 = table.get(("V2", "smith"))
        assert row_v1[level_column("Division")] == "Sales"
        assert row_v2[level_column("Division")] == "R&D"
        assert row_v1[level_column("Department")] == "Dpt.Smith"

    def test_version_bounds_recorded(self, case_study):
        db = Database()
        versions = case_study.schema.structure_versions()
        table = lower_star(db, case_study.schema, versions, ORG)
        row = table.get(("V3", "bill"))
        assert row["valid_from"] == ym(2003, 1)
        assert row["valid_to"] is None

    def test_multi_parent_ancestors_joined(self):
        d = TemporalDimension("org")
        d.add_member(MemberVersion("p1", "P1", Interval(0), level="Top"))
        d.add_member(MemberVersion("p2", "P2", Interval(0), level="Top"))
        d.add_member(MemberVersion("c", "C", Interval(0), level="Bottom"))
        d.add_relationship(TemporalRelationship("c", "p1", Interval(0)))
        d.add_relationship(TemporalRelationship("c", "p2", Interval(0)))
        schema = TemporalMultidimensionalSchema([d], [Measure("m", SUM)])
        db = Database()
        table = lower_star(db, schema, schema.structure_versions(), "org")
        row = table.get(("V1", "c"))
        assert row[level_column("Top")] == "P1 | P2"


class TestSnowflakeLowering:
    def test_level_tables_and_edges(self, case_study):
        db = Database()
        versions = case_study.schema.structure_versions()
        tables = lower_snowflake(db, case_study.schema, versions, ORG)
        assert snowflake_level_table(ORG, "Division") in tables
        assert snowflake_level_table(ORG, "Department") in tables
        edges = tables[snowflake_edge_table(ORG)]
        assert {"vsid": "V1", "child": "smith", "parent": "sales"} in list(edges.rows())
        assert {"vsid": "V2", "child": "smith", "parent": "rd"} in list(edges.rows())

    def test_multi_hierarchy_supported(self):
        d = TemporalDimension("org")
        d.add_member(MemberVersion("p1", "P1", Interval(0), level="Top"))
        d.add_member(MemberVersion("p2", "P2", Interval(0), level="Top"))
        d.add_member(MemberVersion("c", "C", Interval(0), level="Bottom"))
        d.add_relationship(TemporalRelationship("c", "p1", Interval(0)))
        d.add_relationship(TemporalRelationship("c", "p2", Interval(0)))
        schema = TemporalMultidimensionalSchema([d], [Measure("m", SUM)])
        db = Database()
        tables = lower_snowflake(db, schema, schema.structure_versions(), "org")
        edges = list(tables[snowflake_edge_table("org")].rows())
        assert len(edges) == 2  # both rollups kept


class TestParentChildLowering:
    def test_rows_with_parent_links(self, case_study):
        db = Database()
        versions = case_study.schema.structure_versions()
        table = lower_parent_child(db, case_study.schema, versions, ORG)
        assert table.name == parent_child_table_name(ORG)
        assert table.get(("V1", "smith"))["parent"] == "sales"
        assert table.get(("V2", "smith"))["parent"] == "rd"
        assert table.get(("V1", "sales"))["parent"] is None

    def test_multi_hierarchy_rejected_per_5_1(self):
        d = TemporalDimension("org")
        d.add_member(MemberVersion("p1", "P1", Interval(0), level="Top"))
        d.add_member(MemberVersion("p2", "P2", Interval(0), level="Top"))
        d.add_member(MemberVersion("c", "C", Interval(0), level="Bottom"))
        d.add_relationship(TemporalRelationship("c", "p1", Interval(0)))
        d.add_relationship(TemporalRelationship("c", "p2", Interval(0)))
        schema = TemporalMultidimensionalSchema([d], [Measure("m", SUM)])
        db = Database()
        with pytest.raises(ModelError):
            lower_parent_child(db, schema, schema.structure_versions(), "org")
        assert parent_child_table_name("org") not in db  # cleaned up


def reclassify_fixture():
    """div1/div2 over {mid > leaf}: reclassify mid from div1 to div2."""
    d = TemporalDimension("org")
    d.add_member(MemberVersion("div1", "Div-1", Interval(0), level="Division"))
    d.add_member(MemberVersion("div2", "Div-2", Interval(0), level="Division"))
    d.add_member(MemberVersion("mid", "Mid", Interval(0), level="Group"))
    d.add_member(MemberVersion("leaf", "Leaf", Interval(0), level="Department"))
    d.add_relationship(TemporalRelationship("mid", "div1", Interval(0)))
    d.add_relationship(TemporalRelationship("leaf", "mid", Interval(0)))
    schema = TemporalMultidimensionalSchema([d], [Measure("amount", SUM)])
    return schema, SchemaEditor(schema)


class TestLogicalReclassify:
    def test_creates_new_versions_for_member_and_descendants(self):
        schema, editor = reclassify_fixture()
        created = logical_reclassify(
            editor, "org", "mid", 10, old_parents=["div1"], new_parents=["div2"]
        )
        assert created == [("mid", "mid@10"), ("leaf", "leaf@10")]
        dim = schema.dimension("org")
        assert dim.member("mid").valid_time == Interval(0, 9)
        assert dim.at(10).parents("mid@10") == ["div2"]
        assert dim.at(10).parents("leaf@10") == ["mid@10"]

    def test_identity_sd_mappings_created(self):
        schema, editor = reclassify_fixture()
        logical_reclassify(
            editor, "org", "mid", 10, old_parents=["div1"], new_parents=["div2"]
        )
        rels = {(r.source, r.target): r for r in schema.mappings}
        leaf_rel = rels[("leaf", "leaf@10")]
        mm = leaf_rel.measure_map("amount", direction="forward")
        assert mm.apply(7.0) == 7.0
        assert mm.confidence is SD

    def test_recursion_produces_expected_operator_count(self):
        """2 member versions re-created -> 2 × (Insert+Exclude+Associate)."""
        schema, editor = reclassify_fixture()
        logical_reclassify(
            editor, "org", "mid", 10, old_parents=["div1"], new_parents=["div2"]
        )
        ops = [r.operator for r in editor.journal]
        assert ops.count("Insert") == 2
        assert ops.count("Exclude") == 2
        assert ops.count("Associate") == 2

    def test_invalid_member_rejected(self):
        _, editor = reclassify_fixture()
        with pytest.raises(OperatorError):
            logical_reclassify(editor, "org", "ghost", 10, new_parents=["div2"])

    def test_wrong_old_parent_rejected(self):
        _, editor = reclassify_fixture()
        with pytest.raises(OperatorError):
            logical_reclassify(
                editor, "org", "mid", 10, old_parents=["div2"], new_parents=["div1"]
            )

    def test_custom_rename(self):
        schema, editor = reclassify_fixture()
        created = logical_reclassify(
            editor,
            "org",
            "mid",
            10,
            old_parents=["div1"],
            new_parents=["div2"],
            rename=lambda mvid, ti: f"{mvid}_v2",
        )
        assert created[0] == ("mid", "mid_v2")


class TestLogicalVsConceptualEquivalence:
    def test_query_results_agree_across_the_rewrite(self):
        """The §4.2 rewrite must present the same numbers as the conceptual
        Reclassify — only the member-version bookkeeping differs."""
        from repro.core import Query, QueryEngine, TimeGroup, LevelGroup, YEAR

        def build(use_logical: bool):
            d = TemporalDimension("org")
            d.add_member(
                MemberVersion("sales", "Sales", Interval(ym(2001, 1)), level="Division")
            )
            d.add_member(
                MemberVersion("rd", "R&D", Interval(ym(2001, 1)), level="Division")
            )
            d.add_member(
                MemberVersion(
                    "smith", "Dpt.Smith", Interval(ym(2001, 1)), level="Department"
                )
            )
            d.add_relationship(
                TemporalRelationship("smith", "sales", Interval(ym(2001, 1)))
            )
            schema = TemporalMultidimensionalSchema([d], [Measure("amount", SUM)])
            editor = SchemaEditor(schema)
            if use_logical:
                logical_reclassify(
                    editor, "org", "smith", ym(2002, 1),
                    old_parents=["sales"], new_parents=["rd"],
                )
                new_leaf = "smith@" + str(ym(2002, 1))
            else:
                manager = EvolutionManager(schema)
                manager.reclassify_member(
                    "org", "smith", ym(2002, 1),
                    old_parents=["sales"], new_parents=["rd"],
                )
                new_leaf = "smith"
            schema.add_fact({"org": "smith"}, ym(2001, 6), amount=50.0)
            schema.add_fact({"org": new_leaf}, ym(2002, 6), amount=100.0)
            return schema

        q = Query(group_by=(TimeGroup(YEAR), LevelGroup("org", "Division")))
        results = {}
        for use_logical in (False, True):
            schema = build(use_logical)
            engine = QueryEngine(schema.multiversion_facts())
            results[use_logical] = {
                label: engine.execute(q.with_mode(label)).as_dict()
                for label in ("tcm", "V1", "V2")
            }
        assert results[False] == results[True]
