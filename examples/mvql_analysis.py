"""Analyst session in MVQL, the multiversion query language.

Replays the §2.1 analysis conversationally: discover the modes, run Q1
and Q2 under different interpretations, and let the quality factor pick
the best presentation — all through textual statements, the way the
paper's front-end tier exposes the model to end users.

Run with::

    python examples/mvql_analysis.py
"""

from repro.mvql import MVQLSession
from repro.workloads.case_study import build_case_study

SCRIPT = [
    "SHOW MODES",
    "SHOW VERSIONS",
    "SHOW LEVELS org",
    "SELECT amount BY year, org.Division DURING 2001..2002",
    "SELECT amount BY year, org.Division DURING 2001..2002 IN MODE V1",
    "SELECT amount BY year, org.Division DURING 2001..2002 IN MODE V2",
    "SELECT amount BY year, org.Department DURING 2002..2003 IN MODE V3",
    "RANK MODES FOR SELECT amount BY year, org.Department DURING 2002..2003",
    "SELECT amount BY quarter, org.Division DURING 2002",
]


def main() -> None:
    study = build_case_study()
    session = MVQLSession(study.schema.multiversion_facts())
    for statement in SCRIPT:
        print(f"mvql> {statement}")
        print(session.execute_to_text(statement))
        print()


if __name__ == "__main__":
    main()
