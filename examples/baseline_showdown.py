"""The baseline showdown: why the multiversion model exists.

Replays the §2.1 case-study evolution stream through every model the
paper positions itself against — Kimball's three Slowly Changing
Dimension types, a destructive *updating* model, an Eder–Koncilia
transformation-matrix model and a Mendelzon–Vaisman-style temporal model
— then through this library's multiversion model, and prints what each
can and cannot answer.

Run with::

    python examples/baseline_showdown.py
"""

from repro.baselines import (
    EKModel,
    MVTemporalModel,
    SCDType1,
    SCDType2,
    SCDType3,
    UpdatingModel,
)
from repro.core import Interval, LevelGroup, Query, QueryEngine, TimeGroup, YEAR, ym
from repro.workloads.case_study import ORG, build_case_study

YEARS_FACTS = [
    ("jones", 2001, 100.0), ("smith", 2001, 50.0), ("brian", 2001, 100.0),
    ("jones", 2002, 100.0), ("smith", 2002, 100.0), ("brian", 2002, 50.0),
    ("bill", 2003, 150.0), ("paul", 2003, 50.0),
    ("smith", 2003, 110.0), ("brian", 2003, 40.0),
]


def question() -> str:
    return (
        "THE QUESTION: did the Sales division's 2001 amounts rise or fall "
        "by 2002?\n(Ground truth depends on the interpretation — that is "
        "the paper's point.)"
    )


def show_scd() -> None:
    print("\n--- Kimball SCD types ---")
    scd1, scd2, scd3 = SCDType1(), SCDType2(), SCDType3()
    for model in (scd1, scd2, scd3):
        for member, group in (
            ("jones", "Sales"), ("smith", "Sales"), ("brian", "R&D"),
            ("bill", None), ("paul", None),
        ):
            if group:
                model.assign(member, group, 2001)
        model.assign("smith", "R&D", 2002)
        model.assign("bill", "Sales", 2003)
        model.assign("paul", "Sales", 2003)
        for member, year, amount in YEARS_FACTS:
            model.record_fact(member, year, amount)

    t1 = scd1.totals_by_group(lambda t: t)
    print(f"Type 1 (overwrite):   2001 Sales = {t1.get((2001, 'Sales'))}, "
          f"2002 Sales = {t1.get((2002, 'Sales'))}")
    print("    -> history corrupted: Smith's 2001 amount moved to R&D; "
          f"retention = {scd1.history_retention():.0%}")
    t2 = scd2.totals_by_group(lambda t: t)
    print(f"Type 2 (versions):    2001 Sales = {t2.get((2001, 'Sales'))}, "
          f"2002 Sales = {t2.get((2002, 'Sales'))}")
    print("    -> true history, but versions are unlinked: "
          f"comparability = {scd2.cross_version_comparability():.0%}")
    t3_now = scd3.totals_by_group(lambda t: t)
    t3_prev = scd3.totals_by_group(lambda t: t, use_previous=True)
    print(f"Type 3 (in-row):      current view 2001 Sales = "
          f"{t3_now.get((2001, 'Sales'))}, previous view = "
          f"{t3_prev.get((2001, 'Sales'))}")
    print("    -> exactly two views, one change deep")


def show_updating() -> None:
    print("\n--- Updating model (map to latest, destructively) ---")
    m = UpdatingModel()
    for member, group in (("jones", "Sales"), ("smith", "Sales"), ("brian", "R&D")):
        m.add_member(member, group)
    for member, year, amount in YEARS_FACTS[:6]:
        m.record_fact(member, year, amount)
    m.reclassify("smith", "R&D")
    m.split_member("jones", {"bill": 0.4, "paul": 0.6}, "Sales")
    for member, year, amount in YEARS_FACTS[6:]:
        m.record_fact(member, year, amount)
    totals = m.totals_by_group(lambda t: t)
    print(f"only view: 2001 Sales = {totals.get((2001, 'Sales')):.0f}, "
          f"2002 Sales = {totals.get((2002, 'Sales')):.0f}")
    print(f"    -> {m.facts_corrupted} facts silently replaced by estimates; "
          f"{m.available_presentations()} presentation")


def show_ek_and_mv() -> None:
    print("\n--- Eder-Koncilia matrices / Mendelzon-Vaisman timestamps ---")
    ek = EKModel()
    ek.add_version("S1", ["jones", "smith", "brian"])
    ek.add_version(
        "S2", ["bill", "paul", "smith", "brian"],
        transformation={"jones": {"bill": 0.4, "paul": 0.6}},
    )
    mapped = ek.map_vector({"jones": 100.0}, "S1", "S2")
    print(f"EK forward map of Jones's 100: {mapped['bill']:.0f}/"
          f"{mapped['paul']:.0f} — linear conversions, no consistent mode, "
          "no confidence tags")
    tolap = MVTemporalModel()
    print(f"MV/TOLAP: {tolap.available_presentations()} presentations "
          "(consistent + latest), past versions unreachable")


def show_ours() -> None:
    print("\n--- MultiVersion model (this library) ---")
    study = build_case_study()
    engine = QueryEngine(study.schema.multiversion_facts())
    q1 = Query(
        group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")),
        time_range=Interval(ym(2001, 1), ym(2002, 12)),
    )
    for mode, verdict in (("tcm", "fell"), ("V1", "rose"), ("V2", "held flat")):
        d = engine.execute(q1.with_mode(mode)).as_dict()
        before = d[("2001", "Sales")]["amount"]
        after = d[("2002", "Sales")]["amount"]
        print(f"mode {mode:<4}: 2001 Sales = {before:.0f}, "
              f"2002 Sales = {after:.0f}  -> Sales {verdict}")
    print("    -> every interpretation available, every cell tagged "
          "sd/em/am/uk, nothing lost")


def main() -> None:
    print(question())
    show_scd()
    show_updating()
    show_ek_and_mv()
    show_ours()


if __name__ == "__main__":
    main()
