"""A two-dimensional retail scenario: products × stores, both evolving.

The paper's intro motivates retail ("typical facts are price and amount
of a purchase, dimensions being product, location, time…").  This example
builds a schema with TWO temporal dimensions:

* ``product`` — category > product; the "GameStation" and "GameStation
  Pro" products are merged into one "GameStation Family" line in 2022,
  and the "Snacks" category is renamed (transformed) to "Convenience";
* ``store`` — region > store; store "Downtown-2" is reclassified from the
  North to the East region in 2022.

It then shows what multiversion OLAP buys the analyst: revenue by
category and by region under the consistent mode and mapped into each
structure version, with confidence tags, plus OLAP navigation (roll-up,
slice, mode switch) on the cube.

Run with::

    python examples/retail_catalog.py
"""

from repro.core import (
    EvolutionManager,
    Interval,
    LevelGroup,
    Measure,
    MemberVersion,
    NOW,
    Query,
    QueryEngine,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
    TimeGroup,
    YEAR,
    ym,
)
from repro.olap import Cube, LevelAxis, TimeAxis, render_view, roll_up, switch_mode


def build_schema() -> tuple[TemporalMultidimensionalSchema, EvolutionManager]:
    start = ym(2021, 1)

    product = TemporalDimension("product", "Product")
    for mvid, name in (("electronics", "Electronics"), ("snacks", "Snacks")):
        product.add_member(
            MemberVersion(mvid, name, Interval(start, NOW), level="Category")
        )
    for mvid, name, category in (
        ("gs", "GameStation", "electronics"),
        ("gspro", "GameStation Pro", "electronics"),
        ("chips", "Chips", "snacks"),
        ("soda", "Soda", "snacks"),
    ):
        product.add_member(
            MemberVersion(mvid, name, Interval(start, NOW), level="Product")
        )
        product.add_relationship(
            TemporalRelationship(mvid, category, Interval(start, NOW))
        )

    store = TemporalDimension("store", "Store")
    for mvid, name in (("north", "North"), ("east", "East")):
        store.add_member(
            MemberVersion(mvid, name, Interval(start, NOW), level="Region")
        )
    for mvid, name, region in (
        ("dt1", "Downtown-1", "north"),
        ("dt2", "Downtown-2", "north"),
        ("mall", "Mall", "east"),
    ):
        store.add_member(
            MemberVersion(mvid, name, Interval(start, NOW), level="Store")
        )
        store.add_relationship(
            TemporalRelationship(mvid, region, Interval(start, NOW))
        )

    schema = TemporalMultidimensionalSchema(
        [product, store], [Measure("revenue", SUM)]
    )
    manager = EvolutionManager(schema)

    # 2022 evolutions -------------------------------------------------------
    # The two GameStation products are merged into one product line; half
    # of the merged line's future revenue is attributed back to each.
    manager.merge_members(
        "product",
        ["gs", "gspro"],
        "gsfam",
        "GameStation Family",
        ym(2022, 1),
        reverse_shares={"gs": 0.5, "gspro": 0.5},
    )
    # Downtown-2 is reclassified to the East region (pure hierarchy move).
    manager.reclassify_member(
        "store", "dt2", ym(2022, 1), old_parents=["north"], new_parents=["east"]
    )

    # Facts ------------------------------------------------------------------
    t21, t22 = ym(2021, 6), ym(2022, 6)
    facts_2021 = [
        ("gs", "dt1", 500.0), ("gs", "dt2", 300.0), ("gspro", "mall", 700.0),
        ("chips", "dt1", 120.0), ("soda", "dt2", 80.0), ("soda", "mall", 60.0),
    ]
    facts_2022 = [
        ("gsfam", "dt1", 900.0), ("gsfam", "dt2", 400.0), ("gsfam", "mall", 650.0),
        ("chips", "dt1", 150.0), ("soda", "dt2", 90.0), ("soda", "mall", 70.0),
    ]
    for product_id, store_id, revenue in facts_2021:
        schema.add_fact({"product": product_id, "store": store_id}, t21, revenue=revenue)
    for product_id, store_id, revenue in facts_2022:
        schema.add_fact({"product": product_id, "store": store_id}, t22, revenue=revenue)
    schema.validate()
    return schema, manager


def main() -> None:
    schema, _manager = build_schema()
    mvft = schema.multiversion_facts()
    engine = QueryEngine(mvft)

    print("Structure versions:")
    for v in schema.structure_versions():
        print(f"  {v.vsid}: products={sorted(v.leaf_ids('product'))}")

    by_region = Query(group_by=(TimeGroup(YEAR), LevelGroup("store", "Region")))
    print("\nRevenue by region — every interpretation:")
    for label, table in engine.execute_all_modes(by_region).items():
        print(f"\n--- mode {label}")
        print(table.to_text())
    print(
        "\nNote how Downtown-2's 2021 revenue sits in North in consistent "
        "time\nbut in East when mapped onto the 2022 organization."
    )

    by_product = Query(
        group_by=(TimeGroup(YEAR), LevelGroup("product", "Product")),
    )
    print("\nRevenue per product, mapped onto the *old* catalog (V1):")
    print(engine.execute(by_product.with_mode("V1")).to_text())
    print(
        "2022's GameStation Family revenue is split 50/50 back onto the\n"
        "two old products — tagged am because the shares are estimates."
    )

    # OLAP navigation on the cube ------------------------------------------------
    cube = Cube(mvft)
    view = cube.pivot(
        "V2", TimeAxis(), LevelAxis("product", "Product"), "revenue"
    )
    print("\nCube view (mode V2, product grain):")
    print(render_view(view))
    rolled = roll_up(cube, view, on="cols")
    print("\nRolled up to categories:")
    print(render_view(rolled))
    consistent = switch_mode(cube, rolled, "tcm")
    print("\nSame view, switched to the temporally consistent mode:")
    print(render_view(consistent))


if __name__ == "__main__":
    main()
