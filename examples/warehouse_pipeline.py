"""The Figure-1 architecture on the relational engine, with persistence.

Runs every tier the paper's prototype had:

1. **ETL** — extracts messy operational records, cleans them, loads the
   temporally consistent fact table (rejecting inconsistent rows);
2. **Temporal Data Warehouse** — consistent data + metadata (member
   versions, temporal relationships, mapping relations, the evolution
   journal) as relational tables;
3. **MultiVersion Data Warehouse** — TMP dimension, star dimension
   tables, and the MultiVersion fact table with confidence-code measures;
4. **OLAP queries** answered purely relationally (join + group-by on the
   star schema), cross-checked against the conceptual engine;
5. **Persistence** — the warehouse dumped to CSV and reloaded.

Run with::

    python examples/warehouse_pipeline.py
"""

import tempfile
from pathlib import Path

from repro.core import LevelGroup, Query, QueryEngine, TimeGroup, YEAR, ym
from repro.storage import dump_database, load_database
from repro.warehouse import (
    CleaningRule,
    ETLPipeline,
    FactMapping,
    MultiVersionDataWarehouse,
    OperationalSource,
    TemporalDataWarehouse,
    describe_evolutions,
    member_history,
)
from repro.workloads.case_study import ORG, build_case_study


def build_loaded_schema():
    """The case-study structure, facts loaded through the ETL tier."""
    reference = build_case_study()  # fully loaded, for cross-checking
    records = [
        {"source_row": i, "dept": row.coordinate(ORG), "month": row.t,
         "amount": row.value("amount")}
        for i, row in enumerate(reference.schema.facts)
    ]
    # Dirty rows the ETL must reject:
    records.append({"source_row": 98, "dept": "jones", "month": ym(2003, 6), "amount": 10.0})
    records.append({"source_row": 99, "dept": "nobody", "month": ym(2001, 6), "amount": 10.0})

    study = build_case_study(with_facts=False)  # structure only
    pipeline = ETLPipeline(
        study.schema,
        rules=[
            CleaningRule(
                "positive-amounts",
                lambda r: r if (r.get("amount") or 0) > 0 else None,
            )
        ],
        mapping=FactMapping(
            lambda r: ({ORG: r["dept"]}, r["month"], {"amount": r["amount"]})
        ),
    )
    report = pipeline.run([OperationalSource("legacy-finance", records)])
    return study, report, reference.schema


def main() -> None:
    study, report, reference = build_loaded_schema()
    schema = study.schema
    print("ETL tier:")
    print(f"  {report}")
    for record, reason in report.rejected:
        print(f"  rejected row {record['source_row']}: {reason.splitlines()[0]}")
    assert len(schema.facts) == len(reference.facts)

    tdw = TemporalDataWarehouse.from_schema(schema, study.manager.journal)
    print("\nTemporal Data Warehouse tier:")
    for table, count in tdw.db.row_counts().items():
        print(f"  {table:<24} {count} rows")
    print("  evolution journal:")
    for row in tdw.journal_rows():
        print(f"    {row['seq']}: {row['rendering']}")

    mvft = schema.multiversion_facts()
    mvdw = MultiVersionDataWarehouse.build(mvft)
    print("\nMultiVersion Data Warehouse tier:")
    for table, count in mvdw.db.row_counts().items():
        print(f"  {table:<24} {count} rows")

    print("\nRelational Q1 (join star dim + MV fact, group by division):")
    rows = mvdw.query_level_totals("V1", ORG, "Division", "amount")
    for row in rows:
        print(f"  {row}")

    # Cross-check the relational answer against the conceptual engine.
    engine = QueryEngine(mvft)
    conceptual = engine.execute(
        Query(mode="V1", group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")))
    ).as_dict()
    for row in rows:
        assert conceptual[(str(row["year"]), row["label"])]["amount"] == row["total"]
    print("  (matches the conceptual query engine cell for cell)")

    print("\nUser-facing metadata (§5.2):")
    for entry in member_history(schema, ORG, "Dpt.Smith"):
        print(f"  Dpt.Smith {entry['valid_from']}..{entry['valid_to']}: "
              f"{entry['parents']}")
    for sentence in describe_evolutions(schema, study.manager.journal, "jones"):
        print(f"  Dpt.Jones: {sentence}")

    with tempfile.TemporaryDirectory() as tmp:
        target_dir = Path(tmp) / "warehouse"
        dump_database(mvdw.db, target_dir)
        reloaded = load_database(target_dir)
        assert reloaded.row_counts() == mvdw.db.row_counts()
        files = sorted(p.name for p in target_dir.iterdir())
        print(f"\nPersisted and reloaded the warehouse ({len(files)} files):")
        print(f"  {', '.join(files)}")


if __name__ == "__main__":
    main()
