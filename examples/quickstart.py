"""Quickstart: the paper's case study, end to end.

Builds the §2.1 institution schema (Smith reclassified in 2002, Jones
split 40/60 in 2003), infers structure versions and the MultiVersion fact
table, then answers the motivating queries Q1 and Q2 under *every*
temporal mode of presentation — reproducing Tables 4-6 and 8-10 — and
ranks the modes by the §5.2 quality factor.

Run with::

    python examples/quickstart.py
"""

from repro.core import (
    Interval,
    LevelGroup,
    Query,
    QueryEngine,
    TimeGroup,
    YEAR,
    rank_modes,
    ym,
)
from repro.olap import render_dimension_graph
from repro.workloads.case_study import ORG, build_case_study


def main() -> None:
    study = build_case_study()

    print("=" * 64)
    print("The Organization dimension (Figure 2)")
    print("=" * 64)
    print(render_dimension_graph(study.org))

    print()
    print("=" * 64)
    print("Structure versions (Definition 9)")
    print("=" * 64)
    for version in study.schema.structure_versions():
        print(f"  {version.vsid}: {version.valid_time!r}")

    mvft = study.schema.multiversion_facts()
    engine = QueryEngine(mvft)

    q1 = Query(
        group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")),
        time_range=Interval(ym(2001, 1), ym(2002, 12)),
    )
    print()
    print("=" * 64)
    print("Q1 — total amount by year and division (Tables 4, 5, 6)")
    print("=" * 64)
    for label, table in engine.execute_all_modes(q1).items():
        print(f"\n--- mode {label}: {mvft.modes.mode(label).describe()}")
        print(table.to_text())

    q2 = Query(
        group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Department")),
        time_range=Interval(ym(2002, 1), ym(2003, 12)),
    )
    print()
    print("=" * 64)
    print("Q2 — total amounts per department, 2002-2003 (Tables 8, 9, 10)")
    print("=" * 64)
    for label, table in engine.execute_all_modes(q2).items():
        print(f"\n--- mode {label}")
        print(table.to_text())

    print()
    print("=" * 64)
    print("Quality factor per mode (§5.2) — which presentation to trust?")
    print("=" * 64)
    for label, quality, _table in rank_modes(engine, q2):
        print(f"  {label:<4} Q = {quality:.3f}")


if __name__ == "__main__":
    main()
