"""Continuous loading with incremental maintenance and an audit gate.

Real warehouses refresh nightly: facts arrive continuously, structure
changes arrive occasionally.  This example runs such a lifecycle on the
case-study organization:

1. the administrator audits the schema before opening it to analysts
   (:func:`repro.core.audit_schema`);
2. nightly fact batches are folded into the MultiVersion fact table
   *incrementally* (:class:`repro.warehouse.IncrementalMultiVersion`) —
   no full rebuild per batch;
3. a mid-life structural change (a department split) invalidates the
   table, and the audit explains what the change implies;
4. a *sloppy* change (a deletion with no mapping) is caught by the audit
   gate before analysts see stranded facts.

Run with::

    python examples/continuous_load.py
"""

from repro.core import EvolutionManager, Query, QueryEngine, TimeGroup, YEAR, audit_schema, ym
from repro.core.query import LevelGroup
from repro.warehouse import IncrementalMultiVersion
from repro.workloads.case_study import ORG, build_case_study, fact_instant


def main() -> None:
    study = build_case_study(with_facts=False)
    schema = study.schema

    print("== audit before going live ==")
    print(audit_schema(schema).to_text())

    warehouse = IncrementalMultiVersion(schema)
    nightly_batches = {
        2001: [("jones", 100.0), ("smith", 50.0), ("brian", 100.0)],
        2002: [("jones", 100.0), ("smith", 100.0), ("brian", 50.0)],
        2003: [("bill", 150.0), ("paul", 50.0), ("smith", 110.0), ("brian", 40.0)],
    }
    for year, batch in nightly_batches.items():
        for dept, amount in batch:
            warehouse.append_fact({ORG: dept}, fact_instant(year), amount=amount)
        cells = {
            label: len(warehouse.mvft.slice(label))
            for label in warehouse.mvft.modes.labels
        }
        print(f"\nafter the {year} batch: cells per mode = {cells}")

    engine = QueryEngine(warehouse.mvft)
    q = Query(group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")), mode="V1")
    print("\nQ1 on the incrementally-maintained table (mode V1):")
    print(engine.execute(q).to_text())

    print("\n== a structural change arrives: Smith's department splits ==")
    manager = EvolutionManager(schema)
    manager.split_member(
        ORG,
        "smith",
        {"smith_a": ("Dpt.Smith-A", 0.5), "smith_b": ("Dpt.Smith-B", 0.5)},
        ym(2004, 1),
    )
    warehouse.invalidate()  # structure changed: rebuild on next access
    print("audit after the split:")
    print(audit_schema(schema).to_text())
    warehouse.append_fact({ORG: "smith_a"}, fact_instant(2004), amount=70.0)
    print(f"modes now: {warehouse.mvft.modes.labels}")

    print("\n== a sloppy change: deleting Brian with no mapping ==")
    manager.delete_member(ORG, "brian", ym(2005, 1))
    warehouse.invalidate()
    report = audit_schema(schema)
    print(report.to_text())
    if not report.ok:
        print(
            "\nThe audit gate rejects the change: "
            f"{len(report.by_severity('error'))} error(s) must be fixed "
            "(associate Brian's successor, or accept the stranded facts)."
        )


if __name__ == "__main__":
    main()
