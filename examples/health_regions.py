"""Public-health surveillance over evolving administrative regions.

Epidemiologists track case counts per health district, but districts are
political artifacts: they merge, split and get re-assigned between
authorities.  Comparing incidence across a reform is exactly the problem
the paper solves.

Scenario (monthly time grain):

* 2019: authority "Coastal" supervises districts A and B; authority
  "Inland" supervises C.
* 01/2020 reform: districts A and B **merge** into "AB" (their historical
  counts report exactly into AB; AB's future counts are attributed back
  60/40, population-weighted — an approximation).
* 01/2021: district C is **split** into C-North (30 %) and C-South (70 %),
  and C-South's supervision is moved to Coastal.

The script answers "monthly cases per authority" in every presentation
mode, uses the §5.2 quality factor with *user-specific weights* to pick
the best mode for two different users (a historian who only trusts
source data, and a planner happy with exact mappings), and shows the
delta warehouse storing only the mapped differences.

Run with::

    python examples/health_regions.py
"""

from repro.core import (
    EvolutionManager,
    Interval,
    LevelGroup,
    Measure,
    MemberVersion,
    NOW,
    Query,
    QueryEngine,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
    TimeGroup,
    YEAR,
    rank_modes,
    ym,
)
from repro.warehouse import DeltaMultiVersionStore


def build_schema() -> TemporalMultidimensionalSchema:
    start = ym(2019, 1)
    geo = TemporalDimension("district", "Health districts")
    for mvid, name in (("coastal", "Coastal"), ("inland", "Inland")):
        geo.add_member(
            MemberVersion(mvid, name, Interval(start, NOW), level="Authority")
        )
    for mvid, name, parent in (
        ("a", "District-A", "coastal"),
        ("b", "District-B", "coastal"),
        ("c", "District-C", "inland"),
    ):
        geo.add_member(
            MemberVersion(mvid, name, Interval(start, NOW), level="District")
        )
        geo.add_relationship(
            TemporalRelationship(mvid, parent, Interval(start, NOW))
        )
    schema = TemporalMultidimensionalSchema([geo], [Measure("cases", SUM)])
    manager = EvolutionManager(schema)

    # 2020 reform: A + B -> AB (population weights 60/40 backwards).
    manager.merge_members(
        "district",
        ["a", "b"],
        "ab",
        "District-AB",
        ym(2020, 1),
        reverse_shares={"a": 0.6, "b": 0.4},
    )
    # 2021: C splits 30/70; C-South moves under Coastal.
    manager.split_member(
        "district",
        "c",
        {"cn": ("C-North", 0.3), "cs": ("C-South", 0.7)},
        ym(2021, 1),
    )
    manager.reclassify_member(
        "district", "cs", ym(2021, 2), old_parents=["inland"], new_parents=["coastal"]
    )

    # Monthly case counts (a plausible seasonal pattern).
    monthly = {
        2019: {"a": 40, "b": 25, "c": 60},
        2020: {"ab": 70, "c": 55},
        2021: {"ab": 80, "cn": 20, "cs": 45},
    }
    for year, counts in monthly.items():
        for month in range(1, 13):
            season = 1.0 + (0.5 if month in (1, 2, 12) else 0.0)
            for district, base in counts.items():
                schema.add_fact(
                    {"district": district},
                    ym(year, month),
                    cases=round(base * season),
                )
    schema.validate()
    return schema


def main() -> None:
    schema = build_schema()
    versions = schema.structure_versions()
    print("Structure versions of the district dimension:")
    for v in versions:
        print(f"  {v.vsid}: {sorted(v.leaf_ids('district'))}")

    mvft = schema.multiversion_facts()
    engine = QueryEngine(mvft)

    query = Query(
        group_by=(TimeGroup(YEAR), LevelGroup("district", "Authority")),
        time_range=Interval(ym(2019, 1), ym(2021, 12)),
    )
    print("\nYearly cases per authority, every interpretation:")
    for label, table in engine.execute_all_modes(query).items():
        print(f"\n--- mode {label}")
        print(table.to_text())

    print("\nMode choice by user profile (§5.2 quality factor):")
    historian = {"sd": 10, "em": 3, "am": 1, "uk": 0}   # trusts source only
    planner = {"sd": 10, "em": 9, "am": 6, "uk": 0}     # fine with mappings
    for profile, weights in (("historian", historian), ("planner", planner)):
        ranked = rank_modes(engine, query, weights)
        line = ", ".join(f"{label}={quality:.2f}" for label, quality, _t in ranked)
        print(f"  {profile:<10} -> best mode {ranked[0][0]}  ({line})")

    delta = DeltaMultiVersionStore(mvft)
    print("\nDelta warehouse (differences-only storage, §5.1):")
    print(f"  full replication : {delta.full_replication_cells()} cells")
    print(f"  delta storage    : {delta.total_stored()} cells "
          f"({delta.savings_ratio():.0%} saved)")
    print(f"  per mode         : {delta.stored_cells()}")


if __name__ == "__main__":
    main()
