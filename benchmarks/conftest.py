"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (asserting
exact content, then timing the regeneration) or measures a quantitative
claim the paper makes in prose (storage redundancy, baseline limitations,
scalability of the inference).
"""

import pytest

from repro.core import QueryEngine
from repro.workloads.case_study import build_case_study, build_two_measure_case_study
from repro.workloads.generator import WorkloadConfig, generate_workload


@pytest.fixture(scope="session")
def case_study():
    """The paper's §2.1 case study."""
    return build_case_study()


@pytest.fixture(scope="session")
def two_measure_study():
    """The §5.2 turnover/profit variant (Table 12)."""
    return build_two_measure_case_study()


@pytest.fixture(scope="session")
def mvft(case_study):
    """The inferred MultiVersion fact table."""
    return case_study.schema.multiversion_facts()


@pytest.fixture(scope="session")
def engine(mvft):
    """Query engine over the case study."""
    return QueryEngine(mvft)


@pytest.fixture(scope="session")
def medium_workload():
    """A seeded synthetic workload for scalability probes."""
    return generate_workload(
        WorkloadConfig(seed=42, n_years=5, n_departments=20)
    )
