"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures (asserting
exact content, then timing the regeneration) or measures a quantitative
claim the paper makes in prose (storage redundancy, baseline limitations,
scalability of the inference).
"""

import pytest

from repro.core import QueryEngine
from repro.workloads.case_study import build_case_study, build_two_measure_case_study
from repro.workloads.generator import WorkloadConfig, generate_workload


@pytest.fixture(scope="session")
def case_study():
    """The paper's §2.1 case study."""
    return build_case_study()


@pytest.fixture(scope="session")
def two_measure_study():
    """The §5.2 turnover/profit variant (Table 12)."""
    return build_two_measure_case_study()


@pytest.fixture(scope="session")
def mvft(case_study):
    """The inferred MultiVersion fact table."""
    return case_study.schema.multiversion_facts()


@pytest.fixture(scope="session")
def engine(mvft):
    """Query engine over the case study."""
    return QueryEngine(mvft)


@pytest.fixture(scope="session")
def medium_workload():
    """A seeded synthetic workload for scalability probes."""
    return generate_workload(
        WorkloadConfig(seed=42, n_years=5, n_departments=20)
    )


# -- benchmark collector ---------------------------------------------------------
#
# Every benchmark's wall time is collected by a hookwrapper and written to
# BENCH_observability.json at the repo root when the session ends, together
# with a snapshot of the process-default metrics registry (empty unless a
# benchmark opted in via repro.observability.runtime — the collector itself
# never enables instrumentation, so timings stay unperturbed).

import json
import pathlib
import time

_BENCH_RESULTS = []

# Named sections benchmarks fill with honest numbers (throughput, overhead
# ratios) that land next to the per-test timings in the JSON artifact.
BENCH_SECTIONS: dict = {}


@pytest.fixture(scope="session")
def bench_sections():
    return BENCH_SECTIONS


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    start = time.perf_counter()
    outcome = yield
    seconds = time.perf_counter() - start
    _BENCH_RESULTS.append(
        {
            "name": item.nodeid,
            "seconds": seconds,
            "passed": outcome.excinfo is None,
        }
    )


def pytest_sessionfinish(session, exitstatus):
    if not _BENCH_RESULTS:
        return
    from repro.observability import runtime

    root = pathlib.Path(__file__).resolve().parent.parent
    payload = {
        "benchmarks": _BENCH_RESULTS,
        "metrics": (
            runtime.current_metrics().snapshot() if runtime.enabled() else {}
        ),
        **BENCH_SECTIONS,
    }
    (root / "BENCH_observability.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    # The storage-recovery module gets its own artifact: the row-journaling
    # tax and recover_warehouse replay numbers, tracked release over release.
    storage = [
        r for r in _BENCH_RESULTS if "test_bench_storage_recovery" in r["name"]
    ]
    if storage:
        (root / "BENCH_storage_recovery.json").write_text(
            json.dumps({"benchmarks": storage}, indent=2) + "\n"
        )
