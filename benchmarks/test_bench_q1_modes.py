"""Tables 4, 5 and 6 — query Q1 (total amount by year and division) under
its three interpretations: consistent time, mapped on the 2001
organization, mapped on the 2002 organization.
"""

import pytest

from repro.core import Interval, LevelGroup, Query, TimeGroup, YEAR, ym
from repro.workloads.case_study import ORG

Q1 = Query(
    group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")),
    time_range=Interval(ym(2001, 1), ym(2002, 12)),
)

PAPER_RESULTS = {
    "tcm": {  # Table 4 — consistent time
        ("2001", "Sales"): 150.0,
        ("2001", "R&D"): 100.0,
        ("2002", "Sales"): 100.0,
        ("2002", "R&D"): 150.0,
    },
    "V1": {  # Table 5 — mapped on the 2001 organization
        ("2001", "Sales"): 150.0,
        ("2001", "R&D"): 100.0,
        ("2002", "Sales"): 200.0,
        ("2002", "R&D"): 50.0,
    },
    "V2": {  # Table 6 — mapped on the 2002 organization
        ("2001", "Sales"): 100.0,
        ("2001", "R&D"): 150.0,
        ("2002", "Sales"): 100.0,
        ("2002", "R&D"): 150.0,
    },
}
TABLE_NUMBER = {"tcm": 4, "V1": 5, "V2": 6}


@pytest.mark.parametrize("mode", ["tcm", "V1", "V2"])
def test_bench_q1(benchmark, engine, mode):
    result = benchmark(engine.execute, Q1.with_mode(mode))
    got = {group: cells["amount"] for group, cells in result.as_dict().items()}
    assert got == PAPER_RESULTS[mode]
    print(f"\nTable {TABLE_NUMBER[mode]} — Q1 in mode {mode}:")
    print(result.to_text())
