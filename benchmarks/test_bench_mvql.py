"""MVQL front-end costs: parse, compile and execute.

Not a paper table — MVQL is this repository's front-end extension (in the
spirit of the TOLAP language cited in §2.2) — but its overhead relative
to programmatic queries is worth tracking.
"""

from repro.mvql import MVQLSession, parse

Q2_TEXT = (
    "SELECT amount BY year, org.Department IN MODE V2 DURING 2002..2003"
)


def test_bench_mvql_parse(benchmark):
    stmt = benchmark(parse, Q2_TEXT)
    assert stmt.mode == "V2"


def test_bench_mvql_execute(benchmark, mvft):
    session = MVQLSession(mvft)

    result = benchmark(session.execute, Q2_TEXT)
    assert result.as_dict()[("2003", "Dpt.Jones")]["amount"] == 200.0


def test_bench_mvql_vs_programmatic(benchmark, mvft, engine):
    """The language layer's overhead on top of the engine."""
    session = MVQLSession(mvft)
    programmatic = session.compile_select(parse(Q2_TEXT))

    def run_programmatic():
        return engine.execute(programmatic)

    result = benchmark(run_programmatic)
    assert len(result) == 6
