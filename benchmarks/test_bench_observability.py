"""Observability overhead benchmarks.

Two claims are measured:

1. **disabled is near-free** — with instrumentation off (the default), the
   query hot path costs within noise of an engine built before the
   observability layer existed: the only added work is one attribute load
   and a boolean test per *phase*, never per row;
2. **observing never changes the answer** — the instrumented engine's
   result tables are byte-equal to the uninstrumented ones.

The timing bound is deliberately generous (2×) so the suite stays green
on noisy CI containers; the honest number lands in
``BENCH_observability.json`` via the collector in ``conftest.py``.
"""

import time

from repro.core import Interval, LevelGroup, Query, QueryEngine, TimeGroup, YEAR, ym
from repro.observability import MetricsRegistry, Tracer
from repro.workloads.case_study import ORG
from repro.workloads.generator import WorkloadConfig, generate_workload

Q1 = Query(
    group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")),
    time_range=Interval(ym(2001, 1), ym(2002, 12)),
)

REPEATS = 30


def _best_of(fn, repeats=5):
    """Best-of-N wall time — robust against scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestDisabledOverhead:
    def test_disabled_instrumentation_is_near_free(self, medium_workload):
        mvft = medium_workload.schema.multiversion_facts()
        query = Query(group_by=(TimeGroup(YEAR),))
        engine = QueryEngine(mvft)

        def raw():
            # The two phases called directly — the narrowest possible
            # baseline, bypassing execute()'s enabled-guard entirely.
            for _ in range(REPEATS):
                engine.finalize(query, engine.collect_contributions(query))

        def guarded():
            for _ in range(REPEATS):
                engine.execute(query)

        raw()  # warm structure caches
        baseline = _best_of(raw)
        disabled = _best_of(guarded)
        # The guard is one attribute load + bool test per query; 2× plus
        # a 50 ms floor absorbs CI noise while still catching a per-row
        # instrument lookup sneaking into the hot loop.
        assert disabled < baseline * 2 + 0.05

    def test_instrumented_result_is_byte_equal(self, mvft):
        plain = QueryEngine(mvft)
        traced = QueryEngine(mvft, tracer=Tracer(), metrics=MetricsRegistry())
        for mode in mvft.modes.labels:
            query = Q1.with_mode(mode)
            assert (
                plain.execute(query).to_text() == traced.execute(query).to_text()
            )


class TestInstrumentedOverheadRecorded:
    def test_instrumented_run_records_span_per_query(self, mvft):
        tracer = Tracer()
        engine = QueryEngine(mvft, tracer=tracer)
        for _ in range(10):
            engine.execute(Q1)
        assert len(tracer.find("query.execute")) == 10


class TestLineageOverhead:
    """Lineage capture: disabled must be free, enabled bounded, and the
    explained values must match the table the query returned."""

    def test_disabled_lineage_is_near_free(self, medium_workload):
        from repro.observability import LineageRecorder

        mvft = medium_workload.schema.multiversion_facts()
        query = Query(group_by=(TimeGroup(YEAR),))
        plain = QueryEngine(mvft)
        off = LineageRecorder()
        off.enabled = False
        disabled_engine = QueryEngine(mvft, lineage=off)

        def baseline():
            for _ in range(REPEATS):
                plain.execute(query)

        def disabled():
            for _ in range(REPEATS):
                disabled_engine.execute(query)

        baseline()  # warm structure caches
        base = _best_of(baseline)
        off_cost = _best_of(disabled)
        # A disabled recorder adds one hoisted bool test per phase —
        # same bound as the tracer/metrics guard above.
        assert off_cost < base * 2 + 0.05

    def test_enabled_lineage_is_bounded_and_correct(self, medium_workload):
        from repro.observability import LineageRecorder

        mvft = medium_workload.schema.multiversion_facts()
        query = Query(group_by=(TimeGroup(YEAR),))
        plain = QueryEngine(mvft)
        lineage = LineageRecorder()
        recording = QueryEngine(mvft, lineage=lineage)

        plain.execute(query)  # warm caches
        base = _best_of(lambda: plain.execute(query))
        on_cost = _best_of(lambda: recording.execute(query))
        # Capture is per matched row but must stay within an order of
        # magnitude of the raw scan (generous: noisy CI containers).
        assert on_cost < base * 10 + 0.1

        table = recording.execute(query)
        for row in table:
            cell = lineage.explain_cell(row.group, "amount")
            assert cell.value == row.value("amount")
            assert cell.contributions


class TestCdcTailThroughput:
    """The change-data-capture path: a cold tail over a journal of N
    committed evolutions must be linear in N, and the events/second
    number lands in ``BENCH_observability.json``."""

    COMMITS = 200

    def test_cold_tail_throughput(self, tmp_path, bench_sections):
        from repro.observability import ChangeStream
        from repro.robustness import TransactionManager
        from repro.workloads.case_study import build_case_study

        wal = tmp_path / "cdc.wal"
        txm = TransactionManager(build_case_study().schema, wal=wal)
        for n in range(self.COMMITS):
            with txm.transaction():
                txm.editor.insert(
                    "org",
                    f"idCdc{n}",
                    f"CDC{n}",
                    ym(2003, 6),
                    level="Department",
                    parents=["sales"],
                )

        def cold_tail():
            return ChangeStream(wal).poll()

        events = cold_tail()
        assert len(events) >= self.COMMITS  # at least one op per commit
        seconds = _best_of(cold_tail)
        assert seconds < 2.0  # linear scan of a few hundred commits
        bench_sections["cdc_tail"] = {
            "commits": self.COMMITS,
            "events": len(events),
            "seconds": seconds,
            "events_per_second": len(events) / seconds if seconds else None,
        }

    def test_resumed_tail_skips_delivered_history(self, tmp_path):
        """A resumed stream is O(new), not O(history): polling from the
        cursor re-delivers nothing and never re-materialises old events."""
        from repro.observability import ChangeStream
        from repro.robustness import TransactionManager
        from repro.workloads.case_study import build_case_study

        wal = tmp_path / "resume.wal"
        txm = TransactionManager(build_case_study().schema, wal=wal)
        for n in range(50):
            with txm.transaction():
                txm.editor.insert(
                    "org",
                    f"idR{n}",
                    f"R{n}",
                    ym(2003, 6),
                    level="Department",
                    parents=["sales"],
                )
        stream = ChangeStream(wal)
        assert stream.poll()
        assert stream.poll() == []  # cursor advanced: nothing re-delivered
        resumed = ChangeStream(wal, from_lsn=stream.cursor)
        assert resumed.poll() == []


class TestPushOverhead:
    """Attaching push exporters must not tax the query hot path: the
    pushers collect on their own flusher thread, so the instrumented
    engine pays nothing per query beyond the spans it already records.
    The honest ratio is recorded; the assertion allows 5% plus a small
    absolute floor for scheduler noise on CI containers."""

    def test_push_exporters_add_at_most_five_percent(
        self, mvft, tmp_path, bench_sections
    ):
        from repro.observability import FileSink, MetricsPusher, SpanPusher

        tracer = Tracer()
        metrics = MetricsRegistry()
        engine = QueryEngine(mvft, tracer=tracer, metrics=metrics)

        def instrumented():
            for _ in range(REPEATS):
                engine.execute(Q1)

        instrumented()  # warm caches
        baseline = _best_of(instrumented)

        span_sink = FileSink(tmp_path / "spans.jsonl")
        metric_sink = FileSink(tmp_path / "metrics.jsonl")
        with SpanPusher(tracer, span_sink, interval=0.05):
            with MetricsPusher(metrics, metric_sink, interval=0.05):
                pushed = _best_of(instrumented)

        ratio = pushed / baseline if baseline else float("inf")
        assert pushed < baseline * 1.05 + 0.05
        assert span_sink.emitted > 0  # the flusher actually shipped OTLP
        bench_sections["push_overhead"] = {
            "instrumented_seconds": baseline,
            "with_push_seconds": pushed,
            "overhead_ratio": ratio,
            "budget_ratio": 1.05,
        }


class TestOtlpThroughput:
    def test_otlp_conversion_handles_thousands_of_spans(self):
        from repro.observability import spans_to_otlp

        tracer = Tracer()
        for _ in range(500):
            with tracer.span("root"):
                with tracer.span("child"):
                    with tracer.span("leaf"):
                        pass
        spans = tracer.spans
        assert len(spans) == 1500
        seconds = _best_of(
            lambda: spans_to_otlp(spans, origin_ns=tracer.origin_ns)
        )
        # The parent-chain walk is memoised: conversion is linear and
        # comfortably sub-second for 1.5k spans even on slow containers.
        assert seconds < 1.0
        document = spans_to_otlp(spans, origin_ns=tracer.origin_ns)
        otlp = document["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert len(otlp) == 1500
        assert len({s["traceId"] for s in otlp}) == 500


class TestUsageMeteringOverhead:
    """Wrapping every statement in ``UsageMeter.measure`` must cost at
    most 5% over the instrumented engine alone: the meter does two
    registry snapshots per statement, never per-row work.  The honest
    ratio lands in ``BENCH_observability.json``."""

    def test_metering_adds_at_most_five_percent(
        self, medium_workload, bench_sections
    ):
        from repro.observability import LabelledMetrics, UsageMeter

        from repro.core import MONTH

        mvft = medium_workload.schema.multiversion_facts()
        # A statement-sized query (month × department over 5 years):
        # the meter's fixed per-statement cost must drown in real work,
        # not be compared against a microsecond-scale toy scan.
        query = Query(
            group_by=(TimeGroup(MONTH), LevelGroup("org", "Department"))
        )
        metrics = MetricsRegistry()
        meter = UsageMeter(metrics)
        engine = QueryEngine(
            mvft, metrics=LabelledMetrics(metrics, {"tenant": "acme"})
        )

        def instrumented():
            for _ in range(REPEATS):
                engine.execute(query)

        def metered():
            for _ in range(REPEATS):
                with meter.measure("acme", "bench", statement="q1"):
                    engine.execute(query)

        instrumented()  # warm caches
        baseline = _best_of(instrumented)
        with_metering = _best_of(metered)

        ratio = with_metering / baseline if baseline else float("inf")
        assert with_metering < baseline * 1.05 + 0.05
        (record,) = meter.records("acme")
        assert record.rows_scanned > 0  # the deltas were attributed
        bench_sections["usage_metering"] = {
            "instrumented_seconds": baseline,
            "with_metering_seconds": with_metering,
            "overhead_ratio": ratio,
            "budget_ratio": 1.05,
        }
