"""Observability overhead benchmarks.

Two claims are measured:

1. **disabled is near-free** — with instrumentation off (the default), the
   query hot path costs within noise of an engine built before the
   observability layer existed: the only added work is one attribute load
   and a boolean test per *phase*, never per row;
2. **observing never changes the answer** — the instrumented engine's
   result tables are byte-equal to the uninstrumented ones.

The timing bound is deliberately generous (2×) so the suite stays green
on noisy CI containers; the honest number lands in
``BENCH_observability.json`` via the collector in ``conftest.py``.
"""

import time

from repro.core import Interval, LevelGroup, Query, QueryEngine, TimeGroup, YEAR, ym
from repro.observability import MetricsRegistry, Tracer
from repro.workloads.case_study import ORG
from repro.workloads.generator import WorkloadConfig, generate_workload

Q1 = Query(
    group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Division")),
    time_range=Interval(ym(2001, 1), ym(2002, 12)),
)

REPEATS = 30


def _best_of(fn, repeats=5):
    """Best-of-N wall time — robust against scheduler noise."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


class TestDisabledOverhead:
    def test_disabled_instrumentation_is_near_free(self, medium_workload):
        mvft = medium_workload.schema.multiversion_facts()
        query = Query(group_by=(TimeGroup(YEAR),))
        engine = QueryEngine(mvft)

        def raw():
            # The two phases called directly — the narrowest possible
            # baseline, bypassing execute()'s enabled-guard entirely.
            for _ in range(REPEATS):
                engine.finalize(query, engine.collect_contributions(query))

        def guarded():
            for _ in range(REPEATS):
                engine.execute(query)

        raw()  # warm structure caches
        baseline = _best_of(raw)
        disabled = _best_of(guarded)
        # The guard is one attribute load + bool test per query; 2× plus
        # a 50 ms floor absorbs CI noise while still catching a per-row
        # instrument lookup sneaking into the hot loop.
        assert disabled < baseline * 2 + 0.05

    def test_instrumented_result_is_byte_equal(self, mvft):
        plain = QueryEngine(mvft)
        traced = QueryEngine(mvft, tracer=Tracer(), metrics=MetricsRegistry())
        for mode in mvft.modes.labels:
            query = Q1.with_mode(mode)
            assert (
                plain.execute(query).to_text() == traced.execute(query).to_text()
            )


class TestInstrumentedOverheadRecorded:
    def test_instrumented_run_records_span_per_query(self, mvft):
        tracer = Tracer()
        engine = QueryEngine(mvft, tracer=tracer)
        for _ in range(10):
            engine.execute(Q1)
        assert len(tracer.find("query.execute")) == 10
