"""Ablations over the design choices DESIGN.md calls out.

* mapping-route search cost vs chain length (transform chains compose
  linear functions; longer lineages cost more to route);
* materialized aggregate lattice vs on-the-fly query execution;
* dimension lowering layouts: star vs snowflake vs parent-child.
"""

import pytest

from repro.core import (
    EvolutionManager,
    Interval,
    LevelGroup,
    MappingCatalog,
    Measure,
    MemberVersion,
    Query,
    QueryEngine,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
    TimeGroup,
    YEAR,
    identity_maps,
    MappingRelationship,
)
from repro.core.chronology import YEAR as YEAR_GRAN
from repro.logical import lower_parent_child, lower_snowflake, lower_star
from repro.olap import AggregateLattice
from repro.storage import Database


@pytest.mark.parametrize("chain_length", [1, 4, 8])
def test_bench_route_search_vs_chain_length(benchmark, chain_length):
    """A member renamed k times: routing composes k identity maps."""
    catalog = MappingCatalog(measures=["m"])
    for i in range(chain_length):
        catalog.add(
            MappingRelationship(
                f"v{i}", f"v{i+1}",
                forward=identity_maps(["m"]),
                reverse=identity_maps(["m"]),
            )
        )

    routes = benchmark(
        catalog.routes, "v0", {f"v{chain_length}"}, max_hops=chain_length
    )
    assert len(routes) == 1
    assert routes[0].hops == chain_length


def _lattice_workload():
    from repro.workloads.generator import WorkloadConfig, generate_workload

    return generate_workload(WorkloadConfig(seed=77, n_years=4, n_departments=15))


def test_bench_lattice_build(benchmark):
    mvft = _lattice_workload().schema.multiversion_facts()
    lattice = benchmark.pedantic(
        AggregateLattice, args=(mvft,), rounds=3, iterations=1
    )
    assert lattice.cell_count() > 0


def test_bench_lattice_hit_vs_engine(benchmark):
    """Answering a grouped total from the lattice vs re-running the query."""
    mvft = _lattice_workload().schema.multiversion_facts()
    lattice = AggregateLattice(mvft)
    engine = QueryEngine(mvft)
    query = Query(group_by=(TimeGroup(YEAR), LevelGroup("org", "Division")))
    engine_result = engine.execute(query).as_dict()
    sample_group = next(iter(engine_result))

    def from_lattice():
        return lattice.lookup(
            "tcm", YEAR_GRAN, "org", "Division", "amount", sample_group
        )

    hit = benchmark(from_lattice)
    assert hit is not None
    assert hit[0] == engine_result[sample_group]["amount"]


def _lowering_schema():
    """A three-level dimension with a reclassification (two versions)."""
    d = TemporalDimension("org")
    d.add_member(MemberVersion("root", "Root", Interval(0), level="All"))
    for i in range(4):
        d.add_member(MemberVersion(f"g{i}", f"G{i}", Interval(0), level="Group"))
        d.add_relationship(TemporalRelationship(f"g{i}", "root", Interval(0)))
    for i in range(24):
        d.add_member(MemberVersion(f"l{i}", f"L{i}", Interval(0), level="Leaf"))
        d.add_relationship(
            TemporalRelationship(f"l{i}", f"g{i % 4}", Interval(0))
        )
    schema = TemporalMultidimensionalSchema([d], [Measure("m", SUM)])
    manager = EvolutionManager(schema)
    manager.reclassify_member(
        "org", "l0", 10, old_parents=["g0"], new_parents=["g1"]
    )
    return schema


@pytest.mark.parametrize("layout", ["star", "snowflake", "parent_child"])
def test_bench_dimension_lowering(benchmark, layout):
    schema = _lowering_schema()
    versions = schema.structure_versions()
    lowerer = {
        "star": lower_star,
        "snowflake": lower_snowflake,
        "parent_child": lower_parent_child,
    }[layout]

    def lower():
        return lowerer(Database(), schema, versions, "org")

    result = benchmark(lower)
    assert result  # a table or a dict of tables
    if layout == "star":
        print(f"\nstar rows: {len(result)}")
    elif layout == "parent_child":
        print(f"\nparent-child rows: {len(result)}")
    else:
        total = sum(len(t) for t in result.values())
        print(f"\nsnowflake rows across {len(result)} tables: {total}")


@pytest.mark.parametrize("layout", ["star", "snowflake"])
def test_bench_relational_query_by_layout(benchmark, layout):
    """Grouped-total latency over the two queryable §5.1 layouts.

    The star answers from one denormalized row per leaf; the snowflake
    walks the rollup edges — slower, but the only layout faithful to
    multiple hierarchies.
    """
    from repro.warehouse import MultiVersionDataWarehouse
    from repro.workloads.generator import WorkloadConfig, generate_workload

    wl = generate_workload(WorkloadConfig(seed=55, n_years=4, n_departments=15))
    mvft = wl.schema.multiversion_facts()
    dw = MultiVersionDataWarehouse.build(mvft, layouts=("star", "snowflake"))
    query = {
        "star": dw.query_level_totals,
        "snowflake": dw.query_level_totals_snowflake,
    }[layout]

    rows = benchmark(query, "tcm", "org", "Division", "amount")
    assert rows
