"""Incremental MV maintenance vs full rebuild — the load-path ablation.

Appending a batch of facts one by one through the incremental maintainer
should beat rebuilding the whole MultiVersion fact table after the batch,
and the two must agree cell for cell (asserted in the test suite; spot
checked here).
"""

import pytest

from repro.core import MultiVersionFactTable
from repro.warehouse import IncrementalMultiVersion
from repro.workloads.case_study import build_case_study


def fact_stream():
    reference = build_case_study()
    return [
        (dict(row.coordinates), row.t, {m: row.value(m) for m in row.values})
        for row in reference.schema.facts
    ]


def test_bench_incremental_appends(benchmark):
    stream = fact_stream()

    def run():
        study = build_case_study(with_facts=False)
        incremental = IncrementalMultiVersion(study.schema)
        incremental.mvft  # initial (empty) build
        for coordinates, t, values in stream:
            incremental.append_fact(coordinates, t, values)
        return incremental.mvft

    mvft = benchmark(run)
    assert len(mvft.slice("tcm")) == len(stream)


def test_bench_rebuild_per_batch(benchmark):
    """The naive alternative: reload facts, rebuild the table."""
    stream = fact_stream()

    def run():
        study = build_case_study(with_facts=False)
        for coordinates, t, values in stream:
            study.schema.add_fact(coordinates, t, values)
        return MultiVersionFactTable.build(study.schema)

    mvft = benchmark(run)
    assert len(mvft.slice("tcm")) == len(stream)


def test_bench_per_fact_rebuild(benchmark):
    """Rebuilding after *every* fact — what the incremental path avoids."""
    stream = fact_stream()

    def run():
        study = build_case_study(with_facts=False)
        mvft = None
        for coordinates, t, values in stream:
            study.schema.add_fact(coordinates, t, values)
            mvft = MultiVersionFactTable.build(study.schema)
        return mvft

    mvft = benchmark.pedantic(run, rounds=3, iterations=1)
    assert mvft is not None and len(mvft.slice("tcm")) == len(stream)
