"""Cross-dimension inference — the multi-axis generalization of Def. 11.

With several temporal dimensions, a fact is routed along *every* axis and
the MV cell set is the cartesian product of the per-axis targets.  This
bench measures inference and query cost on a two-dimensional (product ×
store) workload where both axes evolve, and asserts conservation.
"""

import pytest

from repro.core import LevelGroup, Query, QueryEngine, TimeGroup, YEAR
from repro.workloads import TwoDimWorkloadConfig, generate_two_dim_workload


@pytest.mark.parametrize("n_products", [8, 16, 32])
def test_bench_two_dim_inference(benchmark, n_products):
    workload = generate_two_dim_workload(
        TwoDimWorkloadConfig(seed=13, n_products=n_products)
    )

    mvft = benchmark(workload.schema.multiversion_facts)
    assert len(mvft.slice("tcm")) == len(workload.schema.facts)
    blocked = {u.mode for u in mvft.unmapped}
    source_total = workload.schema.facts.total("amount")
    for label in mvft.modes.labels:
        if label in blocked:
            continue
        rows = mvft.slice(label)
        if any(r.value("amount") is None for r in rows):
            continue
        total = sum(r.value("amount") for r in rows)
        assert total == pytest.approx(source_total, rel=1e-9)


def test_bench_two_dim_query(benchmark):
    workload = generate_two_dim_workload(TwoDimWorkloadConfig(seed=13))
    mvft = workload.schema.multiversion_facts()
    engine = QueryEngine(mvft)
    last_mode = mvft.modes.labels[-1]
    query = Query(
        mode=last_mode,
        group_by=(
            TimeGroup(YEAR),
            LevelGroup("product", "Category"),
            LevelGroup("store", "Region"),
        ),
    )

    result = benchmark(engine.execute, query)
    assert len(result) > 0
    print(
        f"\ntwo-dim query in mode {last_mode}: {len(result)} grouped rows, "
        f"columns {result.columns}"
    )
