"""The §1.2 / §2.2 comparison — our model vs the baselines.

Replays the case study's evolution stream through every approach and
reports the dimensions the paper argues on:

* history retention (does the past survive?),
* cross-version comparability (can a fact be re-expressed in another
  structure?),
* data loss/corruption (updating models),
* available presentations (one for updating models, N+1 for ours),
* confidence tagging (only ours distinguishes source from mapped data).

The expected *shape*: SCD1/updating lose history; SCD2 keeps history but
cannot compare; SCD3 handles one change; ours keeps everything, compares
everything, and says how reliable each number is.
"""

from repro.baselines import (
    MVTemporalModel,
    SCDType1,
    SCDType2,
    SCDType3,
    UpdatingModel,
)
from repro.core import Interval, LevelGroup, Query, QueryEngine, TimeGroup, YEAR, ym
from repro.workloads.case_study import ORG, build_case_study


def year_bucket(t: int) -> int:
    return t


def replay_scd(model):
    """The case study's organization stream at year granularity."""
    for member, group in (
        ("jones", "Sales"), ("smith", "Sales"), ("brian", "R&D")
    ):
        model.assign(member, group, 2001)
    model.record_fact("jones", 2001, 100.0)
    model.record_fact("smith", 2001, 50.0)
    model.record_fact("brian", 2001, 100.0)
    model.assign("smith", "R&D", 2002)
    model.record_fact("jones", 2002, 100.0)
    model.record_fact("smith", 2002, 100.0)
    model.record_fact("brian", 2002, 50.0)
    # the split: SCD models have no split concept — Bill/Paul appear as
    # fresh members, the Jones lineage is simply another member gone.
    model.assign("bill", "Sales", 2003)
    model.assign("paul", "Sales", 2003)
    model.record_fact("bill", 2003, 150.0)
    model.record_fact("paul", 2003, 50.0)
    model.record_fact("smith", 2003, 110.0)
    model.record_fact("brian", 2003, 40.0)
    return model


def replay_updating():
    m = UpdatingModel()
    for member, group in (
        ("jones", "Sales"), ("smith", "Sales"), ("brian", "R&D")
    ):
        m.add_member(member, group)
    m.record_fact("jones", 2001, 100.0)
    m.record_fact("smith", 2001, 50.0)
    m.record_fact("brian", 2001, 100.0)
    m.reclassify("smith", "R&D")
    m.record_fact("jones", 2002, 100.0)
    m.record_fact("smith", 2002, 100.0)
    m.record_fact("brian", 2002, 50.0)
    m.split_member("jones", {"bill": 0.4, "paul": 0.6}, "Sales")
    m.record_fact("bill", 2003, 150.0)
    m.record_fact("paul", 2003, 50.0)
    m.record_fact("smith", 2003, 110.0)
    m.record_fact("brian", 2003, 40.0)
    return m


def multiversion_metrics():
    study = build_case_study()
    mvft = study.schema.multiversion_facts()
    engine = QueryEngine(mvft)
    # Comparability: every consistent fact is presentable in every mode.
    presentable = all(
        len(mvft.slice(label)) > 0 for label in mvft.modes.labels
    )
    unmapped = len(mvft.unmapped)
    q2 = Query(
        group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Department")),
        time_range=Interval(ym(2002, 1), ym(2003, 12)),
    )
    confidences = {
        symbol
        for label in mvft.modes.labels
        for row in engine.execute(q2.with_mode(label)).confidences().values()
        for symbol in row.values()
    }
    return {
        "history_retention": 1.0,
        "comparability": 1.0 if (presentable and unmapped == 0) else 0.0,
        "data_loss": 0.0,
        "presentations": len(mvft.modes),
        "confidence_tagging": confidences >= {"sd", "em", "am"},
    }


def replay_mendelzon_vaisman():
    m = MVTemporalModel()
    for division in ("Sales", "R&D"):
        m.add_member(division, 2001)
    for member, parent in (("jones", "Sales"), ("smith", "Sales"), ("brian", "R&D")):
        m.add_member(member, 2001)
        m.add_rollup(member, parent, 2001)
    m.close_rollup("smith", "Sales", 2001)
    m.add_rollup("smith", "R&D", 2002)
    m.close_member("jones", 2002)
    m.close_rollup("jones", "Sales", 2002)
    for part in ("bill", "paul"):
        m.add_member(part, 2003)
        m.add_rollup(part, "Sales", 2003)
    m.link("jones", "bill", 0.4)
    m.link("jones", "paul", 0.6)
    for member, year, amount in (
        ("jones", 2001, 100.0), ("smith", 2001, 50.0), ("brian", 2001, 100.0),
        ("jones", 2002, 100.0), ("smith", 2002, 100.0), ("brian", 2002, 50.0),
        ("bill", 2003, 150.0), ("paul", 2003, 50.0),
        ("smith", 2003, 110.0), ("brian", 2003, 40.0),
    ):
        m.record_fact(member, year, amount)
    return m


def collect_all():
    scd1 = replay_scd(SCDType1())
    scd2 = replay_scd(SCDType2())
    scd3 = replay_scd(SCDType3())
    updating = replay_updating()
    tolap = replay_mendelzon_vaisman()
    ours = multiversion_metrics()
    rows = {
        "SCD Type 1": {
            "history_retention": scd1.history_retention(),
            "comparability": scd1.cross_version_comparability(),
            "data_loss": 0.0,
            "presentations": 1,
            "confidence_tagging": False,
        },
        "SCD Type 2": {
            "history_retention": scd2.history_retention(),
            "comparability": scd2.cross_version_comparability(),
            "data_loss": 0.0,
            "presentations": 1,
            "confidence_tagging": False,
        },
        "SCD Type 3": {
            "history_retention": scd3.history_retention(),
            "comparability": scd3.cross_version_comparability(),
            "data_loss": 0.0,
            "presentations": 2,
            "confidence_tagging": False,
        },
        "Updating": {
            "history_retention": updating.history_retention(),
            "comparability": 1.0,
            "data_loss": updating.data_loss_fraction(total_recorded=10),
            "presentations": updating.available_presentations(),
            "confidence_tagging": False,
        },
        "Mendelzon-Vaisman": {
            "history_retention": 1.0,  # timestamps keep every state
            "comparability": 0.5,      # latest only, never past versions
            "data_loss": 0.0,
            "presentations": tolap.available_presentations(),
            "confidence_tagging": tolap.supports_confidence_tagging(),
        },
        "MultiVersion (ours)": ours,
    }
    return rows


def test_bench_baseline_comparison(benchmark):
    rows = benchmark.pedantic(collect_all, rounds=1, iterations=1)

    ours = rows["MultiVersion (ours)"]
    assert ours["history_retention"] == 1.0
    assert ours["comparability"] == 1.0
    assert ours["data_loss"] == 0.0
    assert ours["presentations"] == 4  # tcm + three structure versions
    assert ours["confidence_tagging"] is True

    assert rows["SCD Type 1"]["history_retention"] == 0.0
    assert rows["SCD Type 2"]["history_retention"] == 1.0
    assert rows["SCD Type 2"]["comparability"] == 0.0
    assert rows["Updating"]["history_retention"] == 0.0
    assert rows["Updating"]["data_loss"] > 0.0
    assert rows["Updating"]["presentations"] == 1
    assert rows["Mendelzon-Vaisman"]["presentations"] == 2
    assert rows["Mendelzon-Vaisman"]["confidence_tagging"] is False

    print("\n§1.2/§2.2 — model comparison on the case-study stream:")
    header = (
        f"{'model':<22}{'history':<9}{'compare':<9}"
        f"{'loss':<7}{'views':<7}confidence"
    )
    print(header)
    for name, m in rows.items():
        print(
            f"{name:<22}{m['history_retention']:<9.2f}"
            f"{m['comparability']:<9.2f}{m['data_loss']:<7.2f}"
            f"{m['presentations']:<7}{'yes' if m['confidence_tagging'] else 'no'}"
        )
