"""Robustness-layer overhead and recovery throughput.

Two questions a deployment needs answered before turning the
transactional engine on:

* how much does wrapping the §3.2 operators in a transaction (undo
  capture + WAL append) cost compared to the bare :class:`SchemaEditor`?
* how fast does crash recovery replay a long journal?
"""

import pytest

from repro.core import (
    EvolutionManager,
    Interval,
    Measure,
    MemberVersion,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
)
from repro.robustness import (
    FaultInjector,
    InjectedFault,
    TransactionManager,
    recover_schema,
)


def fresh_schema(departments=8):
    d = TemporalDimension("Org")
    d.add_member(MemberVersion("idP1", "P1", Interval(0), level="Division"))
    for i in range(departments):
        mvid = f"idD{i}"
        d.add_member(MemberVersion(mvid, f"D{i}", Interval(0), level="Department"))
        d.add_relationship(TemporalRelationship(mvid, "idP1", Interval(0)))
    return TemporalMultidimensionalSchema([d], [Measure("m", SUM)])


def run_merges(evolution, rounds=4):
    for i in range(rounds):
        evolution.merge_members(
            "Org",
            [f"idD{2 * i}", f"idD{2 * i + 1}"],
            f"idM{i}",
            f"M{i}",
            10,
            reverse_shares={f"idD{2 * i}": 0.5, f"idD{2 * i + 1}": None},
        )


class TestTransactionOverhead:
    def test_bare_editor_baseline(self, benchmark):
        def run():
            run_merges(EvolutionManager(fresh_schema()))

        benchmark(run)

    def test_transactional_in_memory(self, benchmark):
        """Undo capture only — no journal on disk."""

        def run():
            txm = TransactionManager(fresh_schema())
            with txm.transaction():
                run_merges(txm.evolution)

        benchmark(run)

    def test_transactional_with_wal(self, benchmark, tmp_path):
        counter = {"n": 0}

        def run():
            counter["n"] += 1
            txm = TransactionManager(
                fresh_schema(), wal=tmp_path / f"bench-{counter['n']}.wal"
            )
            with txm.transaction():
                run_merges(txm.evolution)
            txm.wal.close()

        benchmark(run)

    def test_rollback_cost(self, benchmark):
        """Fault at the last operator: full undo of the whole compound run."""

        def run():
            injector = FaultInjector()
            injector.arm("txn.op.pre", at_call=20)  # 4 merges x 5 operators
            txm = TransactionManager(fresh_schema(), fault_injector=injector)
            try:
                with txm.transaction():
                    run_merges(txm.evolution)
            except InjectedFault:
                pass

        benchmark(run)


class TestRecoveryThroughput:
    @pytest.fixture(scope="class")
    def long_wal(self, tmp_path_factory):
        """A journal of 40 committed transactions / 200 operator records."""
        path = tmp_path_factory.mktemp("wal") / "long.wal"
        txm = TransactionManager(fresh_schema(departments=80), wal=path)
        for i in range(40):
            with txm.transaction():
                txm.evolution.merge_members(
                    "Org",
                    [f"idD{2 * i}", f"idD{2 * i + 1}"],
                    f"idM{i}",
                    f"M{i}",
                    10,
                    reverse_shares={f"idD{2 * i}": 0.5, f"idD{2 * i + 1}": None},
                )
        txm.wal.close()
        return path

    def test_replay_long_journal(self, benchmark, long_wal):
        def run():
            schema, report = recover_schema(long_wal)
            assert report.operators_replayed == 200
            return report

        report = benchmark(run)
        assert report.transactions_replayed == 40
        assert report.integrity_violations == 0

    def test_replay_without_verification(self, benchmark, long_wal):
        """Integrity sweep excluded — the replay loop alone."""

        def run():
            recover_schema(long_wal, verify=False)

        benchmark(run)
