"""Table 12 — the mapping-relations metadata extract.

The §5.2 prototype stores linear ``k`` factors per measure in both
directions and a confidence code per relation: 60 %/80 % of turnover/
profit to Dpt.Paul, 40 %/20 % to Dpt.Bill, identity back, approximated
forward (code 1), exact backward (code 2).
"""

from repro.warehouse import build_mapping_table, mapping_relations_extract
from repro.storage import Database

PAPER_TABLE_12 = {
    ("Dpt.Jones", "Dpt.Paul"): {
        "k_turnover": 0.6, "k_profit": 0.8,
        "k_inv_turnover": 1.0, "k_inv_profit": 1.0,
        "confidence": 1, "confidence_inv": 2,
    },
    ("Dpt.Jones", "Dpt.Bill"): {
        "k_turnover": 0.4, "k_profit": 0.2,
        "k_inv_turnover": 1.0, "k_inv_profit": 1.0,
        "confidence": 1, "confidence_inv": 2,
    },
}


def test_bench_table_12_extract(benchmark, two_measure_study):
    rows = benchmark(mapping_relations_extract, two_measure_study.schema)
    got = {
        (r["from"], r["to"]): {k: v for k, v in r.items() if k not in ("from", "to")}
        for r in rows
    }
    assert got == PAPER_TABLE_12
    print("\nTable 12 — mapping relations (extract):")
    header = (
        f"{'From':<11}{'To':<10}{'k m1':<7}{'k m2':<7}"
        f"{'k-1 m1':<8}{'k-1 m2':<8}{'Conf':<6}Conf-1"
    )
    print(header)
    for r in rows:
        print(
            f"{r['from']:<11}{r['to']:<10}{r['k_turnover']:<7g}"
            f"{r['k_profit']:<7g}{r['k_inv_turnover']:<8g}"
            f"{r['k_inv_profit']:<8g}{r['confidence']:<6}{r['confidence_inv']}"
        )


def test_bench_table_12_relational_materialization(benchmark, two_measure_study):
    """Timing the §5 path: the metadata table built on the relational
    engine, keyed by member-version ids."""

    def build():
        return build_mapping_table(Database(), two_measure_study.schema)

    table = benchmark(build)
    assert len(table) == 2
    paul = table.get(("jones", "paul"))
    assert paul["k_turnover"] == 0.6 and paul["confidence_inv"] == 2
