"""Table 11 — simple and complex operations translated into sequences of
the four basic operators.

Each benchmark builds a fresh schema, applies one operation through the
EvolutionManager and checks the emitted basic-operator sequence against
the paper's translation, printing the paper-style renderings.
"""

import pytest

from repro.core import (
    EvolutionManager,
    Interval,
    Measure,
    MemberVersion,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
)


def fresh_manager():
    d = TemporalDimension("Org")
    d.add_member(MemberVersion("idP1", "P1", Interval(0), level="Division"))
    for mvid in ("idV", "idV1", "idV2"):
        d.add_member(MemberVersion(mvid, mvid[2:], Interval(0), level="Department"))
        d.add_relationship(TemporalRelationship(mvid, "idP1", Interval(0)))
    schema = TemporalMultidimensionalSchema([d], [Measure("m", SUM)])
    return EvolutionManager(schema)


def run_creation(manager):
    return manager.create_member("Org", "idNew", "V", 10, parents=["idP1"])


def run_change(manager):
    return manager.transform_member("Org", "idV", "idV'", "V'", 10)


def run_merge(manager):
    return manager.merge_members(
        "Org", ["idV1", "idV2"], "idV12", "V12", 10,
        reverse_shares={"idV1": 0.5, "idV2": None},
    )


def run_increase(manager):
    return manager.increase_member("Org", "idV", "idV+", "V+", 10, factor=2.0)


def run_partial_annexation(manager):
    return manager.partial_annexation(
        "Org", "idV1", "idV2", ("idV1-", "V1-"), ("idV2+", "V2+"), 10,
        donated_fraction=0.1,
        acceptor_reverse_factor=0.8,
        donated_share_of_acceptor=0.2,
    )


CASES = {
    "creation": (run_creation, ["Insert"]),
    "change": (run_change, ["Exclude", "Insert", "Associate"]),
    "merge": (
        run_merge,
        ["Exclude", "Exclude", "Insert", "Associate", "Associate"],
    ),
    "increase": (run_increase, ["Exclude", "Insert", "Associate"]),
    "partial_annexation": (
        run_partial_annexation,
        [
            "Exclude", "Exclude", "Insert", "Insert",
            "Associate", "Associate", "Associate",
        ],
    ),
}


@pytest.mark.parametrize("operation", sorted(CASES))
def test_bench_operation_translation(benchmark, operation):
    run, expected_sequence = CASES[operation]

    def apply():
        return run(fresh_manager())

    result = benchmark(apply)
    assert [r.operator for r in result.records] == expected_sequence
    print(f"\nTable 11 — {operation}:")
    for line in result.renderings():
        print(f"  - {line}")
