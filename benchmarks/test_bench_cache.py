"""Versioned-result-cache benchmark: hot-path speedup and churn hit rate.

Two numbers justify the cache's existence, and both land in
``BENCH_cache.json``:

* **Hot-cache speedup** — the same pivot-shaped query served from the
  cache versus recomputed through the two-phase engine scan.  The issue
  sets a hard floor: a hot hit must be at least 5x faster than the
  engine path, and the served result must be *byte-identical* to the
  recomputation (``to_text()`` equality covers ordering, values and
  confidence annotations).

* **Hit rate under churn** — a writer evolving the schema between query
  bursts.  Every write bumps the structure version, so the first burst
  after each write misses by design (staleness is structurally
  impossible); the repeat burst must hit.  The steady-state hit rate
  and eviction counts are recorded, and correctness is asserted
  unconditionally against a fresh uncached engine each epoch.
"""

import json
import pathlib
import time

from repro.cache import VersionedResultCache
from repro.core.chronology import YEAR, ym
from repro.core.query import LevelGroup, Query, QueryEngine, TimeGroup
from repro.olap.cube import Cube, LevelAxis, TimeAxis
from repro.workloads.case_study import ORG
from repro.workloads.generator import WorkloadConfig, generate_workload

ROOT = pathlib.Path(__file__).resolve().parent.parent

HOT_REPS = 200
CHURN_EPOCHS = 8


def timed(fn, reps: int) -> float:
    """Mean seconds per call over ``reps`` calls."""
    start = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - start) / reps


def render(view) -> tuple:
    """A comparable full rendering of a pivot view (labels + cells)."""
    return (
        view.rows,
        view.cols,
        [
            (view.cell(r, c).value, view.cell(r, c).confidence)
            for r in view.rows
            for c in view.cols
        ],
    )


class TestSmokeCache:
    def test_smoke_hot_cache_speedup_and_churn_hit_rate(self, bench_sections):
        workload = generate_workload(
            WorkloadConfig(seed=42, n_years=5, n_departments=20)
        )
        schema = workload.schema
        mvft = schema.multiversion_facts()
        query = Query(
            mode="tcm",
            group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Department")),
        )

        # -- hot hit vs the two-phase engine scan -------------------------
        uncached = QueryEngine(mvft)
        cache = VersionedResultCache()
        hot = QueryEngine(mvft, cache=cache)
        expected = uncached.execute(query).to_text()
        assert hot.execute(query).to_text() == expected  # populates
        assert hot.execute(query).to_text() == expected  # byte-identical hit
        engine_mean = timed(lambda: uncached.execute(query), HOT_REPS)
        hot_mean = timed(lambda: hot.execute(query), HOT_REPS)
        speedup = engine_mean / hot_mean
        assert speedup >= 5.0, (
            f"hot cache only {speedup:.1f}x over the engine path "
            f"({engine_mean * 1e6:.0f}us vs {hot_mean * 1e6:.0f}us)"
        )

        # -- the pivot surface rides the same cache -----------------------
        cube = Cube(mvft, materialize=True, cache=cache)
        axes = ("tcm", TimeAxis(YEAR), LevelAxis(ORG, "Department"), "amount")
        baseline_view = render(cube.pivot(*axes))  # populates the lattice
        pivot_mean = timed(lambda: cube.pivot(*axes), HOT_REPS)
        assert render(cube.pivot(*axes)) == baseline_view
        pivot_speedup = engine_mean / pivot_mean
        assert pivot_speedup >= 5.0, (
            f"hot pivot only {pivot_speedup:.1f}x over the engine path"
        )

        # -- hit rate under writer churn ----------------------------------
        shared = VersionedResultCache()
        burst = [
            Query(mode=mode, group_by=(TimeGroup(YEAR), LevelGroup(ORG, lvl)))
            for mode in mvft.modes.labels
            for lvl in ("Division", "Department")
        ]
        for epoch in range(CHURN_EPOCHS):
            workload.manager.create_member(
                ORG,
                f"churn{epoch}",
                f"Churn{epoch}",
                ym(2004, 1 + epoch),
                parents=["div0"],
                level="Department",
            )
            fresh_mvft = schema.multiversion_facts()
            engine = QueryEngine(fresh_mvft, cache=shared)
            fresh = QueryEngine(fresh_mvft)  # correctness oracle, no cache
            for q in burst:
                assert engine.execute(q).to_text() == fresh.execute(q).to_text()
            for q in burst:  # repeat burst: same versions, must hit
                engine.execute(q)
        stats = shared.stats()
        assert stats["hits"] >= CHURN_EPOCHS * len(burst)
        assert 0.0 < stats["hit_rate"] <= 1.0

        bench_sections["cache"] = payload = {
            "scenario": {
                "workload": "seed=42 n_years=5 n_departments=20",
                "hot_reps": HOT_REPS,
                "churn_epochs": CHURN_EPOCHS,
                "burst_queries": len(burst),
            },
            "hot_cache": {
                "engine_mean_seconds": round(engine_mean, 9),
                "hit_mean_seconds": round(hot_mean, 9),
                "speedup": round(speedup, 2),
                "pivot_mean_seconds": round(pivot_mean, 9),
                "pivot_speedup": round(pivot_speedup, 2),
                "byte_identical": True,
            },
            "churn": {
                "hits": stats["hits"],
                "misses": stats["misses"],
                "hit_rate": round(stats["hit_rate"], 4),
                "evictions": stats["evictions"],
                "entries": stats["entries"],
                "bytes": stats["bytes"],
            },
        }
        (ROOT / "BENCH_cache.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )
