"""Concurrency-layer benchmarks: snapshot readers and sharded aggregation.

Two claims to quantify:

* a pinned :class:`SnapshotCursor` lets readers run at full speed while a
  writer commits evolutions — reader results never drift, and reader
  latency does not include any write-side locking;
* :class:`ShardedExecutor` partitions the fact scan across worker
  threads with a deterministic merge.  Correctness (sharded == serial,
  byte for byte) is asserted unconditionally; the speedup is recorded
  honestly and only asserted when the host actually has multiple cores
  (on a single-CPU box the GIL makes thread sharding a wash).
"""

import os
import time

from repro.concurrency import ShardedExecutor, SnapshotManager
from repro.core import LevelGroup, Query, QueryEngine, TimeGroup, YEAR
from repro.core.chronology import ym
from repro.robustness import TransactionManager
from repro.workloads.case_study import build_case_study
from repro.workloads.generator import WorkloadConfig, generate_workload

Q_DIVISION = Query(group_by=(TimeGroup(YEAR), LevelGroup("org", "Division")))


def large_mvft():
    """A workload big enough that sharding has something to chew on."""
    workload = generate_workload(
        WorkloadConfig(seed=7, n_years=6, n_departments=24)
    )
    return workload.schema.multiversion_facts()


class TestSmokeSnapshotReaders:
    """Reader throughput while a writer churns (smoke-safe)."""

    def test_smoke_reader_throughput_during_writer_churn(self, benchmark):
        study = build_case_study()
        txm = TransactionManager(study.schema)
        manager = SnapshotManager(txm)
        cursor = manager.open_cursor()
        engine = QueryEngine(cursor.mvft)
        baseline = engine.execute(Q_DIVISION).to_text()
        counter = iter(range(10_000))

        def read_during_commit():
            with manager.transaction():
                txm.editor.insert(
                    "org",
                    f"bench_{next(counter)}",
                    "Bench",
                    ym(2003, 6),
                    level="Department",
                    parents=["sales"],
                )
            return engine.execute(Q_DIVISION).to_text()

        result = benchmark(read_during_commit)
        # the pinned cursor never sees the writer's commits
        assert result == baseline

    def test_smoke_open_cursor_cost(self, benchmark):
        study = build_case_study()
        manager = SnapshotManager(TransactionManager(study.schema))

        def open_and_close():
            with manager.open_cursor() as cursor:
                return cursor.version

        benchmark(open_and_close)
        assert manager.open_snapshot_count == 0


class TestSmokeShardedAggregation:
    """Sharded vs serial aggregation over a generated workload."""

    def test_smoke_sharded_equals_serial(self, benchmark):
        mvft = large_mvft()
        executor = ShardedExecutor(mvft, shards=4)
        mode = mvft.modes.labels[0]
        query = Q_DIVISION.with_mode(mode)
        serial = executor.execute_serial(query).to_text()
        sharded = benchmark(lambda: executor.execute(query).to_text())
        assert sharded == serial

    def test_smoke_serial_baseline(self, benchmark):
        mvft = large_mvft()
        executor = ShardedExecutor(mvft, shards=4)
        mode = mvft.modes.labels[0]
        query = Q_DIVISION.with_mode(mode)
        benchmark(lambda: executor.execute_serial(query).to_text())

    def test_sharded_speedup_recorded_honestly(self):
        mvft = large_mvft()
        executor = ShardedExecutor(mvft, shards=4)
        mode = mvft.modes.labels[0]
        query = Q_DIVISION.with_mode(mode)
        assert (
            executor.execute(query).to_text()
            == executor.execute_serial(query).to_text()
        )

        rounds = 3
        t0 = time.perf_counter()
        for _ in range(rounds):
            executor.execute_serial(query)
        serial_s = (time.perf_counter() - t0) / rounds

        t0 = time.perf_counter()
        for _ in range(rounds):
            executor.execute(query)
        sharded_s = (time.perf_counter() - t0) / rounds

        speedup = serial_s / sharded_s if sharded_s else float("inf")
        print(
            f"\nsharded aggregation: serial {serial_s * 1e3:.2f} ms, "
            f"sharded {sharded_s * 1e3:.2f} ms, speedup {speedup:.2f}x "
            f"({os.cpu_count()} cpu)"
        )
        if (os.cpu_count() or 1) >= 4:
            # with real parallelism available the shards must help
            assert speedup > 1.0
