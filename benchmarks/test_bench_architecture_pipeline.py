"""Figure 1 — the OLAP multi-tier architecture, end to end.

Runs the whole §5.1 pipeline: operational sources → ETL → Temporal Data
Warehouse → MultiVersion Data Warehouse → OLAP cube → front end, and
reports each tier's footprint.
"""

from repro.core import Interval, Measure, MemberVersion, NOW, SUM
from repro.core import (
    EvolutionManager,
    TemporalDimension,
    TemporalMultidimensionalSchema,
    TemporalRelationship,
    ym,
)
from repro.olap import Cube, LevelAxis, TimeAxis, grid_quality, render_view
from repro.warehouse import (
    ETLPipeline,
    FactMapping,
    CleaningRule,
    MultiVersionDataWarehouse,
    OperationalSource,
    TemporalDataWarehouse,
)
from repro.workloads.case_study import DEPARTMENT, DIVISION, ORG


def build_empty_case_schema():
    """The case-study structure without facts (ETL loads them)."""
    org = TemporalDimension(ORG, "Organization")
    start = ym(2001, 1)
    org.add_member(MemberVersion("sales", "Sales", Interval(start, NOW), level=DIVISION))
    org.add_member(MemberVersion("rd", "R&D", Interval(start, NOW), level=DIVISION))
    for mvid, name in (
        ("jones", "Dpt.Jones"), ("smith", "Dpt.Smith"), ("brian", "Dpt.Brian")
    ):
        org.add_member(MemberVersion(mvid, name, Interval(start, NOW), level=DEPARTMENT))
    for mvid, parent in (("jones", "sales"), ("smith", "sales"), ("brian", "rd")):
        org.add_relationship(TemporalRelationship(mvid, parent, Interval(start, NOW)))
    schema = TemporalMultidimensionalSchema([org], [Measure("amount", SUM)])
    manager = EvolutionManager(schema)
    manager.reclassify_member(ORG, "smith", ym(2002, 1), old_parents=["sales"], new_parents=["rd"])
    manager.split_member(
        ORG, "jones", {"bill": ("Dpt.Bill", 0.4), "paul": ("Dpt.Paul", 0.6)}, ym(2003, 1)
    )
    return schema, manager


OPERATIONAL_RECORDS = [
    {"dept": "jones", "year": 2001, "amount": 100.0},
    {"dept": "smith", "year": 2001, "amount": 50.0},
    {"dept": "brian", "year": 2001, "amount": 100.0},
    {"dept": "jones", "year": 2002, "amount": 100.0},
    {"dept": "smith", "year": 2002, "amount": 100.0},
    {"dept": "brian", "year": 2002, "amount": 50.0},
    {"dept": "bill", "year": 2003, "amount": 150.0},
    {"dept": "paul", "year": 2003, "amount": 50.0},
    {"dept": "smith", "year": 2003, "amount": 110.0},
    {"dept": "brian", "year": 2003, "amount": 40.0},
    # dirty records the ETL must reject:
    {"dept": "jones", "year": 2003, "amount": 75.0},   # member gone in 2003
    {"dept": "ghost", "year": 2001, "amount": 10.0},   # unknown member
    {"dept": "brian", "year": 2001, "amount": None},   # null measure
]


def run_pipeline():
    schema, manager = build_empty_case_schema()
    pipeline = ETLPipeline(
        schema,
        rules=[
            CleaningRule(
                "drop-null-amount",
                lambda r: r if r.get("amount") is not None else None,
            )
        ],
        mapping=FactMapping(
            lambda r: ({ORG: r["dept"]}, ym(r["year"], 6), {"amount": r["amount"]})
        ),
    )
    report = pipeline.run([OperationalSource("legacy", OPERATIONAL_RECORDS)])
    tdw = TemporalDataWarehouse.from_schema(schema, manager.journal)
    mvft = schema.multiversion_facts()
    mvdw = MultiVersionDataWarehouse.build(mvft)
    cube = Cube(mvft)
    view = cube.pivot("V3", TimeAxis(), LevelAxis(ORG, "Department"), "amount")
    return report, tdw, mvdw, cube, view


def test_bench_figure_1_pipeline(benchmark):
    report, tdw, mvdw, cube, view = benchmark(run_pipeline)
    # ETL tier: 10 clean records loaded, 3 dirty rejected.
    assert report.extracted == 13
    assert report.loaded == 10
    assert report.rejected_count == 3
    # Temporal DW tier holds consistent data + metadata.
    counts = tdw.db.row_counts()
    assert counts["consistent_facts"] == 10
    assert counts["mapping_relations"] == 2
    # MultiVersion DW tier: TMP dimension + star dims + MV fact table.
    assert mvdw.db.row_counts()["dim_tmp"] == 4
    assert mvdw.storage_cells() == 40
    # OLAP tier answers in every mode; the front end renders with quality.
    assert cube.modes == ["tcm", "V1", "V2", "V3"]
    assert 0.0 < grid_quality(view) <= 1.0

    print("\nFigure 1 — architecture pipeline:")
    print(f"  ETL           : {report}")
    print(f"  Temporal DW   : {counts}")
    print(f"  MultiVersion DW: {mvdw.db.row_counts()}")
    print(f"  OLAP cube     : modes={cube.modes}")
    print("  Front end (V3 departments):")
    print(render_view(view))
