"""Table 3 — the snapshot of data for years 2001-2003.

Regenerates the consistent fact table joined to the hierarchy valid at
each fact's own time, row for row.
"""

from repro.workloads.case_study import fact_snapshot_table

PAPER_TABLE_3 = [
    (2001, "Sales", "Dpt.Jones", 100.0),
    (2001, "Sales", "Dpt.Smith", 50.0),
    (2001, "R&D", "Dpt.Brian", 100.0),
    (2002, "Sales", "Dpt.Jones", 100.0),
    (2002, "R&D", "Dpt.Smith", 100.0),
    (2002, "R&D", "Dpt.Brian", 50.0),
    (2003, "Sales", "Dpt.Bill", 150.0),
    (2003, "Sales", "Dpt.Paul", 50.0),
    (2003, "R&D", "Dpt.Smith", 110.0),
    (2003, "R&D", "Dpt.Brian", 40.0),
]


def test_bench_fact_snapshot(benchmark, case_study):
    rows = benchmark(fact_snapshot_table, case_study)
    assert rows == PAPER_TABLE_3
    print("\nTable 3 — snapshot of data:")
    print(f"{'Year':<6}{'Division':<10}{'Department':<12}Amount")
    for year, division, department, amount in rows:
        print(f"{year:<6}{division:<10}{department:<12}{amount:g}")
