"""Row-journaling tax and warehouse recovery throughput.

The relational twin of ``test_bench_fault_recovery``: what does
journaling every warehouse row write (``dml`` records) cost over the
bare in-memory engine, and how fast does ``recover_warehouse`` replay a
long row-level journal?  The session collector writes this module's
timings to ``BENCH_storage_recovery.json``.
"""

import pytest

from repro.core import (
    Interval,
    Measure,
    MemberVersion,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
)
from repro.robustness import TransactionManager, recover_warehouse
from repro.storage import Column, Database, ForeignKey, INTEGER, TEXT

N_ROWS = 400


def tiny_schema():
    d = TemporalDimension("Org")
    d.add_member(MemberVersion("idP1", "P1", Interval(0)))
    return TemporalMultidimensionalSchema([d], [Measure("m", SUM)])


def fresh_warehouse():
    db = Database("wh")
    db.create_table(
        "dept",
        [Column("id", INTEGER), Column("name", TEXT)],
        primary_key=["id"],
    )
    db.create_table(
        "sales",
        [Column("id", INTEGER), Column("dept_id", INTEGER), Column("amount", INTEGER)],
        primary_key=["id"],
        foreign_keys=[ForeignKey(("dept_id",), "dept", ("id",))],
    )
    return db


def load_rows(txm, rows=N_ROWS):
    with txm.transaction():
        txm.database.insert("dept", {"id": 1, "name": "sales"})
        txm.database.insert_many(
            "sales",
            [{"id": i, "dept_id": 1, "amount": i % 97} for i in range(rows)],
        )
    with txm.transaction():
        txm.database.update(
            "sales", lambda r: r["id"] % 10 == 0, {"amount": 0}
        )
        txm.database.delete("sales", lambda r: r["id"] % 25 == 0)


class TestRowJournalingTax:
    def test_bulk_load_baseline_no_wal(self, benchmark):
        """Undo capture only — no journal on disk."""

        def run():
            txm = TransactionManager(tiny_schema(), database=fresh_warehouse())
            load_rows(txm)

        benchmark(run)

    def test_bulk_load_with_row_journaling(self, benchmark, tmp_path):
        """The tax: every row write also appends a ``dml`` record."""
        counter = {"n": 0}

        def run():
            counter["n"] += 1
            txm = TransactionManager(
                tiny_schema(),
                wal=tmp_path / f"bench-{counter['n']}.wal",
                database=fresh_warehouse(),
            )
            load_rows(txm)
            txm.wal.close()

        benchmark(run)


class TestWarehouseRecoveryThroughput:
    @pytest.fixture(scope="class")
    def long_wal(self, tmp_path_factory):
        """A journal of ~440 committed ``dml`` records plus one update and
        one delete wave."""
        path = tmp_path_factory.mktemp("wal") / "warehouse.wal"
        txm = TransactionManager(
            tiny_schema(), wal=path, database=fresh_warehouse()
        )
        load_rows(txm)
        txm.wal.close()
        return path

    def test_replay_long_row_journal(self, benchmark, long_wal):
        def run():
            db, report = recover_warehouse(long_wal)
            assert report.rows_inserted == N_ROWS + 1
            return report

        report = benchmark(run)
        assert report.transactions_replayed == 2
        assert report.rows_deleted == N_ROWS // 25

    def test_replay_without_verification(self, benchmark, long_wal):
        """Foreign-key audit excluded — the replay loop alone."""

        def run():
            return recover_warehouse(long_wal, verify=False)

        db, report = benchmark(run)
        assert len(db.table("sales")) == N_ROWS - N_ROWS // 25
