"""Row-journaling tax and warehouse recovery throughput.

The relational twin of ``test_bench_fault_recovery``: what does
journaling every warehouse row write (``dml`` records) cost over the
bare in-memory engine, and how fast does ``recover_warehouse`` replay a
long row-level journal?  The session collector writes this module's
timings to ``BENCH_storage_recovery.json``.
"""

import pytest

from repro.core import (
    Interval,
    Measure,
    MemberVersion,
    SUM,
    TemporalDimension,
    TemporalMultidimensionalSchema,
)
from repro.robustness import TransactionManager, recover_warehouse
from repro.storage import Column, Database, ForeignKey, INTEGER, TEXT

N_ROWS = 400


def tiny_schema():
    d = TemporalDimension("Org")
    d.add_member(MemberVersion("idP1", "P1", Interval(0)))
    return TemporalMultidimensionalSchema([d], [Measure("m", SUM)])


def fresh_warehouse():
    db = Database("wh")
    db.create_table(
        "dept",
        [Column("id", INTEGER), Column("name", TEXT)],
        primary_key=["id"],
    )
    db.create_table(
        "sales",
        [Column("id", INTEGER), Column("dept_id", INTEGER), Column("amount", INTEGER)],
        primary_key=["id"],
        foreign_keys=[ForeignKey(("dept_id",), "dept", ("id",))],
    )
    return db


def load_rows(txm, rows=N_ROWS):
    with txm.transaction():
        txm.database.insert("dept", {"id": 1, "name": "sales"})
        txm.database.insert_many(
            "sales",
            [{"id": i, "dept_id": 1, "amount": i % 97} for i in range(rows)],
        )
    with txm.transaction():
        txm.database.update(
            "sales", lambda r: r["id"] % 10 == 0, {"amount": 0}
        )
        txm.database.delete("sales", lambda r: r["id"] % 25 == 0)


class TestRowJournalingTax:
    def test_bulk_load_baseline_no_wal(self, benchmark):
        """Undo capture only — no journal on disk."""

        def run():
            txm = TransactionManager(tiny_schema(), database=fresh_warehouse())
            load_rows(txm)

        benchmark(run)

    def test_bulk_load_with_row_journaling(self, benchmark, tmp_path):
        """The tax: every row write also appends a ``dml`` record."""
        counter = {"n": 0}

        def run():
            counter["n"] += 1
            txm = TransactionManager(
                tiny_schema(),
                wal=tmp_path / f"bench-{counter['n']}.wal",
                database=fresh_warehouse(),
            )
            load_rows(txm)
            txm.wal.close()

        benchmark(run)


class TestWarehouseRecoveryThroughput:
    @pytest.fixture(scope="class")
    def long_wal(self, tmp_path_factory):
        """A journal of ~440 committed ``dml`` records plus one update and
        one delete wave."""
        path = tmp_path_factory.mktemp("wal") / "warehouse.wal"
        txm = TransactionManager(
            tiny_schema(), wal=path, database=fresh_warehouse()
        )
        load_rows(txm)
        txm.wal.close()
        return path

    def test_replay_long_row_journal(self, benchmark, long_wal):
        def run():
            db, report = recover_warehouse(long_wal)
            assert report.rows_inserted == N_ROWS + 1
            return report

        report = benchmark(run)
        assert report.transactions_replayed == 2
        assert report.rows_deleted == N_ROWS // 25

    def test_replay_without_verification(self, benchmark, long_wal):
        """Foreign-key audit excluded — the replay loop alone."""

        def run():
            return recover_warehouse(long_wal, verify=False)

        db, report = benchmark(run)
        assert len(db.table("sales")) == N_ROWS - N_ROWS // 25


class TestChecksumTax:
    """What the per-record CRC32 costs on the append path."""

    def _bulk_load(self, benchmark, tmp_path, *, checksum):
        from repro.robustness import WriteAheadJournal

        counter = {"n": 0}

        def run():
            counter["n"] += 1
            wal = WriteAheadJournal(
                tmp_path / f"crc-{checksum}-{counter['n']}.wal",
                checksum=checksum,
            )
            txm = TransactionManager(
                tiny_schema(), wal=wal, database=fresh_warehouse()
            )
            load_rows(txm)
            txm.wal.close()

        benchmark(run)

    def test_append_with_checksums(self, benchmark, tmp_path):
        self._bulk_load(benchmark, tmp_path, checksum=True)

    def test_append_without_checksums(self, benchmark, tmp_path):
        self._bulk_load(benchmark, tmp_path, checksum=False)


class TestAsOfMaterializationCost:
    """Undo replay cost as a function of LSN distance from the head.

    A near target undoes almost everything forward replay would have
    skipped; a far target undoes almost nothing — the interesting curve
    is how the backwards walk scales with the records between target and
    head.
    """

    TXNS = 40
    ROWS_PER_TXN = 10

    @pytest.fixture(scope="class")
    def history(self, tmp_path_factory):
        """``(path, commit LSNs)`` for a 40-transaction insert history."""
        path = tmp_path_factory.mktemp("asof") / "history.wal"
        txm = TransactionManager(
            tiny_schema(), wal=path, database=fresh_warehouse()
        )
        with txm.transaction():
            txm.database.insert("dept", {"id": 1, "name": "sales"})
        commits = []
        for t in range(self.TXNS):
            with txm.transaction() as txn:
                txm.database.insert_many(
                    "sales",
                    [
                        {"id": t * self.ROWS_PER_TXN + i, "dept_id": 1, "amount": i}
                        for i in range(self.ROWS_PER_TXN)
                    ],
                )
            commits.append(txn.commit_lsn)
        txm.wal.close()
        return path, commits

    def _materialize(self, benchmark, history, pick):
        from repro.robustness import materialize_as_of

        path, commits = history
        target = pick(commits)

        def run():
            return materialize_as_of(path, target, verify=False)

        db, report = benchmark(run)
        assert report.target_lsn == target

    def test_target_near_head(self, benchmark, history):
        """Last commit: nothing to undo."""
        self._materialize(benchmark, history, lambda commits: commits[-1])

    def test_target_mid_history(self, benchmark, history):
        self._materialize(
            benchmark, history, lambda commits: commits[len(commits) // 2]
        )

    def test_target_far_from_head(self, benchmark, history):
        """First commit: the whole history is undone record by record."""
        self._materialize(benchmark, history, lambda commits: commits[0])
