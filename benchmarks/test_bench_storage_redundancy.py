"""§5.1's storage claim — full replication vs differences-only storage.

"To make our system run on current OLAP tools we have to duplicate the
values in all versions.  This obviously implies a high level of useless
redundancies … since we could only store differences between versions
instead of replicating all values."

The bench sweeps history length and churn rate, reporting the cells the
full-replication MultiVersion warehouse stores against the delta store,
and asserts the expected shape: replication cost grows with the number of
structure versions while the delta cost tracks the number of *changes*.
"""

import pytest

from repro.warehouse import DeltaMultiVersionStore
from repro.workloads.generator import WorkloadConfig, generate_workload


def build(n_years: int, churn: int):
    config = WorkloadConfig(
        seed=9,
        n_years=n_years,
        n_departments=18,
        splits_per_year=churn,
        merges_per_year=churn,
        reclassifications_per_year=churn,
    )
    workload = generate_workload(config)
    return workload.schema.multiversion_facts()


@pytest.mark.parametrize("n_years", [3, 5, 7])
def test_bench_replication_vs_delta(benchmark, n_years):
    mvft = build(n_years, churn=1)

    delta = benchmark(DeltaMultiVersionStore, mvft)
    full = delta.full_replication_cells()
    stored = delta.total_stored()
    assert stored < full
    assert delta.savings_ratio() > 0.3
    print(
        f"\n{n_years} years: full replication {full} cells, "
        f"delta {stored} cells, savings {delta.savings_ratio():.1%}"
    )


def test_bench_replication_redundancy_series(benchmark):
    """Replicated *version-slice* cells vs the delta store's, over history
    length.  The tcm slice is identical in both layouts, so the comparison
    excludes it — the §5.1 redundancy is about duplicating the values "in
    all versions".

    Shape: at every history length the delta layout stores a small
    fraction of what full replication does.  (The *fraction* slowly rises
    with history because lineage churn accumulates — ever more old facts
    need mapped cells in ever more new versions — which is measured, not
    assumed.)
    """

    def sweep():
        out = {}
        for n_years in (3, 5, 7):
            delta = DeltaMultiVersionStore(build(n_years, churn=1))
            tcm = delta.stored_cells()["tcm"]
            out[n_years] = (
                delta.full_replication_cells() - tcm,
                delta.total_stored() - tcm,
            )
        return out

    counts = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nyears  replicated_version_cells  delta_version_cells  savings")
    for n_years, (full, stored) in counts.items():
        print(f"{n_years:<7}{full:<26}{stored:<20}{1 - stored / full:.1%}")
    for full, stored in counts.values():
        assert stored < 0.5 * full  # ≥50 % of the replicated cells are waste


def test_bench_churn_sensitivity(benchmark):
    """Delta storage pays per change: tripling churn shrinks its edge."""

    def compare():
        low = DeltaMultiVersionStore(build(n_years=5, churn=1))
        high = DeltaMultiVersionStore(build(n_years=5, churn=3))
        return low.savings_ratio(), high.savings_ratio()

    low_savings, high_savings = benchmark.pedantic(compare, rounds=1, iterations=1)
    print(
        f"\nchurn 1: savings {low_savings:.1%}; "
        f"churn 3: savings {high_savings:.1%}"
    )
    assert low_savings > high_savings
