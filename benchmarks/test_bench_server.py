"""Server-tier benchmark: sustained QPS and latency under writer churn.

The scenario the server exists for: several tenants' sessions issuing
MVQL and pivots over the wire while a writer commits evolutions.  The
numbers recorded to ``BENCH_server.json`` are the ones a capacity plan
needs — sustained statements/second through the full stack (socket →
admission → snapshot-pinned execution → paged response) and the p50/p99
statement latency, measured with the writer running.

Correctness is asserted unconditionally: every session's reads are
repeatable (the pinned snapshot never drifts under churn) and the RLS
slice holds for the scoped tenant.  Throughput itself is recorded, not
asserted — CI boxes vary too much for a hard QPS floor.
"""

import json
import pathlib
import threading
import time

from repro.concurrency import SnapshotManager
from repro.concurrency.errors import WriteConflictError
from repro.core.chronology import ym
from repro.observability import MetricsRegistry
from repro.robustness import TransactionManager
from repro.server import (
    RLSRule,
    ServerConfig,
    TenantConfig,
    WarehouseClient,
    serve_background,
)
from repro.workloads.case_study import build_case_study

ROOT = pathlib.Path(__file__).resolve().parent.parent

N_CLIENTS = 4
STATEMENTS_PER_CLIENT = 40
CHURN_COMMITS = 20

STATEMENTS = (
    "SELECT amount BY year, org.Division",
    "SHOW MODES",
    "SELECT amount BY year IN MODE V2",
)


def bench_config() -> ServerConfig:
    """A roster shaped for load, not for demos: no rate limits."""
    return ServerConfig(
        [
            TenantConfig(
                tenant="acme",
                api_key="acme-key",
                rls=(
                    RLSRule(
                        dimension="org", level="Division", values=("Sales",)
                    ),
                ),
                max_concurrent=16,
            ),
            TenantConfig(
                tenant="ops",
                api_key="ops-key",
                max_concurrent=16,
                can_write=True,
            ),
        ]
    )


def percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1)))
    return sorted_values[index]


class TestSmokeServerUnderChurn:
    def test_smoke_sustained_qps_and_latency_under_writer_churn(self):
        study = build_case_study()
        txm = TransactionManager(study.schema)
        manager = SnapshotManager(txm)
        latencies: list[float] = []
        failures: list[str] = []
        lock = threading.Lock()
        stop_churn = threading.Event()
        conflicts = 0

        def churn() -> None:
            nonlocal conflicts
            committed = 0
            while not stop_churn.is_set() and committed < CHURN_COMMITS:
                def insert(_editor, n=committed):
                    return txm.editor.insert(
                        "org",
                        f"bench-{n}",
                        f"Bench{n}",
                        ym(2003, 6),
                        level="Department",
                        parents=["sales"],
                    )

                try:
                    manager.run_write(insert)
                except WriteConflictError:
                    with lock:
                        conflicts += 1
                    continue
                committed += 1
                time.sleep(0.002)

        def client_loop(i: int, host: str, port: int) -> None:
            key = "acme-key" if i % 2 == 0 else "ops-key"
            scoped = key == "acme-key"
            try:
                with WarehouseClient(host, port, api_key=key) as client:
                    baseline = client.query(STATEMENTS[0]).as_dict()
                    for n in range(STATEMENTS_PER_CLIENT):
                        statement = STATEMENTS[n % len(STATEMENTS)]
                        started = time.perf_counter()
                        result = client.query(statement)
                        elapsed = time.perf_counter() - started
                        with lock:
                            latencies.append(elapsed)
                        if statement == STATEMENTS[0]:
                            totals = result.as_dict()
                            if totals != baseline:
                                failures.append(
                                    f"client {i}: snapshot drifted"
                                )
                            if scoped and any(
                                k[1] != "Sales" for k in totals
                            ):
                                failures.append(f"client {i}: RLS leak")
            except Exception as exc:  # noqa: BLE001 - surfaced below
                with lock:
                    failures.append(
                        f"client {i}: {type(exc).__name__}: {exc}"
                    )

        with serve_background(
            manager, bench_config(), metrics=MetricsRegistry()
        ) as handle:
            writer = threading.Thread(target=churn)
            clients = [
                threading.Thread(
                    target=client_loop, args=(i, handle.host, handle.port)
                )
                for i in range(N_CLIENTS)
            ]
            bench_start = time.perf_counter()
            writer.start()
            for thread in clients:
                thread.start()
            for thread in clients:
                thread.join(timeout=120.0)
            wall = time.perf_counter() - bench_start
            stop_churn.set()
            writer.join(timeout=120.0)

        assert not failures, "\n".join(failures)
        total = len(latencies)
        assert total == N_CLIENTS * STATEMENTS_PER_CLIENT
        ordered = sorted(latencies)
        payload = {
            "scenario": {
                "clients": N_CLIENTS,
                "statements_per_client": STATEMENTS_PER_CLIENT,
                "statement_mix": list(STATEMENTS),
                "writer_commits": CHURN_COMMITS,
                "writer_conflicts_retried": conflicts,
                "final_version": manager.version,
            },
            "sustained_qps": round(total / wall, 2),
            "wall_seconds": round(wall, 4),
            "latency_seconds": {
                "p50": round(percentile(ordered, 0.50), 6),
                "p90": round(percentile(ordered, 0.90), 6),
                "p99": round(percentile(ordered, 0.99), 6),
                "max": round(ordered[-1], 6),
            },
        }
        (ROOT / "BENCH_server.json").write_text(
            json.dumps(payload, indent=2) + "\n"
        )
        assert payload["sustained_qps"] > 0
