"""Scalability — MultiVersion inference and query latency vs history size.

The paper's prototype runs on a commercial stack; our substrate is a pure
Python engine, so absolute numbers differ, but the *shape* should hold:
inference cost grows with (facts × structure versions), tcm queries are
the cheapest interpretation, and mapped-mode queries pay for routing.
"""

import pytest

from repro.core import LevelGroup, Query, QueryEngine, TimeGroup, YEAR
from repro.workloads.generator import WorkloadConfig, generate_workload

QUERY = Query(group_by=(TimeGroup(YEAR), LevelGroup("org", "Division")))


@pytest.mark.parametrize("n_years", [3, 5, 7])
def test_bench_mv_inference(benchmark, n_years):
    workload = generate_workload(
        WorkloadConfig(seed=33, n_years=n_years, n_departments=20)
    )

    mvft = benchmark(workload.schema.multiversion_facts)
    assert len(mvft.slice("tcm")) == len(workload.schema.facts)
    print(
        f"\n{n_years} years: {len(workload.schema.facts)} facts, "
        f"{len(workload.schema.structure_versions())} versions, "
        f"{len(mvft)} MV cells"
    )


@pytest.mark.parametrize("n_departments", [10, 30, 60])
def test_bench_mv_inference_vs_dimension_size(benchmark, n_departments):
    workload = generate_workload(
        WorkloadConfig(seed=33, n_years=4, n_departments=n_departments)
    )
    mvft = benchmark(workload.schema.multiversion_facts)
    assert len(mvft) > 0


@pytest.mark.parametrize("mode_kind", ["tcm", "first", "last"])
def test_bench_query_latency_by_mode(benchmark, medium_workload, mode_kind):
    mvft = medium_workload.schema.multiversion_facts()
    engine = QueryEngine(mvft)
    labels = mvft.modes.labels
    label = {"tcm": "tcm", "first": labels[1], "last": labels[-1]}[mode_kind]

    result = benchmark(engine.execute, QUERY.with_mode(label))
    assert len(result) > 0


def test_bench_fact_scan_throughput(benchmark, medium_workload):
    """Raw consistent-table scan speed, the floor under every query."""
    facts = medium_workload.schema.facts

    def scan():
        return sum(
            row.value("amount") or 0.0 for row in facts
        )

    total = benchmark(scan)
    assert total > 0
