"""Tables 1, 2 and 7 — the Organization dimension in 2001, 2002, 2003.

Regenerates each snapshot from the temporal dimension (``D(t)``) and
checks it cell-for-cell against the paper before timing the regeneration.
"""

import pytest

from repro.workloads.case_study import organization_table

PAPER_TABLES = {
    2001: {  # Table 1
        ("Sales", "Dpt.Jones"),
        ("Sales", "Dpt.Smith"),
        ("R&D", "Dpt.Brian"),
    },
    2002: {  # Table 2 — Smith reorganized into R&D
        ("Sales", "Dpt.Jones"),
        ("R&D", "Dpt.Smith"),
        ("R&D", "Dpt.Brian"),
    },
    2003: {  # Table 7 — Jones split into Bill and Paul
        ("Sales", "Dpt.Bill"),
        ("Sales", "Dpt.Paul"),
        ("R&D", "Dpt.Smith"),
        ("R&D", "Dpt.Brian"),
    },
}


@pytest.mark.parametrize("year", sorted(PAPER_TABLES))
def test_bench_organization_snapshot(benchmark, case_study, year):
    rows = benchmark(organization_table, case_study, year)
    assert rows == PAPER_TABLES[year]
    print(f"\nTable ({year}) — Organization dimension:")
    print(f"{'Division':<10}Department")
    for division, department in sorted(rows):
        print(f"{division:<10}{department}")
