"""§5.2 — the global quality factor Q and per-mode ranking.

``Q = Σ pds(fb(i,j)) / (Ni·Nj·10)``: the user weighs each confidence and
picks the best temporal mode of presentation for their request.
"""

from repro.core import Interval, LevelGroup, Query, TimeGroup, YEAR, rank_modes, ym
from repro.workloads.case_study import ORG

Q2 = Query(
    group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Department")),
    time_range=Interval(ym(2002, 1), ym(2003, 12)),
)


def test_bench_quality_ranking(benchmark, engine):
    ranked = benchmark(rank_modes, engine, Q2)
    scores = {label: q for label, q, _ in ranked}
    # Consistent data is pure source data: Q = 1.
    assert scores["tcm"] == 1.0
    # V2 only needs the exact merge (em); V3 needs the approximated split.
    assert scores["V2"] > scores["V3"]
    assert ranked[0][0] == "tcm"
    print("\n§5.2 — quality factor per temporal mode (Q2, default weights):")
    for label, q, _ in ranked:
        print(f"  {label:<4} Q = {q:.3f}")


def test_bench_quality_custom_weights(benchmark, engine):
    """A user who distrusts anything mapped (em weight 2) widens the gap."""
    weights = {"sd": 10, "em": 2, "am": 1, "uk": 0}

    ranked = benchmark(rank_modes, engine, Q2, weights)
    scores = {label: q for label, q, _ in ranked}
    assert scores["tcm"] == 1.0
    assert scores["V2"] < 1.0
    print("\n§5.2 — quality with mapping-averse weights:")
    for label, q, _ in ranked:
        print(f"  {label:<4} Q = {q:.3f}")
