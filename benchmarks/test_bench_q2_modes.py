"""Tables 8, 9 and 10 — query Q2 (total amounts per department, 2002-03)
under its three interpretations, including the confidence tags the paper
discusses (exact merge back to Dpt.Jones, approximated 40/60 split).
"""

import pytest

from repro.core import Interval, LevelGroup, Query, TimeGroup, YEAR, ym
from repro.workloads.case_study import ORG

Q2 = Query(
    group_by=(TimeGroup(YEAR), LevelGroup(ORG, "Department")),
    time_range=Interval(ym(2002, 1), ym(2003, 12)),
)

PAPER_RESULTS = {
    "tcm": {  # Table 8 — consistent time
        ("2002", "Dpt.Jones"): 100.0,
        ("2002", "Dpt.Smith"): 100.0,
        ("2002", "Dpt.Brian"): 50.0,
        ("2003", "Dpt.Bill"): 150.0,
        ("2003", "Dpt.Paul"): 50.0,
        ("2003", "Dpt.Smith"): 110.0,
        ("2003", "Dpt.Brian"): 40.0,
    },
    "V2": {  # Table 9 — mapped on the 2002 organization
        ("2002", "Dpt.Jones"): 100.0,
        ("2002", "Dpt.Smith"): 100.0,
        ("2002", "Dpt.Brian"): 50.0,
        ("2003", "Dpt.Jones"): 200.0,
        ("2003", "Dpt.Smith"): 110.0,
        ("2003", "Dpt.Brian"): 40.0,
    },
    "V3": {  # Table 10 — mapped on the 2003 organization (40 %/60 %)
        ("2002", "Dpt.Bill"): 40.0,
        ("2002", "Dpt.Paul"): 60.0,
        ("2002", "Dpt.Smith"): 100.0,
        ("2002", "Dpt.Brian"): 50.0,
        ("2003", "Dpt.Bill"): 150.0,
        ("2003", "Dpt.Paul"): 50.0,
        ("2003", "Dpt.Smith"): 110.0,
        ("2003", "Dpt.Brian"): 40.0,
    },
}
TABLE_NUMBER = {"tcm": 8, "V2": 9, "V3": 10}

EXPECTED_CONFIDENCES = {
    ("V2", "2003", "Dpt.Jones"): "em",  # exact merge of Bill+Paul
    ("V3", "2002", "Dpt.Bill"): "am",   # approximated 40 % estimate
    ("V3", "2002", "Dpt.Paul"): "am",   # approximated 60 % estimate
    ("V3", "2003", "Dpt.Bill"): "sd",   # source data
}


@pytest.mark.parametrize("mode", ["tcm", "V2", "V3"])
def test_bench_q2(benchmark, engine, mode):
    result = benchmark(engine.execute, Q2.with_mode(mode))
    got = {group: cells["amount"] for group, cells in result.as_dict().items()}
    assert got == pytest.approx(PAPER_RESULTS[mode])
    confidences = result.confidences()
    for (m, year, dept), expected in EXPECTED_CONFIDENCES.items():
        if m == mode:
            assert confidences[(year, dept)]["amount"] == expected
    print(f"\nTable {TABLE_NUMBER[mode]} — Q2 in mode {mode}:")
    print(result.to_text())
