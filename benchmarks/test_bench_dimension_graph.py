"""Figure 2 — the Org dimension as a valid-time directed graph.

Member versions are nodes annotated with valid times, temporal
relationships are arcs annotated with theirs.
"""

from repro.olap import render_dimension_graph


EXPECTED_FRAGMENTS = [
    "Dpt.Jones [01/2001 ; 12/2002]",
    "-[01/2001 ; 12/2002]-> Sales",
    "Dpt.Bill [01/2003 ; Now]",
    "-[01/2003 ; Now]-> Sales",
    "Dpt.Paul [01/2003 ; Now]",
    "Sales [01/2001 ; Now]",
    "Dpt.Smith [01/2001 ; Now]",
    "-[01/2001 ; 12/2001]-> Sales",
    "-[01/2002 ; Now]-> R&D",
]


def test_bench_figure_2_dimension_graph(benchmark, case_study):
    text = benchmark(render_dimension_graph, case_study.org)
    for fragment in EXPECTED_FRAGMENTS:
        assert fragment in text, fragment
    print("\nFigure 2 — the Org dimension:")
    print(text)
