"""Example 5 — the confidence-factor truth table ``⊗cf``.

Regenerates the full table and times folding long confidence sequences
(what every aggregated cube cell pays).
"""

from repro.core import CANONICAL_FACTORS, DEFAULT_AGGREGATOR

PAPER_TRUTH_TABLE = {
    ("sd", "sd"): "sd", ("sd", "em"): "em", ("sd", "am"): "am", ("sd", "uk"): "uk",
    ("em", "sd"): "em", ("em", "em"): "em", ("em", "am"): "am", ("em", "uk"): "uk",
    ("am", "sd"): "am", ("am", "em"): "am", ("am", "am"): "am", ("am", "uk"): "uk",
    ("uk", "sd"): "uk", ("uk", "em"): "uk", ("uk", "am"): "uk", ("uk", "uk"): "uk",
}


def regenerate_table():
    return {
        (a.symbol, b.symbol): DEFAULT_AGGREGATOR.combine(a, b).symbol
        for a in CANONICAL_FACTORS
        for b in CANONICAL_FACTORS
    }


def test_bench_example_5_truth_table(benchmark):
    table = benchmark(regenerate_table)
    assert table == PAPER_TRUTH_TABLE
    print("\nExample 5 — ⊗cf truth table:")
    symbols = [f.symbol for f in CANONICAL_FACTORS]
    print("⊗cf  " + "  ".join(f"{s:<3}" for s in symbols))
    for a in symbols:
        row = "  ".join(f"{table[(a, b)]:<3}" for b in symbols)
        print(f"{a:<4} {row}")


def test_bench_confidence_fold(benchmark):
    """Folding ⊗cf over a long contribution stream (deep aggregations)."""
    stream = [CANONICAL_FACTORS[i % 3] for i in range(10_000)]  # sd/em/am mix

    result = benchmark(DEFAULT_AGGREGATOR.combine_all, stream)
    assert result.symbol == "am"
