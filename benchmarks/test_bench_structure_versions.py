"""Definition 9 / Example 7 — structure-version inference.

Checks the case study's three versions (the paper's Example 7 plus the
Smith reclassification) and measures how inference scales with history
length on synthetic workloads.
"""

import pytest

from repro.core import Interval, NOW, ym
from repro.core.versions import infer_structure_versions
from repro.workloads.generator import WorkloadConfig, generate_workload


def test_bench_case_study_versions(benchmark, case_study):
    versions = benchmark(infer_structure_versions, case_study.schema)
    assert [v.vsid for v in versions] == ["V1", "V2", "V3"]
    assert versions[0].valid_time == Interval(ym(2001, 1), ym(2001, 12))
    assert versions[1].valid_time == Interval(ym(2002, 1), ym(2002, 12))
    assert versions[2].valid_time == Interval(ym(2003, 1), NOW)
    print("\nExample 7 — structure versions of the case study:")
    for v in versions:
        leaves = sorted(v.leaf_ids("org"))
        print(f"  {v.vsid}: {v.valid_time!r}  leaves={leaves}")


@pytest.mark.parametrize("n_years", [3, 6, 9])
def test_bench_inference_scaling(benchmark, n_years):
    workload = generate_workload(
        WorkloadConfig(seed=21, n_years=n_years, n_departments=15)
    )
    versions = benchmark(infer_structure_versions, workload.schema)
    # One version per evolution year plus the initial one.
    assert len(versions) == n_years
    print(f"\n{n_years} years -> {len(versions)} structure versions")
